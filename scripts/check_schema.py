"""Schema round-trip lint: serialisation must be byte-stable.

The invertible-binning pipeline threads
:class:`repro.data.schema.ViewSchema` payloads through translation-table
JSON, model artifacts, binary sidecars and ``.2v`` files.  Each carrier
promises *byte equality* under a serialise/parse/serialise round trip —
the property that keeps content hashes reproducible and lets old readers
skip the sections they do not know.  This lint checks every carrier,
runnable standalone::

    PYTHONPATH=src python scripts/check_schema.py

and inside tier-1 via ``tests/test_schema.py``
(``pytest -m multiview_smoke``).

Checks
------
1. ``ViewSchema``: ``from_payload(to_payload()).to_payload()`` is
   byte-identical for every schema the mixed datasets produce (both
   discretisation methods).
2. ``TranslationTable``: schema-less tables emit the version-2 document
   unchanged; schema-carrying tables round-trip version 3 byte-identically.
3. ``ModelArtifact``: payloads round-trip byte-identically, content hash
   included, with and without schemas.
4. ``.2v`` files: ``save_dataset``/``load_dataset`` preserve schemas and
   re-save byte-identically.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _sample_datasets():
    from repro.data.mixed import MIXED_DATASETS, make_mixed_dataset

    for name in MIXED_DATASETS:
        for discretize in ("mdl", "equal-height"):
            yield make_mixed_dataset(name, discretize=discretize, scale=0.05)


def schema_roundtrip_failures() -> list[str]:
    """Carriers whose schema serialisation is not byte-stable."""
    from repro.core.table import TranslationTable
    from repro.core.rules import TranslationRule
    from repro.data.io import load_dataset, save_dataset
    from repro.data.schema import ViewSchema
    from repro.serve.artifact import ModelArtifact

    failures: list[str] = []
    rule = TranslationRule((0,), (0,), "->")
    for dataset in _sample_datasets():
        tag = f"{dataset.name}"
        for side, schema in (("left", dataset.left_schema), ("right", dataset.right_schema)):
            payload = schema.to_payload()
            rebuilt = ViewSchema.from_payload(payload).to_payload()
            if _canonical(payload) != _canonical(rebuilt):
                failures.append(f"{tag}.{side}: ViewSchema payload not byte-stable")

        bare = TranslationTable([rule])
        bare_payload = bare.to_payload()
        if bare_payload.get("schema_version") != 2 or "schema" in bare_payload:
            failures.append(f"{tag}: schema-less table no longer emits the v2 document")
        if _canonical(bare_payload) != _canonical(
            TranslationTable.from_payload(bare_payload).to_payload()
        ):
            failures.append(f"{tag}: schema-less table payload not byte-stable")

        table = bare.with_schemas(dataset.left_schema, dataset.right_schema)
        table_payload = table.to_payload()
        if _canonical(table_payload) != _canonical(
            TranslationTable.from_payload(table_payload).to_payload()
        ):
            failures.append(f"{tag}: schema table payload not byte-stable")

        artifact = ModelArtifact(
            name=f"{dataset.name}-lint",
            table=table,
            left_names=tuple(dataset.left_names),
            right_names=tuple(dataset.right_names),
            created_unix=0.0,
            library_version="lint",
            left_schema=dataset.left_schema,
            right_schema=dataset.right_schema,
        )
        artifact_payload = artifact.payload()
        if _canonical(artifact_payload) != _canonical(
            ModelArtifact.from_payload(artifact_payload).payload()
        ):
            failures.append(f"{tag}: artifact payload not byte-stable")

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "lint.2v"
            save_dataset(dataset, path)
            first = path.read_bytes()
            loaded = load_dataset(path)
            if loaded.left_schema is None or loaded.right_schema is None:
                failures.append(f"{tag}: .2v round trip dropped the schemas")
                continue
            save_dataset(loaded, path)
            if path.read_bytes() != first:
                failures.append(f"{tag}: .2v re-save not byte-stable")
    return failures


def main() -> int:
    failures = schema_roundtrip_failures()
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("schema round-trip lint: all carriers byte-stable")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
