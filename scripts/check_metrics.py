"""Metrics lint: Prometheus-valid exposition, documented catalog.

Keeps ``GET /metrics`` honest without third-party tooling, runnable
standalone::

    PYTHONPATH=src python scripts/check_metrics.py

and inside tier-1 via ``tests/test_obs.py`` (``pytest -m obs_smoke``):

1. **Exposition validity** — :func:`validate_exposition` re-implements
   the checks ``promtool check metrics`` would apply to the text
   format: metric/label naming rules, one ``# TYPE`` per family,
   samples only for declared families, histogram ``_bucket`` series
   monotone non-decreasing in ``le`` ending at ``+Inf`` with a
   matching ``_count``.
2. **Catalog completeness** — every family the live code can emit
   (engine instruments + prediction service + replica router) appears
   in the ``docs/observability.md`` metrics catalog, so the docs can
   never silently trail the code.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402

DOCS_CATALOG = REPO_ROOT / "docs" / "observability.md"

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_RESERVED_LABEL = re.compile(r"^__")


def validate_exposition(text: str) -> list[str]:
    """All rule violations in a Prometheus text exposition (empty = valid)."""
    errors: list[str] = []
    try:
        families, samples = obs.parse_exposition(text)
    except ValueError as error:
        return [f"unparseable exposition: {error}"]
    for name, (kind, _help) in families.items():
        if not _METRIC_NAME.match(name):
            errors.append(f"invalid metric family name {name!r}")
        if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
            errors.append(f"family {name}: unknown TYPE {kind!r}")
        if kind == "counter" and not name.endswith("_total"):
            errors.append(f"counter {name} should end in _total")
    buckets: dict[tuple[str, tuple[tuple[str, str], ...]], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for name, labels, value in samples:
        family = _family_name(name, families)
        if family is None:
            errors.append(f"sample {name} has no # TYPE declaration")
            continue
        for label, label_value in labels.items():
            if not _LABEL_NAME.match(label) or _RESERVED_LABEL.match(label):
                errors.append(f"sample {name}: invalid label name {label!r}")
            if "\n" in label_value:
                errors.append(f"sample {name}: unescaped newline in {label!r}")
        kind = families[family][0]
        if kind in ("counter", "histogram") and value < 0:
            errors.append(f"{kind} sample {name} is negative ({value})")
        if kind == "histogram" and name == f"{family}_bucket":
            rest = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            le = labels.get("le")
            if le is None:
                errors.append(f"histogram {family}: _bucket sample without le")
                continue
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault((family, rest), []).append((bound, value))
        if kind == "histogram" and name == f"{family}_count":
            rest = tuple(sorted(labels.items()))
            counts[(family, rest)] = value
    for (family, rest), series in buckets.items():
        series.sort(key=lambda pair: pair[0])
        if series[-1][0] != float("inf"):
            errors.append(f"histogram {family}{dict(rest)}: missing +Inf bucket")
        cumulative = [count for _bound, count in series]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            errors.append(f"histogram {family}{dict(rest)}: buckets not cumulative")
        declared = counts.get((family, rest))
        if declared is not None and series[-1][0] == float("inf"):
            if series[-1][1] != declared:
                errors.append(
                    f"histogram {family}{dict(rest)}: +Inf bucket "
                    f"{series[-1][1]} != _count {declared}"
                )
    return errors


def _family_name(sample_name: str, families: dict) -> str | None:
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
            return sample_name[: -len(suffix)]
    return None


def emittable_families() -> dict[str, str]:
    """Every family name the live code can emit, mapped to its kind.

    Built by instantiating the real metric owners on private
    registries — not a hand-maintained list, so a new metric in the
    code automatically becomes a lint obligation here.
    """
    import tempfile

    from repro.serve import ModelRegistry, PredictionService
    from repro.serve.router import ReplicaRouter
    from repro.serve.server import ModelStats

    families: dict[str, str] = {}

    def collect(registry: obs.MetricsRegistry) -> None:
        kinds = {"Counter": "counter", "Gauge": "gauge", "Histogram": "histogram"}
        for metric in registry.metrics():
            families[metric.name] = kinds[type(metric).__name__]

    engine = obs.MetricsRegistry()
    obs.EngineInstruments(registry=engine)
    collect(engine)

    with tempfile.TemporaryDirectory() as tmp:
        model_registry = ModelRegistry(tmp)
        serve = obs.MetricsRegistry()
        PredictionService(model_registry, cache_size=0, metrics=serve)
        ModelStats("catalog-probe", registry=serve)
        collect(serve)

        router = obs.MetricsRegistry()
        ReplicaRouter(lambda name, port: None, registry=model_registry, metrics=router)
        collect(router)
    return families


def check_catalog(families: dict[str, str]) -> list[str]:
    """Families missing from the ``docs/observability.md`` catalog."""
    if not DOCS_CATALOG.exists():
        return [f"docs catalog {DOCS_CATALOG} does not exist"]
    text = DOCS_CATALOG.read_text(encoding="utf-8")
    return [
        f"family {name} ({kind}) is not documented in {DOCS_CATALOG.name}"
        for name, kind in sorted(families.items())
        if f"`{name}`" not in text
    ]


def check_sample_exposition() -> list[str]:
    """Exercise the renderer and validate a non-trivial exposition."""
    registry = obs.MetricsRegistry()
    instruments = obs.EngineInstruments(registry=registry)
    instruments.count_bitset("and_popcount_rows", "native")
    instruments.stream_append(16, 16)
    instruments.observe_fit("select", 0.012, 3)
    instruments.maintenance_event("check", rows_seen=128)
    return validate_exposition(registry.render())


def main() -> int:
    errors = check_sample_exposition()
    families = emittable_families()
    errors.extend(check_catalog(families))
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(f"ok: exposition valid, {len(families)} families documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
