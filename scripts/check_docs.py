"""Documentation lint: executable README, documented public API.

Two checks keep the docs honest, runnable standalone::

    PYTHONPATH=src python scripts/check_docs.py

and inside tier-1 via ``tests/test_docs.py`` (``pytest -m docs_smoke``):

1. **README code blocks execute** — every ```` ```python ```` fenced
   block in ``README.md`` runs, top to bottom, in one shared namespace
   (so later blocks may use earlier blocks' variables) inside a
   temporary working directory (so examples may write caches/files).
2. **Every public symbol has a docstring** — every name in the
   ``__all__`` of every public package resolves to an object with a
   non-empty docstring, and every documentation page referenced from
   the README/docs tree exists.
"""

from __future__ import annotations

import contextlib
import importlib
import inspect
import io
import os
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

PUBLIC_PACKAGES = [
    "repro",
    "repro.data",
    "repro.data.schema",
    "repro.mining",
    "repro.core",
    "repro.baselines",
    "repro.corpus",
    "repro.eval",
    "repro.multiview",
    "repro.native",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.resilience",
    "repro.runtime",
    "repro.serve",
    "repro.serve.binfmt",
    "repro.serve.router",
    "repro.stream",
]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_MD_LINK = re.compile(r"\]\(([^)#]+\.md)(?:#[^)]*)?\)")


def extract_python_blocks(markdown_path: Path) -> list[str]:
    """Return the ```` ```python ```` fenced blocks of a markdown file."""
    return _FENCE.findall(markdown_path.read_text(encoding="utf-8"))


def run_markdown_blocks(markdown_path: Path, quiet: bool = True) -> int:
    """Execute a file's python blocks in one namespace; returns the count.

    Blocks run inside a temporary working directory so examples that
    write files (sweep caches, reports) never touch the repository.
    Any exception propagates, annotated with the failing block number.
    """
    blocks = extract_python_blocks(markdown_path)
    namespace: dict[str, object] = {"__name__": "__readme__"}
    previous_cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as sandbox:
        os.chdir(sandbox)
        try:
            for number, block in enumerate(blocks, start=1):
                sink = io.StringIO()
                try:
                    with contextlib.redirect_stdout(
                        sink if quiet else sys.stdout
                    ):
                        exec(compile(block, f"{markdown_path.name}[block {number}]", "exec"), namespace)
                except Exception as error:  # annotate and re-raise
                    raise AssertionError(
                        f"{markdown_path.name} code block {number} failed: "
                        f"{type(error).__name__}: {error}\n--- block ---\n{block}"
                    ) from error
        finally:
            os.chdir(previous_cwd)
    return len(blocks)


def missing_docstrings() -> list[str]:
    """Public symbols (every ``__all__`` entry) without a docstring."""
    problems = []
    for package_name in PUBLIC_PACKAGES:
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            if name.startswith("__"):
                continue
            obj = getattr(package, name, None)
            if obj is None:
                problems.append(f"{package_name}.{name}: missing attribute")
                continue
            if isinstance(obj, (str, bytes, int, float, dict, list, tuple)):
                continue  # constants (e.g. PAPER_DATASETS, BACKENDS)
            if not inspect.getdoc(obj):
                problems.append(f"{package_name}.{name}: no docstring")
    return sorted(set(problems))


def broken_doc_links() -> list[str]:
    """Relative ``*.md`` links in README/docs that point nowhere."""
    problems = []
    for page in [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]:
        for target in _MD_LINK.findall(page.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://")):
                continue
            if not (page.parent / target).exists():
                problems.append(f"{page.relative_to(REPO_ROOT)} -> {target}")
    return problems


def main() -> int:
    failures = 0
    undocumented = missing_docstrings()
    if undocumented:
        failures += 1
        print("undocumented public symbols:")
        for line in undocumented:
            print(f"  {line}")
    else:
        print("docstrings: every public symbol is documented")

    broken = broken_doc_links()
    if broken:
        failures += 1
        print("broken documentation links:")
        for line in broken:
            print(f"  {line}")
    else:
        print("links: all documentation links resolve")

    try:
        count = run_markdown_blocks(REPO_ROOT / "README.md")
    except AssertionError as error:
        failures += 1
        print(error)
    else:
        print(f"README: all {count} python block(s) executed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
