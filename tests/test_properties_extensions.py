"""Property-based tests for the extension modules.

Complements ``test_properties.py`` (which pins the paper-core
invariants) with hypothesis coverage of the extension surface: the ARFF
round trip, Gibbs optimality of the refined encoding, stability-score
bounds and the clustering accounting identities.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.clustering import _label_bits, _parameter_bits
from repro.core.refined import plugin_codelength
from repro.core.rules import Direction, TranslationRule
from repro.data.arff import arff_to_two_view, loads_arff, save_arff, two_view_to_arff
from repro.data.dataset import TwoViewDataset
from repro.eval.stability import rule_overlap_score, soft_match_score

COMMON_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_datasets(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    n_left = draw(st.integers(min_value=1, max_value=5))
    n_right = draw(st.integers(min_value=1, max_value=5))
    left_bits = draw(
        st.lists(
            st.lists(st.booleans(), min_size=n_left, max_size=n_left),
            min_size=n,
            max_size=n,
        )
    )
    right_bits = draw(
        st.lists(
            st.lists(st.booleans(), min_size=n_right, max_size=n_right),
            min_size=n,
            max_size=n,
        )
    )
    return TwoViewDataset(
        np.array(left_bits, dtype=bool),
        np.array(right_bits, dtype=bool),
        name="hypothesis",
    )


@st.composite
def random_rules(draw, max_items: int = 5):
    lhs = tuple(
        sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=max_items - 1),
                    min_size=1,
                    max_size=3,
                )
            )
        )
    )
    rhs = tuple(
        sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=max_items - 1),
                    min_size=1,
                    max_size=3,
                )
            )
        )
    )
    direction = draw(st.sampled_from(list(Direction)))
    return TranslationRule(lhs, rhs, direction)


class TestArffRoundTrip:
    @settings(**COMMON_SETTINGS)
    @given(dataset=small_datasets())
    def test_two_view_survives_arff_round_trip(self, dataset, tmp_path_factory):
        relation = two_view_to_arff(dataset)
        path = tmp_path_factory.mktemp("arff") / "roundtrip.arff"
        save_arff(relation, path)
        reread = loads_arff(path.read_text(encoding="utf-8"))
        rebuilt = arff_to_two_view(
            reread,
            left_attributes=[f"L:{name}" for name in dataset.left_names],
            right_attributes=[f"R:{name}" for name in dataset.right_names],
        )
        assert np.array_equal(rebuilt.left, dataset.left)
        assert np.array_equal(rebuilt.right, dataset.right)


class TestRefinedProperties:
    @settings(**COMMON_SETTINGS)
    @given(
        counts=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=8)
    )
    def test_gibbs_inequality(self, counts):
        """Plug-in codelength <= cross-entropy under any normalized q."""
        positive = [count for count in counts if count > 0]
        if not positive:
            assert plugin_codelength(counts) == 0.0
            return
        rng = np.random.default_rng(sum(counts))
        q = rng.random(len(positive)) + 1e-3
        q = q / q.sum()
        cross_entropy = sum(
            count * -math.log2(q[index]) for index, count in enumerate(positive)
        )
        assert plugin_codelength(counts) <= cross_entropy + 1e-9

    @settings(**COMMON_SETTINGS)
    @given(
        counts=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=8),
        scale=st.integers(min_value=2, max_value=5),
    )
    def test_codelength_scales_linearly(self, counts, scale):
        """Duplicating every count multiplies the codelength by the factor."""
        base = plugin_codelength(counts)
        scaled = plugin_codelength([count * scale for count in counts])
        assert scaled == pytest.approx(scale * base, rel=1e-9, abs=1e-9)


class TestStabilityProperties:
    @settings(**COMMON_SETTINGS)
    @given(first=random_rules(), second=random_rules())
    def test_overlap_score_symmetric_and_bounded(self, first, second):
        forward = rule_overlap_score(first, second)
        backward = rule_overlap_score(second, first)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0

    @settings(**COMMON_SETTINGS)
    @given(rule=random_rules())
    def test_self_overlap_is_one(self, rule):
        assert rule_overlap_score(rule, rule) == pytest.approx(1.0)

    @settings(**COMMON_SETTINGS)
    @given(
        rules=st.lists(random_rules(), min_size=0, max_size=4),
        others=st.lists(random_rules(), min_size=0, max_size=4),
    )
    def test_soft_match_bounded(self, rules, others):
        score = soft_match_score(rules, others)
        assert 0.0 <= score <= 1.0

    @settings(**COMMON_SETTINGS)
    @given(rules=st.lists(random_rules(), min_size=1, max_size=4))
    def test_soft_match_identity(self, rules):
        assert soft_match_score(rules, rules) == pytest.approx(1.0)


class TestClusteringAccounting:
    @settings(**COMMON_SETTINGS)
    @given(
        labels=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50)
    )
    def test_label_bits_bounds(self, labels):
        array = np.asarray(labels, dtype=int)
        k = int(array.max()) + 1
        bits = _label_bits(array, k)
        assert bits >= 0.0
        n = len(labels)
        # Entropy part is at most n*log2(k); parameter part (k-1)/2*log2(n+1).
        upper = n * math.log2(max(k, 2)) + 0.5 * (k - 1) * math.log2(n + 1)
        assert bits <= upper + 1e-9

    @settings(**COMMON_SETTINGS)
    @given(labels=st.lists(st.just(0), min_size=1, max_size=30))
    def test_single_component_labels_free(self, labels):
        assert _label_bits(np.asarray(labels, dtype=int), 1) == 0.0

    @settings(**COMMON_SETTINGS)
    @given(
        n_members=st.integers(min_value=0, max_value=10_000),
        n_items=st.integers(min_value=1, max_value=100),
    )
    def test_parameter_bits_monotone_in_members(self, n_members, n_items):
        bits = _parameter_bits(n_members, n_items)
        assert bits >= 0.0
        assert _parameter_bits(n_members + 1, n_items) >= bits
