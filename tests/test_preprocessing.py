"""Unit tests for the pre-processing pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.preprocessing import (
    boolean_frame,
    discretize_equal_height,
    drop_frequent_items,
    frame_to_two_view,
    one_hot,
    split_views,
)


class TestDiscretize:
    def test_equal_height_balanced(self):
        values = list(range(100))
        labels, names = discretize_equal_height(values, n_bins=5, attribute="x")
        assert len(names) == 5
        counts = {name: labels.count(name) for name in names}
        # Equal-height: every bin receives ~20 of 100 values.
        assert all(15 <= count <= 25 for count in counts.values())

    def test_constant_column_single_bin(self):
        labels, names = discretize_equal_height([3.0] * 10, n_bins=5, attribute="x")
        assert names == ["x=bin0"]
        assert set(labels) == {"x=bin0"}

    def test_heavy_ties_collapse_bins(self):
        values = [0.0] * 90 + [1.0] * 10
        labels, names = discretize_equal_height(values, n_bins=5, attribute="x")
        assert len(names) <= 2

    def test_empty(self):
        labels, names = discretize_equal_height([], n_bins=5)
        assert labels == [] and names == []

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            discretize_equal_height([1.0, float("nan")])

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError, match="n_bins"):
            discretize_equal_height([1.0], n_bins=0)

    def test_monotone_assignment(self):
        values = [1, 5, 2, 8, 3, 9, 4, 7, 6, 0]
        labels, names = discretize_equal_height(values, n_bins=2, attribute="x")
        order = {name: position for position, name in enumerate(names)}
        # Larger values never land in a smaller bin than smaller values.
        pairs = sorted(zip(values, labels))
        bins = [order[label] for __, label in pairs]
        assert bins == sorted(bins)


class TestOneHot:
    def test_basic(self):
        matrix, names = one_hot(["red", "blue", "red"], attribute="color")
        assert names == ["color=red", "color=blue"]
        assert matrix.tolist() == [[True, False], [False, True], [True, False]]

    def test_every_row_has_exactly_one(self):
        matrix, __ = one_hot(list("abcabc"), attribute="x")
        assert (matrix.sum(axis=1) == 1).all()


class TestBooleanFrame:
    def test_mixed_frame(self):
        frame = {
            "age": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            "color": ["r", "g", "r", "g", "r", "g"],
            "flag": [True, False, True, False, True, False],
        }
        matrix, names, origins = boolean_frame(frame, n_bins=2)
        assert matrix.shape[0] == 6
        assert len(names) == len(origins) == matrix.shape[1]
        assert "flag" in names
        assert any(name.startswith("color=") for name in names)
        assert any(name.startswith("age=") for name in names)

    def test_inconsistent_length(self):
        with pytest.raises(ValueError, match="inconsistent"):
            boolean_frame({"a": [1, 2], "b": [1]})

    def test_empty_frame(self):
        matrix, names, origins = boolean_frame({})
        assert matrix.shape == (0, 0)
        assert names == [] and origins == []


class TestDropFrequent:
    def test_drops_frequent(self):
        matrix = np.array([[1, 1], [1, 0], [1, 0], [1, 0]], dtype=bool)
        filtered, names = drop_frequent_items(matrix, ["common", "rare"], 0.5)
        assert names == ["rare"]
        assert filtered.shape == (4, 1)

    def test_keeps_at_threshold(self):
        matrix = np.array([[1, 1], [1, 0]], dtype=bool)
        __, names = drop_frequent_items(matrix, ["half", "all"], 0.5)
        assert "all" in names

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="names"):
            drop_frequent_items(np.ones((2, 2), dtype=bool), ["a"], 0.5)


class TestSplitViews:
    def test_partitions_all_columns(self, rng):
        matrix = rng.random((40, 10)) < 0.3
        names = [f"i{index}" for index in range(10)]
        left, right = split_views(matrix, names)
        assert sorted(left + right) == list(range(10))
        assert left and right

    def test_respects_origins(self, rng):
        matrix = rng.random((40, 6)) < 0.3
        names = [f"i{index}" for index in range(6)]
        origins = ["A", "A", "A", "B", "B", "B"]
        left, right = split_views(matrix, names, origins)
        left_origins = {origins[column] for column in left}
        right_origins = {origins[column] for column in right}
        assert left_origins.isdisjoint(right_origins)

    def test_balances_ones(self, rng):
        matrix = rng.random((200, 20)) < 0.3
        names = [f"i{index}" for index in range(20)]
        left, right = split_views(matrix, names)
        left_ones = matrix[:, left].sum()
        right_ones = matrix[:, right].sum()
        total = left_ones + right_ones
        assert abs(left_ones - right_ones) / total < 0.25


class TestFrameToTwoView:
    def test_single_frame_split(self, rng):
        frame = {
            f"col{index}": (rng.random(50) * 10).tolist() for index in range(6)
        }
        data = frame_to_two_view(None, single_frame=frame, n_bins=3, name="tab")
        assert data.n_transactions == 50
        assert data.n_left > 0 and data.n_right > 0
        assert data.name == "tab"

    def test_two_frames(self):
        left_frame = {"color": ["r", "g", "r"]}
        right_frame = {"size": [1.0, 2.0, 3.0]}
        data = frame_to_two_view(left_frame, right_frame, n_bins=2)
        assert data.n_transactions == 3
        assert all(name.startswith("color=") for name in data.left_names)

    def test_max_frequency_filter(self):
        left_frame = {"constant": ["x", "x", "x"], "varied": ["a", "b", "c"]}
        right_frame = {"other": ["p", "q", "p"]}
        data = frame_to_two_view(left_frame, right_frame, max_frequency=0.5)
        assert "constant=x" not in data.left_names

    def test_rejects_both_modes(self):
        with pytest.raises(ValueError, match="not both"):
            frame_to_two_view({"a": [1]}, {"b": [1]}, single_frame={"c": [1]})

    def test_rejects_missing_frame(self):
        with pytest.raises(ValueError, match="required"):
            frame_to_two_view({"a": [1]}, None)
