"""Edge-case tests for the mixed-type pre-processing pipeline.

Degenerate frames the discretisation/view-splitting path must survive:
constant columns, all-NaN columns, single-row frames, numeric-looking
strings, and ``k``-way view splits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.preprocessing import (
    boolean_frame_schema,
    frame_to_multi_view,
    frame_to_two_view,
    split_views,
)

pytestmark = pytest.mark.multiview_smoke


class TestBooleanFrameEdges:
    def test_constant_column_yields_single_closed_bin(self):
        matrix, schema = boolean_frame_schema({"x": [3.5] * 10})
        columns = schema.items_for("x")
        assert len(columns) == 1
        item = schema[columns[0]]
        assert item.lo == item.hi == 3.5 and item.closed_hi
        assert matrix[:, columns[0]].all()
        assert item.contains(3.5)

    def test_all_nan_column_contributes_no_items(self):
        matrix, schema = boolean_frame_schema(
            {"bad": [float("nan")] * 6, "ok": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]}
        )
        assert schema.items_for("bad") == []
        assert len(schema.items_for("ok")) >= 2
        assert matrix.shape[1] == len(schema)

    def test_nan_rows_are_all_false_in_their_block(self):
        values = [1.0, float("nan"), 2.0, 3.0, float("nan"), 4.0]
        matrix, schema = boolean_frame_schema({"x": values})
        columns = schema.items_for("x")
        assert not matrix[1, columns].any()
        assert not matrix[4, columns].any()
        for row in (0, 2, 3, 5):
            assert matrix[row, columns].sum() == 1

    def test_single_row_frame(self):
        matrix, schema = boolean_frame_schema({"x": [1.5], "c": ["red"]})
        assert matrix.shape[0] == 1
        assert matrix[0].sum() == 2  # one numeric bin + one category item
        labels = [schema.label(column) for column in range(len(schema))]
        assert "c = red" in labels

    def test_numeric_looking_strings_stay_categorical(self):
        matrix, schema = boolean_frame_schema({"code": ["1", "2", "1", "2"]})
        kinds = {schema[column].kind for column in range(len(schema))}
        assert kinds == {"category"}
        assert sorted(schema.label(column) for column in range(len(schema))) == [
            "code = 1",
            "code = 2",
        ]

    def test_mdl_matches_equal_height_on_empty_like_frames(self):
        for discretize in ("equal-height", "mdl"):
            matrix, schema = boolean_frame_schema(
                {"x": [2.0] * 3}, discretize=discretize
            )
            assert matrix.shape == (3, 1)


class TestFrameToTwoViewEdges:
    def test_single_frame_with_degenerate_columns(self):
        frame = {
            "const": [1.0] * 12,
            "gone": [float("nan")] * 12,
            "a": list(range(12)),
            "b": ["x", "y"] * 6,
            "c": [float(i % 3) for i in range(12)],
        }
        dataset = frame_to_two_view(None, single_frame=frame, rng=0)
        assert dataset.n_transactions == 12
        sources = {item.source for item in dataset.left_schema} | {
            item.source for item in dataset.right_schema
        }
        assert "gone" not in sources
        assert "const" in sources

    def test_two_frame_path_single_row(self):
        dataset = frame_to_two_view({"x": [1.0]}, {"y": ["k"]})
        assert dataset.n_transactions == 1
        assert dataset.left_schema is not None
        assert dataset.item_label(
            __import__("repro").Side.RIGHT, 0
        ) == "y = k"

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            frame_to_two_view({"x": [1.0, 2.0]}, {"y": [1.0]})


class TestSplitViewsK:
    def test_three_way_split_partitions_all_columns(self):
        rng = np.random.default_rng(5)
        matrix = rng.random((60, 9)) < 0.3
        names = [f"i{j}" for j in range(9)]
        parts = split_views(matrix, names, rng=1, n_views=3)
        assert len(parts) == 3
        combined = sorted(column for part in parts for column in part)
        assert combined == list(range(9))
        assert all(part == sorted(part) for part in parts)

    def test_origin_groups_stay_together(self):
        rng = np.random.default_rng(6)
        matrix = rng.random((40, 6)) < 0.4
        names = [f"i{j}" for j in range(6)]
        origins = ["a", "a", "b", "b", "c", "c"]
        parts = split_views(matrix, names, origins, rng=2, n_views=3)
        for part in parts:
            part_origins = {origins[column] for column in part}
            for origin in part_origins:
                siblings = [c for c in range(6) if origins[c] == origin]
                assert all(column in part for column in siblings)

    def test_invalid_n_views_rejected(self):
        matrix = np.zeros((4, 4), dtype=bool)
        with pytest.raises(ValueError, match="n_views"):
            split_views(matrix, list("abcd"), n_views=1)

    def test_frame_to_multi_view_carries_schemas(self):
        rng = np.random.default_rng(9)
        frame = {
            "a": rng.normal(0, 1, 50),
            "b": rng.normal(5, 2, 50),
            "c": rng.choice(["u", "v"], 50),
            "d": rng.normal(-3, 1, 50),
        }
        dataset = frame_to_multi_view(frame, n_views=3, rng=4)
        assert dataset.n_views == 3
        assert all(schema is not None for schema in dataset.schemas)
        for view, schema in zip(dataset.views, dataset.schemas):
            assert view.shape[1] == len(schema)
