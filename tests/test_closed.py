"""Unit tests for closed frequent itemset mining."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mining.closed import closed_itemsets, closure
from tests.test_eclat import brute_force_frequent


def brute_force_closed(matrix: np.ndarray, minsup: int):
    """Reference: a frequent itemset is closed iff no frequent superset
    (equivalently, no superset at all) has the same support."""
    frequent = brute_force_frequent(matrix, minsup)
    closed = {}
    for itemset, support in frequent.items():
        is_closed = True
        for other, other_support in frequent.items():
            if other != itemset and set(itemset) < set(other) and other_support == support:
                is_closed = False
                break
        if is_closed:
            closed[itemset] = support
    return closed


class TestClosure:
    def test_closure_of_all_transactions(self):
        matrix = np.array([[1, 1, 0], [1, 0, 0]], dtype=bool)
        mask = np.ones(2, dtype=bool)
        result = closure(matrix, mask)
        assert result.tolist() == [True, False, False]

    def test_closure_of_empty_tidset_is_universe(self):
        matrix = np.array([[1, 0]], dtype=bool)
        result = closure(matrix, np.zeros(1, dtype=bool))
        assert result.all()

    def test_closure_is_idempotent(self, rng):
        matrix = rng.random((20, 6)) < 0.4
        tids = matrix[:, 2]
        closed_items = closure(matrix, tids)
        # Transactions containing the closure are exactly `tids`' superset
        # relation: re-closing changes nothing.
        again = closure(matrix, matrix[:, np.flatnonzero(closed_items)].all(axis=1))
        np.testing.assert_array_equal(closed_items, again)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("minsup", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, minsup, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.random((25, 7)) < 0.45
        expected = brute_force_closed(matrix, minsup)
        mined = {
            itemset: support
            for itemset, support in closed_itemsets(matrix, minsup)
        }
        assert mined == expected

    def test_denser_data(self):
        rng = np.random.default_rng(9)
        matrix = rng.random((15, 6)) < 0.7
        expected = brute_force_closed(matrix, 2)
        mined = dict(closed_itemsets(matrix, 2))
        assert mined == expected


class TestProperties:
    def test_no_duplicates(self, rng):
        matrix = rng.random((30, 8)) < 0.4
        mined = closed_itemsets(matrix, 1)
        itemsets = [itemset for itemset, __ in mined]
        assert len(itemsets) == len(set(itemsets))

    def test_closed_subset_of_frequent(self, rng):
        matrix = rng.random((30, 6)) < 0.4
        frequent = set(brute_force_frequent(matrix, 2))
        closed = {itemset for itemset, __ in closed_itemsets(matrix, 2)}
        assert closed <= frequent

    def test_fewer_closed_than_frequent(self):
        # Perfectly correlated columns: many frequent, few closed.
        column = np.random.default_rng(0).random(30) < 0.5
        matrix = np.stack([column] * 5, axis=1)
        frequent = brute_force_frequent(matrix, 1)
        closed = closed_itemsets(matrix, 1)
        assert len(closed) == 1
        assert len(frequent) == 2 ** 5 - 1

    def test_budget_guard(self):
        rng = np.random.default_rng(3)
        matrix = rng.random((40, 12)) < 0.8
        with pytest.raises(RuntimeError, match="max_itemsets"):
            closed_itemsets(matrix, 1, max_itemsets=5)

    def test_minsup_above_transactions(self, rng):
        matrix = rng.random((5, 3)) < 0.5
        assert closed_itemsets(matrix, 6) == []

    def test_minsup_validation(self, rng):
        matrix = rng.random((5, 3)) < 0.5
        with pytest.raises(ValueError, match="minsup"):
            closed_itemsets(matrix, 0)
