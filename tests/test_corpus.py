"""Corpus-scale discovery: store round-trips, sketch soundness, anytime budgets.

The contracts pinned here (see ``docs/corpus.md``):

* the ``RPROCOL1`` store round-trips a dataset exactly and **never
  mis-decodes** — any corruption or truncation raises
  :class:`ArtifactCorruptError`;
* sketch bounds are *sound* (always upper-bound the exact values) and
  the sketch-pruned top-k is **bit-identical** to the exact engine;
* streamed scans keep peak memory O(block), not O(corpus);
* a budget-interrupted search resumes bit-identically from its
  checkpoint, and ``gain + gap_bound`` always dominates the optimum.
"""

from __future__ import annotations

import json
import os
import tracemalloc

import numpy as np
import pytest

from repro.core.search import ExactRuleSearch, SearchCheckpoint
from repro.core.state import CoverState
from repro.core.translator import TranslatorExact
from repro.corpus import (
    AnytimeSearch,
    ColumnStore,
    SketchBuilder,
    exact_topk_pairs,
    ingest_chunks,
    ingest_dataset,
    topk_pairs,
)
from repro.data.dataset import TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.resilience import FaultInjector
from repro.serve.artifact import ArtifactCorruptError
from tests.conftest import random_two_view

pytestmark = pytest.mark.corpus_smoke


@pytest.fixture()
def planted():
    data, _ = generate_planted(SyntheticSpec(n_transactions=500, seed=11))
    return data


@pytest.fixture()
def store_path(tmp_path, planted):
    path = tmp_path / "corpus.col"
    ingest_dataset(planted, path, chunk_rows=97, block_words=2)
    return path


class TestStoreRoundTrip:
    def test_dataset_round_trip(self, planted, store_path):
        with ColumnStore(store_path) as store:
            assert store.n_transactions == planted.n_transactions
            assert store.n_blocks > 1  # block_words=2 -> 128-row blocks
            back = store.to_dataset()
            assert np.array_equal(back.left, planted.left)
            assert np.array_equal(back.right, planted.right)
            assert back.left_names == planted.left_names
            store.verify()

    def test_counts_and_overlaps_match_dense(self, planted, store_path):
        with ColumnStore(store_path) as store:
            counts_left, counts_right = store.column_counts()
            assert np.array_equal(counts_left, planted.left.sum(axis=0))
            assert np.array_equal(counts_right, planted.right.sum(axis=0))
            xs = np.arange(planted.n_left, dtype=np.int64)
            ys = xs % planted.n_right
            streamed = store.pair_overlaps(xs, ys)
            dense = np.array(
                [
                    int((planted.left[:, x] & planted.right[:, y]).sum())
                    for x, y in zip(xs, ys)
                ]
            )
            assert np.array_equal(streamed, dense)

    def test_quant_bits_match_engine(self, planted, store_path):
        from repro.core.search import _Quantized

        with ColumnStore(store_path) as store:
            engine = _Quantized(CoverState(planted))
            assert float(1 << store.quant_bits) == engine.one

    def test_ingest_row_count_mismatch(self, tmp_path, planted):
        with pytest.raises(ValueError, match="expected 500"):
            ingest_chunks(
                iter([(planted.left[:100], planted.right[:100])]),
                tmp_path / "short.col",
                n_transactions=planted.n_transactions,
                n_left=planted.n_left,
                n_right=planted.n_right,
            )
        assert not (tmp_path / "short.col").exists()


class TestStoreCorruption:
    """Chaos contract: a damaged store raises, never mis-decodes."""

    def test_truncated_file_raises_at_open(self, store_path, tmp_path):
        clipped = tmp_path / "clipped.col"
        clipped.write_bytes(store_path.read_bytes()[:-64])
        with pytest.raises(ArtifactCorruptError):
            ColumnStore(clipped)

    def test_on_disk_bit_flip_is_caught(self, store_path, tmp_path):
        raw = bytearray(store_path.read_bytes())
        flipped = tmp_path / "flipped.col"
        # Flip one payload bit in every block region and expect the scan
        # (or open, for header bytes) to refuse each time.
        with ColumnStore(store_path) as store:
            offsets = [
                store._payload_start + offset + 3 for offset, __ in store._blocks
            ]
        for offset in offsets:
            damaged = bytearray(raw)
            damaged[offset] ^= 0x10
            flipped.write_bytes(bytes(damaged))
            with pytest.raises(ArtifactCorruptError):
                with ColumnStore(flipped) as store:
                    for __ in store.iter_blocks():
                        pass

    def test_injected_block_corruption_raises(self, store_path):
        injector = FaultInjector().plan(
            "corpus.store.block.bytes", kind="corrupt", nth=2
        )
        with ColumnStore(store_path) as store:
            with injector.active():
                store.read_block(0)  # first read passes through
                with pytest.raises(ArtifactCorruptError):
                    store.read_block(1)
            assert injector.fired

    def test_injected_truncation_raises(self, store_path):
        injector = FaultInjector().plan("corpus.store.block.bytes", kind="truncate")
        with ColumnStore(store_path) as store:
            with injector.active():
                with pytest.raises(ArtifactCorruptError):
                    store.read_block(0)

    def test_torn_header_write_is_unreadable(self, tmp_path, planted):
        injector = FaultInjector().plan("corpus.store.bytes", kind="corrupt", at=100)
        with injector.active():
            ingest_dataset(planted, tmp_path / "torn.col", chunk_rows=128)
        with pytest.raises(ArtifactCorruptError):
            ColumnStore(tmp_path / "torn.col")

    def test_scan_fault_point_fires(self, store_path):
        injector = FaultInjector().plan("corpus.store.scan", kind="error")
        from repro.resilience import InjectedFault

        with ColumnStore(store_path) as store:
            with injector.active():
                with pytest.raises(InjectedFault):
                    store.pair_overlaps(np.array([0]), np.array([0]))


class TestSketchSoundness:
    """Property loops: sketch bounds must always dominate exact values."""

    def test_overlap_bounds_are_sound(self):
        rng = np.random.default_rng(42)
        for trial in range(20):
            n = int(rng.integers(60, 400))
            n_left = int(rng.integers(2, 12))
            n_right = int(rng.integers(2, 12))
            density = float(rng.uniform(0.05, 0.6))
            left = rng.random((n, n_left)) < density
            right = rng.random((n, n_right)) < density
            builder = SketchBuilder(
                n, n_left, n_right,
                sample_size=int(rng.integers(8, n + 1)),
                n_hashes=int(rng.integers(0, 6)),
                seed=trial,
            )
            step = int(rng.integers(17, 97))
            for start in range(0, n, step):
                builder.update(start, left[start:start + step], right[start:start + step])
            sketches = builder.finish()
            counts_left = left.sum(axis=0).astype(np.int64)
            counts_right = right.sum(axis=0).astype(np.int64)
            exact = left.T.astype(np.int64) @ right.astype(np.int64)
            bounds = sketches.overlap_upper_bounds(counts_left, counts_right)
            assert (bounds >= exact).all(), f"unsound bound in trial {trial}"

    def test_full_sample_bounds_are_exact(self):
        # With every row sampled the slack term vanishes and the bound
        # collapses to the exact overlap.
        rng = np.random.default_rng(0)
        left = rng.random((128, 5)) < 0.4
        right = rng.random((128, 6)) < 0.4
        builder = SketchBuilder(128, 5, 6, sample_size=128, n_hashes=4, seed=1)
        builder.update(0, left, right)
        sketches = builder.finish()
        exact = left.T.astype(np.int64) @ right.astype(np.int64)
        bounds = sketches.overlap_upper_bounds(
            left.sum(axis=0).astype(np.int64), right.sum(axis=0).astype(np.int64)
        )
        assert np.array_equal(bounds, exact)

    def test_store_sketch_round_trip(self, store_path):
        with ColumnStore(store_path) as store:
            sketches = store.sketches()
            counts_left, counts_right = store.column_counts()
            dense = store.to_dataset()
            exact = dense.left.T.astype(np.int64) @ dense.right.astype(np.int64)
            bounds = sketches.overlap_upper_bounds(counts_left, counts_right)
            assert (bounds >= exact).all()


class TestTopKIdentity:
    """Sketched + re-verified top-k must equal the exact engine bit-for-bit."""

    @pytest.mark.parametrize("seed", range(4))
    def test_pruned_matches_exact(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        dataset = random_two_view(rng, n=300, n_left=12, n_right=10, density=0.3)
        path = tmp_path / f"c{seed}.col"
        ingest_dataset(dataset, path, chunk_rows=64, block_words=1)
        with ColumnStore(path) as store:
            pruned = topk_pairs(store, k=7)
            baseline = topk_pairs(store, k=7, prune=False)
            dense = exact_topk_pairs(dataset, k=7, quant_bits=store.quant_bits)
        assert pruned.fingerprint() == dense.fingerprint()
        assert baseline.fingerprint() == dense.fingerprint()
        assert pruned.n_scanned <= baseline.n_scanned

    def test_top1_matches_search_seed(self, planted, store_path):
        # The best pair rule is exactly what the exact search's seeding
        # step finds; a size-2-capped search must agree with the store.
        with ColumnStore(store_path) as store:
            top = topk_pairs(store, k=1)
        rule, gain, __ = ExactRuleSearch(
            CoverState(planted), max_rule_size=2
        ).find_best_rule()
        assert top.rules and top.rules[0] == rule
        assert repr(top.gains[0]) == repr(gain)

    def test_prune_false_has_no_sketch_reads(self, store_path, monkeypatch):
        with ColumnStore(store_path) as store:
            # Baseline mode must not touch the sketch sections at all —
            # otherwise the benchmark's prune-vs-baseline comparison
            # would charge the baseline for sketch work.
            def boom():
                raise AssertionError("baseline scan read the sketches")

            monkeypatch.setattr(store, "sketches", boom)
            topk_pairs(store, k=3, prune=False)


class TestPeakMemory:
    def test_scan_rss_stays_block_sized(self, tmp_path):
        # 256k rows x (16+16) items at block_words=16 -> a 1 MiB payload
        # across 256 blocks; a streamed scan must stay far below that.
        n = 262144
        chunk = 8192

        def chunks():
            for start in range(0, n, chunk):
                crng = np.random.default_rng((5, start))
                yield (
                    crng.random((min(chunk, n - start), 16)) < 0.3,
                    crng.random((min(chunk, n - start), 16)) < 0.3,
                )

        path = tmp_path / "big.col"
        ingest_chunks(
            chunks(), path, n_transactions=n, n_left=16, n_right=16,
            block_words=16, sample_size=512,
        )
        with ColumnStore(path) as store:
            payload = store.n_blocks * store.block_nbytes
            store.pair_overlaps(np.array([0]), np.array([0]))  # warm caches
            tracemalloc.start()
            topk_pairs(store, k=3, batch_size=64)
            __, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        # Peak is O(pair batch + one block + sketch tables) -- far below
        # the payload the scan streamed through (and independent of the
        # corpus length).
        assert payload > 1_000_000
        assert peak < payload / 3, f"peak {peak} vs payload {payload}"


class TestAnytimeBudgets:
    def test_interrupted_resume_is_bit_identical(self, planted):
        full_search = ExactRuleSearch(CoverState(planted), max_rule_size=4)
        full = full_search.find_best_rule()
        assert full[2].complete and full[2].gap_bound == 0.0

        state = CoverState(planted)
        checkpoint = None
        stats = None
        legs = 0
        while True:
            search = ExactRuleSearch(
                state,
                max_rule_size=4,
                max_nodes=(stats.nodes_visited + 64) if stats else 64,
                checkpoint=checkpoint,
            )
            rule, gain, stats = search.find_best_rule()
            legs += 1
            if stats.complete:
                break
            # Honesty invariant on every interrupted leg.
            assert gain + stats.gap_bound >= full[1] - 1e-9
            checkpoint = search.last_checkpoint
        assert legs > 3
        assert (rule, repr(gain)) == (full[0], repr(full[1]))
        assert stats.nodes_visited == full[2].nodes_visited
        assert stats.evaluations == full[2].evaluations
        assert stats.nodes_pruned_rub == full[2].nodes_pruned_rub

    def test_checkpoint_json_round_trip(self, planted):
        search = ExactRuleSearch(CoverState(planted), max_rule_size=4, max_nodes=40)
        __, gain, stats = search.find_best_rule()
        assert not stats.complete and stats.nodes_visited == 40
        checkpoint = search.last_checkpoint
        assert checkpoint is not None
        rebuilt = SearchCheckpoint.from_dict(
            json.loads(json.dumps(checkpoint.to_dict()))
        )
        assert rebuilt == checkpoint

    def test_checkpoint_requires_bitset(self, planted):
        search = ExactRuleSearch(CoverState(planted), max_nodes=10)
        search.find_best_rule()
        with pytest.raises(ValueError, match="bitset"):
            ExactRuleSearch(
                CoverState(planted), kernel="bool",
                checkpoint=search.last_checkpoint,
            )

    def test_bool_kernel_budget_reports_gap(self, planted):
        __, gain, stats = ExactRuleSearch(
            CoverState(planted), kernel="bool", max_rule_size=3, max_nodes=30
        ).find_best_rule()
        full = ExactRuleSearch(
            CoverState(planted), kernel="bool", max_rule_size=3
        ).find_best_rule()
        assert not stats.complete and stats.nodes_visited == 30
        assert gain + stats.gap_bound >= full[1] - 1e-9

    def test_n_jobs_budget_warning(self, planted):
        with pytest.warns(UserWarning, match="n_jobs=3 is ignored"):
            ExactRuleSearch(CoverState(planted), max_nodes=10, n_jobs=3)

    def test_anytime_search_completes_and_matches(self, planted):
        full = ExactRuleSearch(CoverState(planted), max_rule_size=3).find_best_rule()
        result = AnytimeSearch(
            CoverState(planted), time_budget=60.0, slice_nodes=128, max_rule_size=3
        ).run()
        assert result.stats.complete and result.checkpoint is None
        assert (result.rule, repr(result.gain)) == (full[0], repr(full[1]))
        assert result.n_slices >= 1

    def test_anytime_node_budget_stops(self, planted):
        result = AnytimeSearch(
            CoverState(planted), max_nodes=100, time_budget=60.0,
            slice_nodes=32, max_rule_size=4,
        ).run()
        assert result.stats.nodes_visited == 100
        assert not result.stats.complete
        assert result.checkpoint is not None
        assert result.stats.gap_bound >= 0.0

    def test_anytime_rejects_bool_kernel(self, planted):
        with pytest.raises(ValueError, match="bitset"):
            AnytimeSearch(CoverState(planted), kernel="bool")


class TestTranslatorIntegration:
    def test_fit_from_store_matches_dense(self, planted, store_path):
        with ColumnStore(store_path) as store:
            from_store = TranslatorExact(max_rule_size=3, max_iterations=4).fit(
                store=store
            )
        dense = TranslatorExact(max_rule_size=3, max_iterations=4).fit(planted)
        assert [(r.rule, repr(r.gain)) for r in from_store.history] == [
            (r.rule, repr(r.gain)) for r in dense.history
        ]
        assert from_store.gap_bound == 0.0

    def test_fit_rejects_store_and_dataset(self, planted, store_path):
        with ColumnStore(store_path) as store:
            with pytest.raises(ValueError, match="not both"):
                TranslatorExact().fit(planted, store=store)
        with pytest.raises(ValueError, match="dataset or a store"):
            TranslatorExact().fit()

    def test_time_budget_requires_bitset(self):
        with pytest.raises(ValueError, match="bitset"):
            TranslatorExact(kernel="bool", time_budget_per_search=1.0)

    def test_budgeted_fit_reports_gap(self, planted):
        result = TranslatorExact(
            max_rule_size=4, max_iterations=1, max_nodes_per_search=50
        ).fit(planted)
        assert not result.converged
        assert result.gap_bound > 0.0


class TestCorpusCli:
    def test_ingest_then_fit(self, tmp_path, planted, capsys):
        from repro.cli import main
        from repro.data.io import save_dataset

        data_path = tmp_path / "planted.2v"
        save_dataset(planted, data_path)
        store_file = tmp_path / "planted.col"
        assert main([
            "ingest", str(data_path), "--output", str(store_file),
            "--chunk-rows", "128",
        ]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out and "quant_bits" in out
        assert main([
            "fit", "--store", str(store_file), "--method", "exact",
            "--max-rule-size", "2", "--max-iterations", "2", "--limit", "2",
        ]) == 0
        assert "translator-exact" in capsys.readouterr().out

    def test_fit_budget_prints_gap(self, tmp_path, planted, capsys):
        from repro.cli import main
        from repro.data.io import save_dataset

        data_path = tmp_path / "planted.2v"
        save_dataset(planted, data_path)
        assert main([
            "fit", str(data_path), "--method", "exact", "--max-rule-size", "3",
            "--max-iterations", "1", "--max-nodes", "100", "--limit", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "gap bound" in out

    def test_budget_flags_require_exact(self, tmp_path, planted):
        from repro.cli import main
        from repro.data.io import save_dataset

        data_path = tmp_path / "planted.2v"
        save_dataset(planted, data_path)
        with pytest.raises(SystemExit):
            main(["fit", str(data_path), "--method", "greedy", "--max-nodes", "10"])
