"""Unit tests for two-view candidate mining."""

from __future__ import annotations

import pytest

from repro.data.dataset import Side
from repro.mining.twoview import TwoViewCandidate, auto_minsup, two_view_candidates


class TestCandidateMining:
    def test_candidates_span_both_views(self, planted_dataset):
        candidates = two_view_candidates(planted_dataset, minsup=3)
        assert candidates
        for candidate in candidates:
            assert candidate.lhs and candidate.rhs

    def test_supports_correct(self, planted_dataset):
        for candidate in two_view_candidates(planted_dataset, minsup=3)[:50]:
            mask = planted_dataset.joint_support_mask(candidate.lhs, candidate.rhs)
            assert int(mask.sum()) == candidate.support

    def test_minsup_respected(self, planted_dataset):
        for candidate in two_view_candidates(planted_dataset, minsup=10):
            assert candidate.support >= 10

    def test_sorted_by_support(self, planted_dataset):
        candidates = two_view_candidates(planted_dataset, minsup=3)
        supports = [candidate.support for candidate in candidates]
        assert supports == sorted(supports, reverse=True)

    def test_closed_subset_of_all(self, planted_dataset):
        closed = {
            (candidate.lhs, candidate.rhs)
            for candidate in two_view_candidates(planted_dataset, minsup=5, closed=True)
        }
        everything = {
            (candidate.lhs, candidate.rhs)
            for candidate in two_view_candidates(planted_dataset, minsup=5, closed=False)
        }
        assert closed <= everything

    def test_max_size(self, planted_dataset):
        for candidate in two_view_candidates(planted_dataset, minsup=3, max_size=3):
            assert candidate.size <= 3

    def test_candidate_size_property(self):
        candidate = TwoViewCandidate((0, 1), (2,), 7)
        assert candidate.size == 3


class TestAutoMinsup:
    def test_respects_budget(self, planted_dataset):
        minsup, candidates = auto_minsup(planted_dataset, target_candidates=50)
        assert len(candidates) <= 50
        assert minsup >= 1

    def test_large_budget_reaches_low_minsup(self, toy_dataset):
        minsup, candidates = auto_minsup(toy_dataset, target_candidates=10_000)
        assert minsup == 1
        assert candidates

    def test_validation(self, toy_dataset):
        with pytest.raises(ValueError, match="target_candidates"):
            auto_minsup(toy_dataset, target_candidates=0)

    def test_consistent_with_direct_mining(self, planted_dataset):
        minsup, candidates = auto_minsup(planted_dataset, target_candidates=200)
        direct = two_view_candidates(planted_dataset, minsup)
        assert {(c.lhs, c.rhs) for c in candidates} == {(c.lhs, c.rhs) for c in direct}
