"""Unit tests for comparison harness, trace, visualisation and tables."""

from __future__ import annotations

import pytest

from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorSelect
from repro.eval.comparison import compare_methods
from repro.eval.tables import format_table
from repro.eval.trace import construction_trace, format_trace
from repro.eval.visualize import graph_statistics, render_ascii, rule_graph, to_dot


class TestComparison:
    def test_four_methods(self, planted_dataset):
        results = compare_methods(planted_dataset, minsup=5)
        assert len(results) == 4
        methods = {result.method for result in results}
        assert any("translator" in method for method in methods)
        assert any("krimp" in method for method in methods)

    def test_translator_wins_on_planted_data(self, planted_dataset):
        results = compare_methods(planted_dataset, minsup=5)
        by_method = {result.method: result for result in results}
        translator = by_method["translator-select(1)"]
        # Paper, Table 3: TRANSLATOR attains the best compression ratio.
        for method, result in by_method.items():
            if method != "translator-select(1)":
                assert translator.compression_ratio <= result.compression_ratio + 0.02

    def test_rows_formattable(self, planted_dataset):
        results = compare_methods(planted_dataset, minsup=5)
        text = format_table([result.as_row() for result in results])
        assert "L%" in text


class TestTrace:
    def test_series_lengths(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        series = construction_trace(result)
        expected_length = result.n_rules + 1
        assert all(len(values) == expected_length for values in series.values())

    def test_uncovered_monotone_decreasing(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        series = construction_trace(result)
        for key in ("uncovered_left", "uncovered_right"):
            values = series[key]
            assert all(b <= a for a, b in zip(values, values[1:]))

    def test_errors_monotone_increasing(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        series = construction_trace(result)
        for key in ("errors_left", "errors_right"):
            values = series[key]
            assert all(b >= a for a, b in zip(values, values[1:]))

    def test_total_strictly_decreasing(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        values = construction_trace(result)["L_total"]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_total_is_sum_of_parts(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        series = construction_trace(result)
        for index in range(len(series["L_total"])):
            assert series["L_total"][index] == pytest.approx(
                series["L_left_to_right"][index]
                + series["L_right_to_left"][index]
                + series["L_table"][index]
            )

    def test_format_trace(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        text = format_trace(result)
        assert "iter" in text
        assert str(result.n_rules) in text


class TestVisualize:
    @pytest.fixture
    def table(self):
        return TranslationTable(
            [
                TranslationRule((0, 1), (2,), Direction.BOTH),
                TranslationRule((2,), (0, 1), Direction.FORWARD),
            ]
        )

    def test_graph_structure(self, toy_dataset, table):
        graph = rule_graph(toy_dataset, table)
        kinds = {data["kind"] for __, data in graph.nodes(data=True)}
        assert kinds == {"left_item", "rule", "right_item"}
        # Each rule connects to exactly its items.
        assert graph.degree("rule:0") == 3
        assert graph.degree("rule:1") == 3

    def test_bidirectional_edges(self, toy_dataset, table):
        graph = rule_graph(toy_dataset, table)
        edge_flags = {
            tuple(sorted((source, target))): data["bidirectional"]
            for source, target, data in graph.edges(data=True)
        }
        assert any(edge_flags.values())
        assert not all(edge_flags.values())

    def test_statistics(self, toy_dataset, table):
        stats = graph_statistics(rule_graph(toy_dataset, table))
        assert stats["n_rules"] == 2
        assert stats["n_bidirectional_rules"] == 1
        assert stats["bidirectional_share"] == pytest.approx(0.5)
        assert stats["average_items_per_rule"] == pytest.approx(3.0)

    def test_dot_output(self, toy_dataset, table):
        dot = to_dot(rule_graph(toy_dataset, table))
        assert dot.startswith("graph rules {")
        assert dot.rstrip().endswith("}")
        assert "color=grey" in dot and "color=black" in dot

    def test_ascii_rendering(self, toy_dataset, table):
        text = render_ascii(toy_dataset, table)
        assert "<=>" in text
        assert "==>" in text

    def test_ascii_limit(self, toy_dataset, table):
        text = render_ascii(toy_dataset, table, limit=1)
        assert "..." in text


class TestFormatTable:
    def test_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert "2.50" in text

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty(self):
        assert format_table([]) == "(empty table)"
        assert format_table([], title="T") == "T"

    def test_missing_values(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text
