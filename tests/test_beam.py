"""Unit tests for the beam-search TRANSLATOR extension."""

from __future__ import annotations

import pytest

from repro.data.synthetic import SyntheticSpec, generate_planted, random_dataset
from repro.core.beam import TranslatorBeam
from repro.core.translator import TranslatorExact, TranslatorSelect


class TestValidation:
    def test_rejects_bad_beam_width(self):
        with pytest.raises(ValueError, match="beam_width"):
            TranslatorBeam(beam_width=0)

    def test_rejects_bad_rule_size(self):
        with pytest.raises(ValueError, match="max_rule_size"):
            TranslatorBeam(max_rule_size=1)


class TestBehaviour:
    def test_compresses_structured_data(self, planted_dataset):
        result = TranslatorBeam().fit(planted_dataset)
        assert result.n_rules > 0
        assert result.compression_ratio < 1.0
        assert result.method.startswith("translator-beam")

    def test_all_gains_positive_and_decreasing_total(self, planted_dataset):
        result = TranslatorBeam().fit(planted_dataset)
        assert all(record.gain > 0 for record in result.history)
        totals = [record.total_bits for record in result.history]
        assert all(later < earlier for earlier, later in zip(totals, totals[1:]))

    def test_max_iterations(self, planted_dataset):
        result = TranslatorBeam(max_iterations=2).fit(planted_dataset)
        assert result.n_rules <= 2

    def test_respects_max_rule_size(self, planted_dataset):
        result = TranslatorBeam(max_rule_size=3).fit(planted_dataset)
        assert all(rule.size <= 3 for rule in result.table)

    def test_noise_yields_near_baseline(self):
        noise = random_dataset(200, 8, 8, 0.12, 0.12, seed=31)
        result = TranslatorBeam().fit(noise)
        assert result.compression_ratio > 0.9

    def test_deterministic(self, planted_dataset):
        first = TranslatorBeam().fit(planted_dataset)
        second = TranslatorBeam().fit(planted_dataset)
        assert list(first.table) == list(second.table)


class TestQuality:
    @pytest.fixture(scope="class")
    def easy_dataset(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=250, n_left=9, n_right=9,
                density_left=0.1, density_right=0.1,
                n_rules=3, confidence=(0.95, 1.0), activation=(0.2, 0.3), seed=37,
            )
        )
        return dataset

    def test_close_to_exact_on_easy_data(self, easy_dataset):
        exact = TranslatorExact(max_rule_size=5).fit(easy_dataset)
        beam = TranslatorBeam(beam_width=8, max_rule_size=5).fit(easy_dataset)
        assert beam.compression_ratio <= exact.compression_ratio + 0.08

    def test_competitive_with_select(self, easy_dataset):
        select = TranslatorSelect(k=1, minsup=2).fit(easy_dataset)
        beam = TranslatorBeam(beam_width=8).fit(easy_dataset)
        assert beam.compression_ratio <= select.compression_ratio + 0.08

    def test_wider_beam_no_worse(self, easy_dataset):
        narrow = TranslatorBeam(beam_width=1).fit(easy_dataset)
        wide = TranslatorBeam(beam_width=12).fit(easy_dataset)
        assert wide.compression_ratio <= narrow.compression_ratio + 0.02

    def test_first_rule_never_beats_exact(self, easy_dataset):
        exact = TranslatorExact(max_iterations=1).fit(easy_dataset)
        beam = TranslatorBeam(max_iterations=1).fit(easy_dataset)
        if beam.history and exact.history:
            assert beam.history[0].gain <= exact.history[0].gain + 1e-9
