"""Tests for the ARFF reader/writer (repro.data.arff)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.arff import (
    ArffAttribute,
    ArffError,
    ArffRelation,
    arff_to_frame,
    arff_to_two_view,
    load_arff,
    loads_arff,
    save_arff,
    two_view_to_arff,
)
from repro.data.dataset import TwoViewDataset

DENSE_DOC = """\
% A small weather-style relation
@relation weather

@attribute temperature numeric
@attribute outlook {sunny, overcast, rainy}
@attribute windy {0, 1}
@attribute play {yes, no}

@data
30.5, sunny, 0, yes
% a comment between rows
21, overcast, 1, no
?, rainy, 1, yes
"""

SPARSE_DOC = """\
@relation tags
@attribute t0 {0, 1}
@attribute t1 {0, 1}
@attribute t2 {0, 1}
@attribute score numeric
@data
{0 1, 3 2.5}
{}
{1 1, 2 1}
"""


class TestParsing:
    def test_relation_name(self):
        relation = loads_arff(DENSE_DOC)
        assert relation.name == "weather"

    def test_attribute_kinds(self):
        relation = loads_arff(DENSE_DOC)
        kinds = [attribute.kind for attribute in relation.attributes]
        assert kinds == ["numeric", "nominal", "nominal", "nominal"]

    def test_nominal_values(self):
        relation = loads_arff(DENSE_DOC)
        assert relation.attributes[1].values == ("sunny", "overcast", "rainy")

    def test_row_count_and_cells(self):
        relation = loads_arff(DENSE_DOC)
        assert relation.n_rows == 3
        assert relation.rows[0] == [30.5, "sunny", "0", "yes"]
        assert relation.rows[1] == [21.0, "overcast", "1", "no"]

    def test_missing_value_is_none(self):
        relation = loads_arff(DENSE_DOC)
        assert relation.rows[2][0] is None

    def test_integer_and_real_are_numeric(self):
        doc = "@relation r\n@attribute a integer\n@attribute b real\n@data\n1, 2.5\n"
        relation = loads_arff(doc)
        assert all(attribute.kind == "numeric" for attribute in relation.attributes)
        assert relation.rows[0] == [1.0, 2.5]

    def test_quoted_attribute_names_and_values(self):
        doc = (
            "@relation 'my data'\n"
            "@attribute 'a name' {'v 1', \"v,2\"}\n"
            "@data\n"
            "'v 1'\n"
            '"v,2"\n'
        )
        relation = loads_arff(doc)
        assert relation.name == "my data"
        assert relation.attributes[0].name == "a name"
        assert relation.attributes[0].values == ("v 1", "v,2")
        assert relation.column("a name") == ["v 1", "v,2"]

    def test_case_insensitive_keywords(self):
        doc = "@RELATION r\n@ATTRIBUTE a NUMERIC\n@DATA\n1\n"
        relation = loads_arff(doc)
        assert relation.n_attributes == 1
        assert relation.rows == [[1.0]]

    def test_string_attribute(self):
        doc = "@relation r\n@attribute note string\n@data\nhello\n"
        relation = loads_arff(doc)
        assert relation.attributes[0].kind == "string"
        assert relation.rows == [["hello"]]

    def test_name_override(self):
        relation = loads_arff(DENSE_DOC, name="other")
        assert relation.name == "other"

    def test_trailing_comment_stripped(self):
        doc = "@relation r\n@attribute a numeric\n@data\n1 % trailing\n"
        relation = loads_arff(doc)
        assert relation.rows == [[1.0]]

    def test_percent_inside_quotes_kept(self):
        doc = "@relation r\n@attribute a string\n@data\n'50% off'\n"
        relation = loads_arff(doc)
        assert relation.rows == [["50% off"]]


class TestSparseRows:
    def test_sparse_defaults(self):
        relation = loads_arff(SPARSE_DOC)
        # Unmentioned nominal cells default to the first declared value.
        assert relation.rows[1] == ["0", "0", "0", 0.0]

    def test_sparse_explicit_cells(self):
        relation = loads_arff(SPARSE_DOC)
        assert relation.rows[0] == ["1", "0", "0", 2.5]
        assert relation.rows[2] == ["0", "1", "1", 0.0]

    def test_sparse_index_out_of_range(self):
        doc = "@relation r\n@attribute a numeric\n@data\n{5 1}\n"
        with pytest.raises(ArffError, match="out of range"):
            loads_arff(doc)

    def test_sparse_malformed_cell(self):
        doc = "@relation r\n@attribute a numeric\n@data\n{0}\n"
        with pytest.raises(ArffError, match="malformed sparse cell"):
            loads_arff(doc)


class TestErrors:
    def test_wrong_cell_count(self):
        doc = "@relation r\n@attribute a numeric\n@attribute b numeric\n@data\n1\n"
        with pytest.raises(ArffError, match="expected 2"):
            loads_arff(doc)

    def test_bad_numeric(self):
        doc = "@relation r\n@attribute a numeric\n@data\nnot-a-number\n"
        with pytest.raises(ArffError, match="invalid numeric"):
            loads_arff(doc)

    def test_unknown_nominal_value(self):
        doc = "@relation r\n@attribute a {x, y}\n@data\nz\n"
        with pytest.raises(ArffError, match="not among nominal values"):
            loads_arff(doc)

    def test_date_attribute_rejected(self):
        doc = "@relation r\n@attribute when date\n@data\n"
        with pytest.raises(ArffError, match="unsupported attribute type"):
            loads_arff(doc)

    def test_data_before_attributes(self):
        doc = "@relation r\n@data\n1\n"
        with pytest.raises(ArffError, match="@data before any @attribute"):
            loads_arff(doc)

    def test_no_attributes(self):
        with pytest.raises(ArffError, match="no attributes"):
            loads_arff("@relation r\n")

    def test_unexpected_header_line(self):
        doc = "@relation r\nsurprise\n"
        with pytest.raises(ArffError, match="unexpected header"):
            loads_arff(doc)

    def test_error_carries_line_number(self):
        doc = "@relation r\n@attribute a numeric\n@data\nbad\n"
        with pytest.raises(ArffError) as excinfo:
            loads_arff(doc)
        assert excinfo.value.line_number == 4

    def test_empty_nominal_list(self):
        doc = "@relation r\n@attribute a {}\n@data\n"
        with pytest.raises(ArffError, match="empty nominal"):
            loads_arff(doc)


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        relation = loads_arff(DENSE_DOC)
        path = tmp_path / "weather.arff"
        save_arff(relation, path)
        reread = load_arff(path)
        assert reread.name == relation.name
        assert reread.attributes == relation.attributes
        assert reread.rows == relation.rows

    def test_save_quotes_special_names(self, tmp_path):
        relation = ArffRelation(
            "spaced name",
            [ArffAttribute("a b", "nominal", ("x y", "z"))],
            [["x y"], ["z"]],
        )
        path = tmp_path / "quoted.arff"
        save_arff(relation, path)
        reread = load_arff(path)
        assert reread.attributes[0].name == "a b"
        assert reread.rows == relation.rows

    def test_missing_value_round_trip(self, tmp_path):
        relation = loads_arff(DENSE_DOC)
        path = tmp_path / "missing.arff"
        save_arff(relation, path)
        assert load_arff(path).rows[2][0] is None


class TestFrameConversion:
    def test_binary_nominal_becomes_boolean(self):
        relation = loads_arff(DENSE_DOC)
        frame = arff_to_frame(relation)
        assert frame["windy"] == [False, True, True]

    def test_numeric_stays_numeric_with_median_imputation(self):
        relation = loads_arff(DENSE_DOC)
        frame = arff_to_frame(relation)
        # Median of the two present values 30.5 and 21.
        assert frame["temperature"] == [30.5, 21.0, pytest.approx(25.75)]

    def test_nonbinary_nominal_stays_categorical(self):
        relation = loads_arff(DENSE_DOC)
        frame = arff_to_frame(relation)
        assert frame["outlook"] == ["sunny", "overcast", "rainy"]

    def test_include_selects_columns(self):
        relation = loads_arff(DENSE_DOC)
        frame = arff_to_frame(relation, include=["play"])
        assert list(frame) == ["play"]

    def test_exclude_drops_columns(self):
        relation = loads_arff(DENSE_DOC)
        frame = arff_to_frame(relation, exclude=["temperature"])
        assert "temperature" not in frame

    def test_include_and_exclude_conflict(self):
        relation = loads_arff(DENSE_DOC)
        with pytest.raises(ValueError, match="not both"):
            arff_to_frame(relation, include=["play"], exclude=["windy"])

    def test_include_unknown_attribute(self):
        relation = loads_arff(DENSE_DOC)
        with pytest.raises(KeyError, match="unknown attributes"):
            arff_to_frame(relation, include=["nope"])

    def test_missing_categorical_becomes_question_mark(self):
        doc = "@relation r\n@attribute a {x, y}\n@data\n?\nx\n"
        frame = arff_to_frame(loads_arff(doc))
        assert frame["a"] == ["?", "x"]


class TestTwoViewPipeline:
    def test_natural_split(self):
        relation = loads_arff(DENSE_DOC)
        dataset = arff_to_two_view(
            relation,
            left_attributes=["temperature", "outlook"],
            right_attributes=["windy", "play"],
        )
        assert isinstance(dataset, TwoViewDataset)
        assert dataset.n_transactions == 3
        # Right view: windy (1 Boolean item) + play (2 one-hot items).
        assert dataset.n_right == 3

    def test_automatic_split_covers_all_items(self):
        relation = loads_arff(DENSE_DOC)
        dataset = arff_to_two_view(relation)
        one_hot_width = dataset.n_left + dataset.n_right
        assert one_hot_width >= 4
        assert dataset.n_left >= 1 and dataset.n_right >= 1

    def test_overlapping_views_rejected(self):
        relation = loads_arff(DENSE_DOC)
        with pytest.raises(ValueError, match="both views"):
            arff_to_two_view(
                relation,
                left_attributes=["windy"],
                right_attributes=["windy", "play"],
            )

    def test_one_sided_split_rejected(self):
        relation = loads_arff(DENSE_DOC)
        with pytest.raises(ValueError, match="or neither"):
            arff_to_two_view(relation, left_attributes=["windy"], right_attributes=None)

    def test_two_view_to_arff_round_trip(self, toy_dataset):
        relation = two_view_to_arff(toy_dataset)
        assert relation.n_rows == toy_dataset.n_transactions
        rebuilt = arff_to_two_view(
            relation,
            left_attributes=[f"L:{name}" for name in toy_dataset.left_names],
            right_attributes=[f"R:{name}" for name in toy_dataset.right_names],
        )
        # One-hot of a {0,1} binary Boolean column keeps the occurrence item
        # only, so the reconstructed matrices must match the original.
        assert rebuilt.n_transactions == toy_dataset.n_transactions
        assert np.array_equal(rebuilt.left, toy_dataset.left)
        assert np.array_equal(rebuilt.right, toy_dataset.right)

    def test_arff_round_trip_through_disk(self, tmp_path, toy_dataset):
        relation = two_view_to_arff(toy_dataset)
        path = tmp_path / "toy.arff"
        save_arff(relation, path)
        reread = load_arff(path)
        assert reread.n_rows == toy_dataset.n_transactions
        assert [a.name for a in reread.attributes] == [a.name for a in relation.attributes]
