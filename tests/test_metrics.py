"""Unit tests for the evaluation metrics."""

from __future__ import annotations

import pytest

from repro.data.dataset import Side
from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorSelect
from repro.eval.metrics import (
    confidence,
    evaluate_table,
    max_confidence,
    rule_set_summary,
)


class TestConfidence:
    def test_forward_confidence_by_hand(self, toy_dataset):
        a = toy_dataset.item_index(Side.LEFT, "a")
        u = toy_dataset.item_index(Side.RIGHT, "u")
        # a occurs in 3 transactions, a&u in 3.
        assert confidence(toy_dataset, (a,), (u,), forward=True) == pytest.approx(1.0)

    def test_backward_confidence_by_hand(self, toy_dataset):
        a = toy_dataset.item_index(Side.LEFT, "a")
        q = toy_dataset.item_index(Side.RIGHT, "q")
        # q occurs in transactions 2 and 4; a occurs in 4 only -> 1/2.
        assert confidence(toy_dataset, (a,), (q,), forward=False) == pytest.approx(0.5)

    def test_zero_support_antecedent(self, toy_dataset):
        a = toy_dataset.item_index(Side.LEFT, "a")
        c = toy_dataset.item_index(Side.LEFT, "c")
        assert confidence(toy_dataset, (a, c), (0,), forward=True) == 0.0

    def test_max_confidence(self, toy_dataset):
        a = toy_dataset.item_index(Side.LEFT, "a")
        q = toy_dataset.item_index(Side.RIGHT, "q")
        rule = TranslationRule((a,), (q,), Direction.BOTH)
        forward = confidence(toy_dataset, (a,), (q,), forward=True)
        backward = confidence(toy_dataset, (a,), (q,), forward=False)
        assert max_confidence(toy_dataset, rule) == pytest.approx(
            max(forward, backward)
        )


class TestEvaluateTable:
    def test_empty_table_baseline(self, toy_dataset):
        state = evaluate_table(toy_dataset, TranslationTable())
        assert state.compression_ratio() == pytest.approx(1.0)

    def test_matches_translator_state(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        state = evaluate_table(planted_dataset, result.table)
        assert state.compression_ratio() == pytest.approx(result.compression_ratio)
        assert state.correction_fraction() == pytest.approx(result.correction_fraction)

    def test_bad_table_inflates(self, planted_dataset, rng):
        # Many random rules: corrections grow, table costs bits -> L% > 1.
        rules = []
        while len(rules) < 30:
            lhs = (int(rng.integers(planted_dataset.n_left)),)
            rhs = (int(rng.integers(planted_dataset.n_right)),)
            rule = TranslationRule(lhs, rhs, Direction.BOTH)
            if rule not in rules:
                rules.append(rule)
        state = evaluate_table(planted_dataset, rules)
        assert state.compression_ratio() > 1.0


class TestRuleSetSummary:
    def test_summary_fields(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        summary = rule_set_summary(planted_dataset, result.table, method="select")
        assert summary["method"] == "select"
        assert summary["n_rules"] == result.n_rules
        assert 0 < summary["average_max_confidence"] <= 1.0
        assert summary["average_rule_length"] > 0

    def test_empty_rule_set(self, toy_dataset):
        summary = rule_set_summary(toy_dataset, [], method="none")
        assert summary["n_rules"] == 0
        assert summary["average_rule_length"] == 0.0
        assert summary["average_max_confidence"] == 0.0
        assert summary["compression_ratio"] == pytest.approx(1.0)
