"""Tests for compression-based clustering (repro.core.clustering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clustering import ClusteringResult, cluster_two_view, transaction_bits
from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorGreedy, TranslatorSelect
from repro.data.dataset import TwoViewDataset


def _conflict_component(
    consequent_columns: list[int], seed: int, n: int = 120
) -> tuple[np.ndarray, np.ndarray]:
    """One component: antecedent {0, 1} maps to ``consequent_columns``."""
    rng = np.random.default_rng(seed)
    left = rng.random((n, 10)) < 0.05
    right = rng.random((n, 10)) < 0.05
    fire = rng.random(n) < 0.9
    left[fire, 0] = True
    left[fire, 1] = True
    for column in consequent_columns:
        right[fire, column] = True
    return left, right


def two_component_dataset() -> tuple[TwoViewDataset, np.ndarray]:
    """A dataset whose two components carry *conflicting* structure.

    Both components fire the same left antecedent {0, 1}, but it implies
    right items {0, 1} in the first component and {4, 5} in the second.
    A single union table must pay error corrections on every firing row,
    which is exactly the regime where the generating partition is
    MDL-identifiable (see the module docstring of
    ``repro.core.clustering``).
    """
    left_a, right_a = _conflict_component([0, 1], seed=1)
    left_b, right_b = _conflict_component([4, 5], seed=2)
    merged = TwoViewDataset(
        np.concatenate([left_a, left_b]),
        np.concatenate([right_a, right_b]),
        name="two-components",
    )
    truth = np.concatenate(
        [np.zeros(len(left_a), dtype=int), np.ones(len(left_b), dtype=int)]
    )
    return merged, truth


def pair_agreement(labels: np.ndarray, truth: np.ndarray) -> float:
    """Rand-index style pairwise agreement between two labelings."""
    n = len(labels)
    same_pred = labels[:, None] == labels[None, :]
    same_true = truth[:, None] == truth[None, :]
    mask = ~np.eye(n, dtype=bool)
    return float((same_pred == same_true)[mask].mean())


class TestSelectK:
    def test_noise_selects_one_component(self):
        rng = np.random.default_rng(8)
        noise = TwoViewDataset(
            rng.random((150, 8)) < 0.15,
            rng.random((150, 8)) < 0.15,
            name="noise",
        )
        from repro.core.clustering import select_k

        best = select_k(
            noise, translator_factory=lambda: TranslatorSelect(k=1), max_k=3, rng=0
        )
        assert best.k == 1

    def test_conflicting_data_selects_two(self):
        from repro.core.clustering import select_k

        dataset, __ = two_component_dataset()
        best = select_k(
            dataset,
            translator_factory=lambda: TranslatorSelect(k=1),
            max_k=3,
            n_restarts=2,
            rng=0,
        )
        assert best.k >= 2

    def test_invalid_max_k(self, toy_dataset):
        from repro.core.clustering import select_k

        with pytest.raises(ValueError, match="max_k"):
            select_k(toy_dataset, translator_factory=lambda: TranslatorSelect(k=1), max_k=0)

    def test_max_k_capped_by_transactions(self, toy_dataset):
        from repro.core.clustering import select_k

        best = select_k(
            toy_dataset,
            translator_factory=lambda: TranslatorSelect(k=1, minsup=1),
            max_k=50,
            rng=0,
        )
        assert 1 <= best.k <= toy_dataset.n_transactions


class TestTransactionBits:
    def test_empty_table_prices_all_ones(self, toy_dataset):
        lengths_left = np.ones(toy_dataset.n_left)
        lengths_right = np.ones(toy_dataset.n_right)
        bits = transaction_bits(
            toy_dataset, TranslationTable(), lengths_left, lengths_right
        )
        expected = toy_dataset.left.sum(axis=1) + toy_dataset.right.sum(axis=1)
        assert np.allclose(bits, expected)

    def test_perfect_rule_removes_cost(self):
        left = np.array([[True], [True], [False]])
        right = np.array([[True], [True], [False]])
        dataset = TwoViewDataset(left, right)
        table = TranslationTable()
        table.add(TranslationRule((0,), (0,), Direction.BOTH))
        bits = transaction_bits(dataset, table, np.ones(1), np.ones(1))
        assert np.allclose(bits, 0.0)

    def test_wrong_rule_adds_error_cost(self):
        left = np.array([[True]])
        right = np.array([[False]])
        dataset = TwoViewDataset(left, right)
        table = TranslationTable()
        table.add(TranslationRule((0,), (0,), Direction.FORWARD))
        bits = transaction_bits(dataset, table, np.full(1, 2.0), np.full(1, 3.0))
        # Left item uncovered (2.0) + right error introduced (3.0).
        assert bits[0] == pytest.approx(5.0)


class TestClusterTwoView:
    def test_result_shape(self):
        dataset, __ = two_component_dataset()
        result = cluster_two_view(
            dataset, k=2, translator_factory=lambda: TranslatorSelect(k=1), rng=0
        )
        assert isinstance(result, ClusteringResult)
        assert result.k == 2
        assert len(result.labels) == dataset.n_transactions
        assert set(result.labels) <= {0, 1}
        assert len(result.component_bits) == 2
        assert sum(result.sizes()) == dataset.n_transactions

    def test_recovers_planted_components(self):
        dataset, truth = two_component_dataset()
        result = cluster_two_view(
            dataset,
            k=2,
            translator_factory=lambda: TranslatorSelect(k=1),
            n_restarts=2,
            rng=0,
        )
        assert pair_agreement(result.labels, truth) >= 0.8

    def test_homogeneous_noise_prefers_one_component(self):
        """On i.i.d. noise, the parameter cost makes splitting a net loss."""
        rng = np.random.default_rng(4)
        noise = TwoViewDataset(
            rng.random((200, 10)) < 0.15,
            rng.random((200, 10)) < 0.15,
            name="noise",
        )
        factory = lambda: TranslatorSelect(k=1)  # noqa: E731
        single = cluster_two_view(noise, k=1, translator_factory=factory, rng=0)
        double = cluster_two_view(noise, k=2, translator_factory=factory, rng=0)
        assert single.total_bits <= double.total_bits

    def test_parameter_cost_charged_per_nonempty_component(self):
        dataset, __ = two_component_dataset()
        factory = lambda: TranslatorSelect(k=1)  # noqa: E731
        result = cluster_two_view(dataset, k=2, translator_factory=factory, rng=0)
        from repro.core.clustering import _parameter_bits

        for component in range(result.k):
            size = int((result.labels == component).sum())
            if size:
                assert result.component_bits[component] >= _parameter_bits(
                    size, dataset.n_items
                )

    def test_restarts_never_hurt(self):
        dataset, __ = two_component_dataset()
        factory = lambda: TranslatorGreedy(minsup=2)  # noqa: E731
        one = cluster_two_view(dataset, k=2, translator_factory=factory, rng=9)
        many = cluster_two_view(
            dataset, k=2, translator_factory=factory, n_restarts=3, rng=9
        )
        assert many.total_bits <= one.total_bits + 1e-9

    def test_invalid_restarts(self, toy_dataset):
        with pytest.raises(ValueError, match="n_restarts"):
            cluster_two_view(
                toy_dataset,
                k=1,
                translator_factory=lambda: TranslatorSelect(k=1),
                n_restarts=0,
            )

    def test_two_components_beat_one(self):
        dataset, __ = two_component_dataset()
        single = cluster_two_view(
            dataset, k=1, translator_factory=lambda: TranslatorSelect(k=1), rng=0
        )
        double = cluster_two_view(
            dataset, k=2, translator_factory=lambda: TranslatorSelect(k=1), rng=0
        )
        assert double.total_bits < single.total_bits

    def test_k1_is_plain_fit(self, planted_dataset):
        result = cluster_two_view(
            planted_dataset, k=1, translator_factory=lambda: TranslatorSelect(k=1), rng=0
        )
        assert result.k == 1
        assert result.converged
        assert (result.labels == 0).all()

    def test_reproducible_with_seed(self):
        dataset, __ = two_component_dataset()
        first = cluster_two_view(
            dataset, k=2, translator_factory=lambda: TranslatorGreedy(minsup=2), rng=5
        )
        second = cluster_two_view(
            dataset, k=2, translator_factory=lambda: TranslatorGreedy(minsup=2), rng=5
        )
        assert np.array_equal(first.labels, second.labels)
        assert first.total_bits == pytest.approx(second.total_bits)

    def test_members_partition(self):
        dataset, __ = two_component_dataset()
        result = cluster_two_view(
            dataset, k=3, translator_factory=lambda: TranslatorGreedy(minsup=2), rng=1
        )
        all_members = np.concatenate([result.members(c) for c in range(result.k)])
        assert sorted(all_members.tolist()) == list(range(dataset.n_transactions))

    def test_invalid_parameters(self, toy_dataset):
        factory = lambda: TranslatorSelect(k=1)  # noqa: E731
        with pytest.raises(ValueError, match="k must be positive"):
            cluster_two_view(toy_dataset, k=0, translator_factory=factory)
        with pytest.raises(ValueError, match="max_rounds"):
            cluster_two_view(toy_dataset, k=1, translator_factory=factory, max_rounds=0)
        with pytest.raises(ValueError, match="more components"):
            cluster_two_view(toy_dataset, k=99, translator_factory=factory)

    def test_empty_dataset_rejected(self):
        empty = TwoViewDataset(
            np.zeros((0, 2), dtype=bool), np.zeros((0, 2), dtype=bool)
        )
        with pytest.raises(ValueError, match="empty dataset"):
            cluster_two_view(empty, k=1, translator_factory=lambda: TranslatorSelect(k=1))

    def test_total_bits_is_components_plus_labels(self):
        dataset, __ = two_component_dataset()
        result = cluster_two_view(
            dataset, k=2, translator_factory=lambda: TranslatorGreedy(minsup=2), rng=2
        )
        assert result.total_bits == pytest.approx(
            sum(result.component_bits) + result.label_bits
        )
        assert result.label_bits > 0

    def test_single_component_pays_no_label_bits(self, planted_dataset):
        result = cluster_two_view(
            planted_dataset, k=1, translator_factory=lambda: TranslatorSelect(k=1), rng=0
        )
        assert result.label_bits == 0.0
