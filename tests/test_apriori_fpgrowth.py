"""Unit tests for the Apriori and FP-Growth mining backends.

Both must agree exactly with ECLAT (and hence with brute force, which
``test_eclat`` establishes) on every input.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mining.apriori import apriori
from repro.mining.eclat import eclat
from repro.mining.fpgrowth import fpgrowth

MINERS = {"apriori": apriori, "fpgrowth": fpgrowth}

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def as_dict(mined):
    return dict(mined)


class TestAgainstEclat:
    @pytest.mark.parametrize("miner_name", sorted(MINERS))
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_eclat(self, miner_name, minsup, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.random((35, 8)) < 0.4
        assert as_dict(MINERS[miner_name](matrix, minsup)) == as_dict(
            eclat(matrix, minsup)
        )

    @pytest.mark.parametrize("miner_name", sorted(MINERS))
    def test_max_size(self, miner_name):
        rng = np.random.default_rng(3)
        matrix = rng.random((30, 7)) < 0.5
        assert as_dict(MINERS[miner_name](matrix, 2, max_size=2)) == as_dict(
            eclat(matrix, 2, max_size=2)
        )

    @pytest.mark.parametrize("miner_name", sorted(MINERS))
    def test_restricted_universe(self, miner_name):
        rng = np.random.default_rng(4)
        matrix = rng.random((30, 6)) < 0.5
        assert as_dict(MINERS[miner_name](matrix, 1, items=[0, 2, 4])) == as_dict(
            eclat(matrix, 1, items=[0, 2, 4])
        )

    @pytest.mark.parametrize("miner_name", sorted(MINERS))
    def test_dense_data(self, miner_name):
        rng = np.random.default_rng(5)
        matrix = rng.random((20, 6)) < 0.8
        assert as_dict(MINERS[miner_name](matrix, 3)) == as_dict(eclat(matrix, 3))

    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        minsup=st.integers(min_value=1, max_value=6),
        density=st.floats(min_value=0.1, max_value=0.7),
    )
    def test_property_all_three_agree(self, seed, minsup, density):
        rng = np.random.default_rng(seed)
        matrix = rng.random((25, 6)) < density
        reference = as_dict(eclat(matrix, minsup))
        assert as_dict(apriori(matrix, minsup)) == reference
        assert as_dict(fpgrowth(matrix, minsup)) == reference


class TestEdgeCases:
    @pytest.mark.parametrize("miner_name", sorted(MINERS))
    def test_empty_matrix(self, miner_name):
        assert MINERS[miner_name](np.zeros((5, 3), dtype=bool), 1) == []

    @pytest.mark.parametrize("miner_name", sorted(MINERS))
    def test_no_transactions(self, miner_name):
        assert MINERS[miner_name](np.zeros((0, 3), dtype=bool), 1) == []

    @pytest.mark.parametrize("miner_name", sorted(MINERS))
    def test_minsup_validation(self, miner_name):
        with pytest.raises(ValueError, match="minsup"):
            MINERS[miner_name](np.ones((2, 2), dtype=bool), 0)

    @pytest.mark.parametrize("miner_name", sorted(MINERS))
    def test_budget_guard(self, miner_name):
        matrix = np.ones((5, 10), dtype=bool)
        with pytest.raises(RuntimeError, match="max_itemsets"):
            MINERS[miner_name](matrix, 1, max_itemsets=10)

    @pytest.mark.parametrize("miner_name", sorted(MINERS))
    def test_single_column(self, miner_name):
        matrix = np.array([[1], [1], [0]], dtype=bool)
        assert MINERS[miner_name](matrix, 2) == [((0,), 2)]

    @pytest.mark.parametrize("miner_name", sorted(MINERS))
    def test_1d_rejected(self, miner_name):
        with pytest.raises(ValueError, match="2-dimensional"):
            MINERS[miner_name](np.ones(3, dtype=bool), 1)
