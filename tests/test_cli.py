"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.data.io import save_dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.datasets == []

    def test_fit_options(self):
        args = build_parser().parse_args(
            ["fit", "house", "--method", "greedy", "--minsup", "5", "--scale", "0.1"]
        )
        assert args.method == "greedy"
        assert args.minsup == 5
        assert args.scale == 0.1


class TestCommands:
    def test_stats_on_registry(self, capsys):
        assert main(["stats", "wine", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "wine" in out
        assert "paper_n" in out

    def test_stats_on_file(self, toy_dataset, tmp_path, capsys):
        path = tmp_path / "toy.2v"
        save_dataset(toy_dataset, path)
        assert main(["stats", str(path)]) == 0
        assert "toy" in capsys.readouterr().out

    def test_fit_select(self, toy_dataset, tmp_path, capsys):
        path = tmp_path / "toy.2v"
        save_dataset(toy_dataset, path)
        out_path = tmp_path / "table.json"
        assert main(["fit", str(path), "--minsup", "1", "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "translator-select" in out
        assert out_path.exists()

    def test_fit_exact(self, toy_dataset, tmp_path, capsys):
        path = tmp_path / "toy.2v"
        save_dataset(toy_dataset, path)
        assert main(["fit", str(path), "--method", "exact"]) == 0
        assert "translator-exact" in capsys.readouterr().out

    def test_fit_greedy(self, toy_dataset, tmp_path, capsys):
        path = tmp_path / "toy.2v"
        save_dataset(toy_dataset, path)
        assert main(["fit", str(path), "--method", "greedy", "--minsup", "1"]) == 0
        assert "greedy" in capsys.readouterr().out

    def test_compare(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert main(["compare", str(path), "--minsup", "5"]) == 0
        out = capsys.readouterr().out
        assert "krimp" in out
        assert "redescription" in out

    def test_trace(self, toy_dataset, tmp_path, capsys):
        path = tmp_path / "toy.2v"
        save_dataset(toy_dataset, path)
        assert main(["trace", str(path), "--minsup", "1"]) == 0
        assert "iter" in capsys.readouterr().out


class TestExtensionCommands:
    def test_fit_with_prune(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert main(["fit", str(path), "--minsup", "2", "--prune"]) == 0
        assert "pruned" in capsys.readouterr().out

    def test_predict(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert main(["predict", str(path), "--minsup", "3"]) == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "left_to_right" in out

    def test_randomize(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert main([
            "randomize", str(path), "--method", "greedy",
            "--minsup", "5", "--permutations", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "p-value" in out


    def test_describe(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert main(["describe", str(path), "--minsup", "3"]) == 0
        out = capsys.readouterr().out
        assert "model report" in out
        assert "encoded lengths" in out
        assert "redundancy" in out

    def test_stability(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert main([
            "stability", str(path), "--minsup", "3", "--resamples", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "bootstrap stability" in out
        assert "mean exact rule-set Jaccard" in out

    def test_stability_subsampling(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert main([
            "stability", str(path), "--minsup", "3", "--resamples", "2",
            "--sample-fraction", "0.7", "--no-replacement",
        ]) == 0
        assert "resamples: 2" in capsys.readouterr().out

    def test_encoding(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert main(["encoding", str(path), "--minsup", "3"]) == 0
        out = capsys.readouterr().out
        assert "L% paper" in out
        assert "L% refined" in out

    def test_cluster(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert main([
            "cluster", str(path), "--minsup", "3", "--k-components", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "compression-based clustering" in out
        assert "component 0" in out and "component 1" in out


class TestConvertCommand:
    def test_round_trip_via_arff(self, toy_dataset, tmp_path, capsys):
        from repro.data.io import load_dataset

        native = tmp_path / "toy.2v"
        save_dataset(toy_dataset, native)
        arff = tmp_path / "toy.arff"
        assert main(["convert", str(native), str(arff)]) == 0
        assert arff.exists()
        back = tmp_path / "back.2v"
        assert main(["convert", str(arff), str(back)]) == 0
        rebuilt = load_dataset(back)
        assert rebuilt.n_transactions == toy_dataset.n_transactions
        assert rebuilt.n_left == toy_dataset.n_left
        assert rebuilt.n_right == toy_dataset.n_right

    def test_unsupported_pair_fails(self, tmp_path, capsys):
        src = tmp_path / "a.txt"
        src.write_text("x")
        assert main(["convert", str(src), str(tmp_path / "b.txt")]) == 2
        assert "requires" in capsys.readouterr().err


@pytest.mark.multiview_smoke
class TestMultiviewCommand:
    def test_fit_multiview_two_views(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert main(["fit-multiview", str(path), "--minsup", "2"]) == 0
        out = capsys.readouterr().out
        assert "multiview select" in out
        assert "pair left~right" in out

    def test_fit_multiview_resplit_with_output(
        self, planted_dataset, tmp_path, capsys
    ):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        summary_path = tmp_path / "summary.json"
        assert (
            main(
                [
                    "fit-multiview",
                    str(path),
                    "--views",
                    "3",
                    "--minsup",
                    "2",
                    "--output",
                    str(summary_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "3 views, 3 pair(s)" in out
        summary = json.loads(summary_path.read_text(encoding="utf-8"))
        assert summary["n_pairs"] == 3
        assert set(summary["per_pair"]) == {"0~1", "0~2", "1~2"}

    def test_fit_multiview_conditional(self, planted_dataset, tmp_path, capsys):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        assert (
            main(["fit-multiview", str(path), "--minsup", "2", "--conditional"]) == 0
        )
        assert "conditional" in capsys.readouterr().out

    def test_fit_multiview_rejects_greedy(self, planted_dataset, tmp_path):
        path = tmp_path / "planted.2v"
        save_dataset(planted_dataset, path)
        with pytest.raises(SystemExit, match="select or exact"):
            main(["fit-multiview", str(path), "--method", "greedy"])

    def test_mixed_dataset_renders_units(self, capsys):
        assert (
            main(
                [
                    "fit",
                    "winequality-mixed",
                    "--scale",
                    "0.1",
                    "--minsup",
                    "20",
                    "--limit",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "∈ [" in out

    def test_discretize_flag_parses(self):
        args = build_parser().parse_args(
            ["fit", "abalone-mixed", "--discretize", "equal-height", "--n-bins", "4"]
        )
        assert args.discretize == "equal-height"
        assert args.n_bins == 4
