"""Unit tests for the redescription miner (REREMI stand-in)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Side, TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted, random_dataset
from repro.core.rules import Direction
from repro.baselines.redescription import (
    Redescription,
    ReremiMiner,
    redescription_p_value,
)


class TestPValue:
    def test_perfect_overlap_significant(self):
        assert redescription_p_value(100, 20, 20, 20) < 1e-6

    def test_expected_overlap_not_significant(self):
        # 50% x 50% marginals -> expected intersection 25 of 100.
        assert redescription_p_value(100, 50, 50, 25) > 0.3

    def test_zero_intersection(self):
        assert redescription_p_value(100, 10, 10, 0) == 1.0

    def test_empty_data(self):
        assert redescription_p_value(0, 0, 0, 0) == 1.0

    def test_monotone_in_intersection(self):
        values = [redescription_p_value(100, 30, 30, k) for k in (5, 10, 20, 30)]
        assert values == sorted(values, reverse=True)


class TestMiner:
    def test_finds_planted_bidirectional_structure(self):
        dataset, truth = generate_planted(
            SyntheticSpec(
                n_transactions=400, n_left=10, n_right=10,
                density_left=0.08, density_right=0.08,
                n_rules=2, confidence=(0.98, 1.0), activation=(0.25, 0.35),
                bidirectional_fraction=1.0, seed=1,
            )
        )
        redescriptions = ReremiMiner(min_support=5).mine(dataset)
        assert redescriptions
        assert redescriptions[0].jaccard > 0.5

    def test_jaccard_values_correct(self, planted_dataset):
        for redescription in ReremiMiner(min_support=3).mine(planted_dataset):
            left_mask = planted_dataset.support_mask(Side.LEFT, redescription.lhs)
            right_mask = planted_dataset.support_mask(Side.RIGHT, redescription.rhs)
            intersection = int((left_mask & right_mask).sum())
            union = int((left_mask | right_mask).sum())
            assert redescription.jaccard == pytest.approx(intersection / union)
            assert redescription.support == intersection

    def test_respects_max_side_size(self, planted_dataset):
        miner = ReremiMiner(min_support=3, max_side_size=2)
        for redescription in miner.mine(planted_dataset):
            assert len(redescription.lhs) <= 2
            assert len(redescription.rhs) <= 2

    def test_respects_p_value_threshold(self, planted_dataset):
        for redescription in ReremiMiner(min_support=3, max_p_value=0.001).mine(
            planted_dataset
        ):
            assert redescription.p_value <= 0.001

    def test_max_results(self, planted_dataset):
        results = ReremiMiner(min_support=2, max_results=3).mine(planted_dataset)
        assert len(results) <= 3

    def test_sorted_by_jaccard(self, planted_dataset):
        results = ReremiMiner(min_support=3).mine(planted_dataset)
        jaccards = [redescription.jaccard for redescription in results]
        assert jaccards == sorted(jaccards, reverse=True)

    def test_noise_yields_nothing_strong(self):
        noise = random_dataset(300, 8, 8, 0.15, 0.15, seed=9)
        results = ReremiMiner(min_support=5, max_p_value=0.001).mine(noise)
        assert all(redescription.jaccard < 0.5 for redescription in results)

    def test_to_rules_bidirectional_and_unique(self, planted_dataset):
        miner = ReremiMiner(min_support=3)
        redescriptions = miner.mine(planted_dataset)
        rules = miner.to_rules(redescriptions)
        assert all(rule.direction is Direction.BOTH for rule in rules)
        assert len(rules) == len(set(rules))

    def test_extension_improves_jaccard(self):
        # Construct data where {l0, l1} <-> {r0} is strictly better than
        # {l0} <-> {r0}: r0 occurs exactly where both l0 and l1 occur.
        rng = np.random.default_rng(3)
        left = rng.random((300, 3)) < 0.5
        right = np.zeros((300, 2), dtype=bool)
        right[:, 0] = left[:, 0] & left[:, 1]
        right[:, 1] = rng.random(300) < 0.2
        dataset = TwoViewDataset(left, right)
        results = ReremiMiner(min_support=5).mine(dataset)
        best = results[0]
        assert best.jaccard == pytest.approx(1.0)
        assert set(best.lhs) == {0, 1}
        assert best.rhs == (0,)
