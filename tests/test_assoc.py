"""Unit tests for cross-view association rule mining."""

from __future__ import annotations

import pytest

from repro.data.dataset import Side
from repro.core.rules import Direction
from repro.baselines.assoc import (
    AssociationRule,
    merge_bidirectional,
    mine_crossview_rules,
)
from repro.eval.metrics import confidence


class TestMining:
    def test_confidences_correct(self, planted_dataset):
        rules = mine_crossview_rules(planted_dataset, minsup=5, minconf=0.5)
        assert rules
        for rule in rules[:30]:
            forward = rule.direction is Direction.FORWARD
            expected = confidence(
                planted_dataset, rule.lhs, rule.rhs, forward=forward
            )
            assert rule.confidence == pytest.approx(expected)

    def test_minconf_respected(self, planted_dataset):
        rules = mine_crossview_rules(planted_dataset, minsup=5, minconf=0.8)
        assert all(rule.confidence >= 0.8 for rule in rules)

    def test_minsup_respected(self, planted_dataset):
        rules = mine_crossview_rules(planted_dataset, minsup=10, minconf=0.1)
        assert all(rule.support >= 10 for rule in rules)

    def test_lower_thresholds_give_more_rules(self, planted_dataset):
        strict = mine_crossview_rules(planted_dataset, minsup=10, minconf=0.9)
        loose = mine_crossview_rules(planted_dataset, minsup=3, minconf=0.3)
        assert len(loose) >= len(strict)

    def test_pattern_explosion_demonstrated(self, planted_dataset):
        # The explosion the paper complains about: loose thresholds yield
        # far more rules than a translation table would contain.
        rules = mine_crossview_rules(planted_dataset, minsup=2, minconf=0.2)
        assert len(rules) > 100

    def test_max_rules_guard(self, planted_dataset):
        # Either the rule cap or the upstream mining cap may fire first;
        # both abort the explosion.
        with pytest.raises(RuntimeError, match="explosion|max_itemsets"):
            mine_crossview_rules(planted_dataset, minsup=2, minconf=0.1, max_rules=10)

    def test_minconf_validation(self, planted_dataset):
        with pytest.raises(ValueError, match="minconf"):
            mine_crossview_rules(planted_dataset, minsup=2, minconf=1.5)

    def test_to_translation_rule(self):
        rule = AssociationRule((0,), (1,), Direction.FORWARD, 5, 0.9)
        translation = rule.to_translation_rule()
        assert translation.lhs == (0,)
        assert translation.direction is Direction.FORWARD


class TestMerge:
    def test_merges_both_directions(self):
        rules = [
            AssociationRule((0,), (1,), Direction.FORWARD, 5, 0.8),
            AssociationRule((0,), (1,), Direction.BACKWARD, 5, 0.9),
        ]
        merged = merge_bidirectional(rules)
        assert len(merged) == 1
        assert merged[0].direction is Direction.BOTH
        assert merged[0].confidence == pytest.approx(0.9)

    def test_keeps_single_direction(self):
        rules = [AssociationRule((0,), (1,), Direction.FORWARD, 5, 0.8)]
        merged = merge_bidirectional(rules)
        assert merged == rules

    def test_different_itemsets_not_merged(self):
        rules = [
            AssociationRule((0,), (1,), Direction.FORWARD, 5, 0.8),
            AssociationRule((0,), (2,), Direction.BACKWARD, 5, 0.9),
        ]
        assert len(merge_bidirectional(rules)) == 2

    def test_sorted_by_confidence(self, planted_dataset):
        rules = mine_crossview_rules(planted_dataset, minsup=4, minconf=0.4)
        merged = merge_bidirectional(rules)
        confidences = [rule.confidence for rule in merged]
        assert confidences == sorted(confidences, reverse=True)
