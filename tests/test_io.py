"""Unit tests for dataset I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import TwoViewDataset
from repro.data.io import load_csv, load_dataset, save_csv, save_dataset


class TestNativeFormat:
    def test_roundtrip(self, toy_dataset, tmp_path):
        path = tmp_path / "toy.2v"
        save_dataset(toy_dataset, path)
        loaded = load_dataset(path)
        assert loaded == toy_dataset
        assert loaded.name == "toy"

    def test_roundtrip_empty_sides(self, tmp_path):
        data = TwoViewDataset.from_transactions(
            [({"a"}, set()), (set(), {"x"})],
            left_names=["a"],
            right_names=["x"],
            name="sparse",
        )
        path = tmp_path / "sparse.2v"
        save_dataset(data, path)
        assert load_dataset(path) == data

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.2v"
        path.write_text("not a 2v file\n")
        with pytest.raises(ValueError, match="missing"):
            load_dataset(path)

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.2v"
        path.write_text("#2v x\nno left header\nno right header\n")
        with pytest.raises(ValueError, match="vocabulary"):
            load_dataset(path)

    def test_rejects_missing_separator(self, tmp_path):
        path = tmp_path / "bad.2v"
        path.write_text("#2v x\n#left a\n#right b\n0 0\n")
        with pytest.raises(ValueError, match="separator"):
            load_dataset(path)

    def test_skips_comments_and_blank_lines(self, toy_dataset, tmp_path):
        path = tmp_path / "toy.2v"
        save_dataset(toy_dataset, path)
        text = path.read_text()
        lines = text.splitlines()
        lines.insert(4, "# a comment")
        lines.insert(5, "")
        path.write_text("\n".join(lines) + "\n")
        assert load_dataset(path) == toy_dataset


class TestCsv:
    def test_roundtrip(self, toy_dataset, tmp_path):
        left_path = tmp_path / "left.csv"
        right_path = tmp_path / "right.csv"
        save_csv(toy_dataset, left_path, right_path)
        loaded = load_csv(left_path, right_path, name="toy")
        assert loaded == toy_dataset

    def test_csv_contains_header(self, toy_dataset, tmp_path):
        left_path = tmp_path / "left.csv"
        right_path = tmp_path / "right.csv"
        save_csv(toy_dataset, left_path, right_path)
        header = left_path.read_text().splitlines()[0]
        assert header == "a,b,c,d"

    def test_csv_binary_cells(self, toy_dataset, tmp_path):
        left_path = tmp_path / "left.csv"
        right_path = tmp_path / "right.csv"
        save_csv(toy_dataset, left_path, right_path)
        body = left_path.read_text().splitlines()[1:]
        cells = {cell for line in body for cell in line.split(",")}
        assert cells <= {"0", "1"}


class TestLargeRoundtrip:
    def test_random_roundtrip(self, rng, tmp_path):
        left = rng.random((50, 8)) < 0.3
        right = rng.random((50, 5)) < 0.4
        data = TwoViewDataset(left, right, name="rand")
        path = tmp_path / "rand.2v"
        save_dataset(data, path)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.left, data.left)
        np.testing.assert_array_equal(loaded.right, data.right)
