"""Unit and integration tests for the three TRANSLATOR algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Side
from repro.data.synthetic import SyntheticSpec, generate_planted, random_dataset
from repro.core.rules import Direction
from repro.core.translator import (
    TranslatorExact,
    TranslatorGreedy,
    TranslatorSelect,
)
from repro.mining.twoview import two_view_candidates


class TestTranslatorExact:
    def test_compresses_structured_data(self, planted_dataset):
        result = TranslatorExact().fit(planted_dataset)
        assert result.converged
        assert result.n_rules > 0
        assert result.compression_ratio < 1.0

    def test_every_rule_has_positive_gain(self, planted_dataset):
        result = TranslatorExact().fit(planted_dataset)
        for record in result.history:
            assert record.gain > 0

    def test_total_bits_strictly_decrease(self, planted_dataset):
        result = TranslatorExact().fit(planted_dataset)
        totals = [record.total_bits for record in result.history]
        assert all(later < earlier for earlier, later in zip(totals, totals[1:]))

    def test_max_iterations(self, planted_dataset):
        result = TranslatorExact(max_iterations=2).fit(planted_dataset)
        assert result.n_rules <= 2

    def test_converged_flag_with_budget(self, planted_dataset):
        result = TranslatorExact(max_iterations=1, max_nodes_per_search=5).fit(
            planted_dataset
        )
        assert not result.converged

    def test_first_rule_beats_select(self, planted_dataset):
        # The first exact rule must achieve at least the gain of the first
        # SELECT(1) rule (exactness guarantee).
        exact = TranslatorExact(max_iterations=1).fit(planted_dataset)
        select = TranslatorSelect(k=1, minsup=1, max_iterations=1).fit(planted_dataset)
        if select.history:
            assert exact.history[0].gain >= select.history[0].gain - 1e-9


class TestTranslatorSelect:
    def test_compresses_structured_data(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        assert result.n_rules > 0
        assert result.compression_ratio < 1.0

    def test_k25_close_to_k1(self, planted_dataset):
        k1 = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        k25 = TranslatorSelect(k=25, minsup=2).fit(planted_dataset)
        # Paper, Table 2: larger k trades a little compression for speed.
        assert k25.compression_ratio <= k1.compression_ratio * 1.10

    def test_gain_positive_each_addition(self, planted_dataset):
        result = TranslatorSelect(k=5, minsup=2).fit(planted_dataset)
        assert all(record.gain > 0 for record in result.history)

    def test_respects_premined_candidates(self, planted_dataset):
        candidates = two_view_candidates(planted_dataset, minsup=3)
        result = TranslatorSelect(k=1, candidates=candidates).fit(planted_dataset)
        allowed = {(candidate.lhs, candidate.rhs) for candidate in candidates}
        for rule in result.table:
            assert (rule.lhs, rule.rhs) in allowed

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            TranslatorSelect(k=0)

    def test_max_iterations(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2, max_iterations=3).fit(planted_dataset)
        assert result.n_rules <= 3

    def test_cached_gains_are_exact(self, planted_dataset):
        """Each recorded gain must equal the true gain at addition time.

        This validates the dirty-column caching: stale gains would be
        caught by the exactness check against a fresh recomputation in
        test_state (gain == length difference); here we additionally check
        total lengths are consistent with the recorded gains.
        """
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        totals = [record.total_bits for record in result.history]
        gains = [record.gain for record in result.history]
        for index in range(1, len(totals)):
            assert totals[index - 1] - totals[index] == pytest.approx(
                gains[index], abs=1e-6
            )

    def test_select_monotone_compression(self, planted_dataset):
        result = TranslatorSelect(k=25, minsup=2).fit(planted_dataset)
        totals = [record.total_bits for record in result.history]
        assert all(later < earlier for earlier, later in zip(totals, totals[1:]))


class TestTranslatorGreedy:
    def test_runs_and_compresses(self, planted_dataset):
        result = TranslatorGreedy(minsup=2).fit(planted_dataset)
        assert result.compression_ratio <= 1.0

    def test_greedy_not_better_than_select(self, planted_dataset):
        # Paper, Table 2: GREEDY is fastest but compresses no better than
        # SELECT (allow a tiny tolerance for tie-breaking artefacts).
        select = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        greedy = TranslatorGreedy(minsup=2).fit(planted_dataset)
        assert greedy.compression_ratio >= select.compression_ratio - 0.02

    def test_gain_positive_each_addition(self, planted_dataset):
        result = TranslatorGreedy(minsup=2).fit(planted_dataset)
        assert all(record.gain > 0 for record in result.history)


class TestRecovery:
    def test_planted_rules_recovered(self, planted_with_truth):
        """High-confidence planted rules should be found (possibly merged)."""
        dataset, truth = planted_with_truth
        result = TranslatorSelect(k=1, minsup=2).fit(dataset)
        covered_items = set()
        for rule in result.table:
            covered_items.update(("L", item) for item in rule.lhs)
            covered_items.update(("R", item) for item in rule.rhs)
        recovered = 0
        for planted in truth:
            planted_items = {("L", item) for item in planted.lhs} | {
                ("R", item) for item in planted.rhs
            }
            if planted_items <= covered_items:
                recovered += 1
        assert recovered >= len(truth) // 2

    def test_noise_yields_near_baseline(self):
        noise = random_dataset(200, 10, 10, 0.15, 0.15, seed=3)
        result = TranslatorSelect(k=1, minsup=2).fit(noise)
        # Little cross-view structure: compression close to 100%.
        assert result.compression_ratio > 0.9

    def test_all_methods_agree_on_strong_structure(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=150,
                n_left=8,
                n_right=8,
                density_left=0.1,
                density_right=0.1,
                n_rules=2,
                confidence=(1.0, 1.0),
                activation=(0.3, 0.4),
                seed=11,
            )
        )
        exact = TranslatorExact().fit(dataset)
        select = TranslatorSelect(k=1, minsup=1).fit(dataset)
        assert exact.compression_ratio < 0.9
        assert select.compression_ratio < 0.9
        assert abs(exact.compression_ratio - select.compression_ratio) < 0.1


class TestResultObject:
    def test_summary_keys(self, planted_dataset):
        result = TranslatorGreedy(minsup=2).fit(planted_dataset)
        summary = result.summary()
        for key in ("method", "dataset", "n_rules", "compression_ratio"):
            assert key in summary

    def test_history_matches_table(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        assert len(result.history) == result.n_rules
        assert [record.rule for record in result.history] == list(result.table)

    def test_runtime_recorded(self, planted_dataset):
        result = TranslatorGreedy(minsup=2).fit(planted_dataset)
        assert result.runtime_seconds > 0
