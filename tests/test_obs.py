"""Observability tests (``pytest -m obs_smoke``).

Covers the metrics registry (thread-safe scrapes under concurrent
writers, exact histogram bucket boundaries, exposition round-trip),
the tracing primitives (deterministic span records, header
propagation, JSONL rotation), the ``/metrics`` endpoints of the
prediction server and the replica router (validated against the
Prometheus naming lint in ``scripts/check_metrics.py``), the
end-to-end span tree of a traced request through a two-replica pool,
the ``/statz`` non-numeric surfacing fix, and the one-attribute-check
instrument seam.
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.data.dataset import TwoViewDataset
from repro.obs.metrics import LATENCY_BUCKETS, MetricError
from repro.obs.trace import build_span_tree, read_spans, span_files
from repro.serve import (
    ModelArtifact,
    ModelRegistry,
    PredictionServer,
    PredictionService,
    ReplicaRouter,
)
from repro.serve.router import Replica

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_metrics  # noqa: E402

pytestmark = pytest.mark.obs_smoke

N_LEFT, N_RIGHT = 12, 9


@pytest.fixture(autouse=True)
def _reset_instrumentation():
    """Never leak a process-wide instrument bundle between tests."""
    yield
    obs.instrument(enabled=False)


def make_artifact(name: str = "obs-test") -> ModelArtifact:
    rng = np.random.default_rng(11)
    table = TranslationTable(
        [
            TranslationRule((0, 1), (2,), "->"),
            TranslationRule((2, 3), (0, 4), "<->"),
            TranslationRule((5,), (1,), "<-"),
        ]
    )
    dataset = TwoViewDataset(
        rng.random((8, N_LEFT)) < 0.4,
        rng.random((8, N_RIGHT)) < 0.4,
        name=name,
    )

    class _Result:
        def __init__(self):
            self.table = table

        def summary(self):
            return {"n_rules": len(table)}

    return ModelArtifact.from_result(name, dataset, _Result(), {})


@pytest.fixture()
def registry(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(make_artifact())
    return registry


async def http(host, port, method, path, body=b"", headers=()):
    """Raw HTTP round-trip returning ``(status, content_type, payload)``."""
    reader, writer = await asyncio.open_connection(host, port)
    extra = "".join(f"{key}: {value}\r\n" for key, value in headers)
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n{extra}"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode()
        + body
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, sep, payload = raw.partition(b"\r\n\r\n")
    assert sep, f"torn response: {raw!r}"
    status = int(head.split()[1])
    content_type = ""
    for line in head.decode("latin-1").split("\r\n")[1:]:
        key, _, value = line.partition(":")
        if key.strip().lower() == "content-type":
            content_type = value.strip()
    return status, content_type, payload


class TestRegistry:
    def test_counter_gauge_histogram_render_and_parse(self):
        registry = obs.MetricsRegistry()
        hits = registry.counter("t_hits_total", "Hits.", labelnames=("kind",))
        hits.labels(kind="a").inc()
        hits.labels(kind="b").inc(3)
        registry.gauge("t_depth", "Depth.").set(7.5)
        registry.histogram("t_seconds", "Latency.").observe(0.001)
        families, samples = obs.parse_exposition(registry.render())
        assert families["t_hits_total"][0] == "counter"
        assert families["t_depth"][0] == "gauge"
        assert families["t_seconds"][0] == "histogram"
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert ({"kind": "a"}, 1.0) in by_name["t_hits_total"]
        assert ({"kind": "b"}, 3.0) in by_name["t_hits_total"]
        assert by_name["t_depth"] == [({}, 7.5)]
        assert ({}, 1.0) in by_name["t_seconds_count"]

    def test_kind_and_label_mismatch_raise(self):
        registry = obs.MetricsRegistry()
        registry.counter("t_thing_total", "x")
        with pytest.raises(MetricError):
            registry.gauge("t_thing_total", "x")
        with pytest.raises(MetricError):
            registry.counter("t_thing_total", "x", labelnames=("other",))

    def test_exposition_survives_injection_and_merge(self):
        left, right = obs.MetricsRegistry(), obs.MetricsRegistry()
        left.counter("t_reqs_total", "Requests.").inc(2)
        right.counter("t_reqs_total", "Requests.").inc(5)
        merged = obs.merge_expositions(
            [
                obs.inject_label(left.render(), "replica", "w1"),
                obs.inject_label(right.render(), "replica", "w2"),
            ]
        )
        families, samples = obs.parse_exposition(merged)
        assert families["t_reqs_total"][0] == "counter"
        assert sorted(
            (labels["replica"], value)
            for name, labels, value in samples
            if name == "t_reqs_total"
        ) == [("w1", 2.0), ("w2", 5.0)]
        assert check_metrics.validate_exposition(merged) == []

    def test_concurrent_writers_never_corrupt_a_scrape(self):
        """Property: every mid-flight scrape parses and is monotone."""
        registry = obs.MetricsRegistry()
        counter = registry.counter("t_ops_total", "Ops.", labelnames=("worker",))
        histogram = registry.histogram("t_ops_seconds", "Op latency.")
        n_threads, per_thread = 8, 400
        start = threading.Barrier(n_threads + 1)
        rng = random.Random(5)
        values = [rng.random() for _ in range(64)]

        def writer(worker: int) -> None:
            cell = counter.labels(worker=str(worker))
            start.wait()
            for i in range(per_thread):
                cell.inc()
                histogram.observe(values[(worker + i) % len(values)])

        threads = [
            threading.Thread(target=writer, args=(worker,))
            for worker in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        start.wait()
        last_total = 0.0
        while any(thread.is_alive() for thread in threads):
            text = registry.render()
            assert check_metrics.validate_exposition(text) == []
            __, samples = obs.parse_exposition(text)
            total = sum(v for n, __, v in samples if n == "t_ops_total")
            assert total >= last_total  # counters only ever go up
            last_total = total
        for thread in threads:
            thread.join()
        __, samples = obs.parse_exposition(registry.render())
        assert sum(v for n, __, v in samples if n == "t_ops_total") == (
            n_threads * per_thread
        )
        count = [v for n, __, v in samples if n == "t_ops_seconds_count"]
        assert count == [float(n_threads * per_thread)]


def _bucket_counts(text: str, family: str) -> list[float]:
    """Cumulative ``_bucket`` counts of one histogram, ascending in le."""
    __, samples = obs.parse_exposition(text)
    pairs = [
        (
            float("inf") if labels["le"] == "+Inf" else float(labels["le"]),
            value,
        )
        for name, labels, value in samples
        if name == f"{family}_bucket"
    ]
    pairs.sort(key=lambda pair: pair[0])
    return [value for __, value in pairs]


class TestHistogramBuckets:
    def test_boundary_values_land_in_their_own_bucket(self):
        """``le`` is inclusive: a value exactly on a bound counts there."""
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("t_lat_seconds", "x")
        for bound in LATENCY_BUCKETS:
            histogram.observe(bound)
        counts = _bucket_counts(registry.render(), "t_lat_seconds")
        # The k-th bound is the (k+1)-th smallest observed value, so the
        # cumulative count at bound k must be exactly k+1 (le is <=).
        assert counts == [
            float(k + 1) for k in range(len(LATENCY_BUCKETS))
        ] + [float(len(LATENCY_BUCKETS))]

    def test_values_beyond_the_last_bound_only_hit_inf(self):
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("t_lat_seconds", "x")
        histogram.observe(LATENCY_BUCKETS[-1] * 2)
        counts = _bucket_counts(registry.render(), "t_lat_seconds")
        assert counts == [0.0] * len(LATENCY_BUCKETS) + [1.0]

    @given(value=st.floats(min_value=0.0, max_value=60.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_every_value_lands_in_exactly_the_right_bucket(self, value):
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("t_lat_seconds", "x")
        histogram.observe(value)
        counts = _bucket_counts(registry.render(), "t_lat_seconds")
        bounds = list(LATENCY_BUCKETS) + [float("inf")]
        assert counts == [1.0 if value <= bound else 0.0 for bound in bounds]
        __, samples = obs.parse_exposition(registry.render())
        total = [v for n, __l, v in samples if n == "t_lat_seconds_sum"]
        assert total == [value]


class TestTracing:
    def _deterministic_tracer(self, exporter=None):
        clock = iter(float(t) for t in range(100)).__next__
        return obs.Tracer(
            exporter, clock=clock, id_source=random.Random(3).getrandbits
        )

    def test_span_records_are_deterministic_under_injection(self):
        records = []

        class ListExporter:
            def export(self, span):
                records.append(span.as_dict())

        tracer = self._deterministic_tracer(ListExporter())
        with tracer.span("root") as root:
            with tracer.span("child", parent=root, attributes={"rows": 2}):
                pass
        source = random.Random(3).getrandbits
        reference_ids = [f"{source(64):016x}" for _ in range(3)]
        assert records == [
            {
                "name": "child",
                "trace_id": reference_ids[0],
                "span_id": reference_ids[2],
                "parent_id": reference_ids[1],
                "start_time": 1.0,
                "end_time": 2.0,
                "attributes": {"rows": 2},
            },
            {
                "name": "root",
                "trace_id": reference_ids[0],
                "span_id": reference_ids[1],
                "parent_id": None,
                "start_time": 0.0,
                "end_time": 3.0,
            },
        ]

    def test_header_round_trip_and_malformed_rejection(self):
        context = obs.TraceContext("00f067aa0ba902b7", "4bf92f3577b34da6")
        assert obs.parse_trace_header(obs.format_trace_header(context)) == context
        for bad in (None, "", "zz-aa", "deadbeef", "a-b-c", "xyzw" * 8):
            assert obs.parse_trace_header(bad) is None

    def test_jsonl_exporter_rotates_at_the_size_cap(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = obs.JsonlSpanExporter(str(path), max_bytes=2000, backups=2)
        tracer = obs.Tracer(exporter)
        for i in range(200):
            with tracer.span(f"span-{i:03d}"):
                pass
        files = span_files(str(path))
        assert str(path) in files and len(files) == 3  # live + 2 backups
        assert all(Path(f).stat().st_size <= 2000 + 200 for f in files)
        names = [r["name"] for f in files for r in read_spans(f)]
        assert names == sorted(names)  # oldest-first ordering survives
        assert "span-199" in names  # newest span never rotated away


class TestServerMetrics:
    def test_metrics_endpoint_serves_valid_exposition(self, registry):
        async def scenario():
            service = PredictionService(registry, cache_size=4)
            server = PredictionServer(service, port=0)
            await server.start()
            try:
                body = json.dumps(
                    {"model": "obs-test", "target": "R", "rows": [[0, 1]]}
                ).encode()
                status, __, __payload = await http(
                    server.host, server.port, "POST", "/predict", body
                )
                assert status == 200
                status, content_type, payload = await http(
                    server.host, server.port, "GET", "/metrics"
                )
            finally:
                await server.stop()
            assert status == 200
            assert content_type == obs.METRICS_CONTENT_TYPE
            text = payload.decode("utf-8")
            assert check_metrics.validate_exposition(text) == []
            __, samples = obs.parse_exposition(text)
            by_name = {name for name, __, __v in samples}
            assert "repro_serve_uptime_seconds" in by_name
            requests = [
                (labels, value)
                for name, labels, value in samples
                if name == "repro_serve_model_requests_total"
            ]
            assert ({"model": "obs-test"}, 1.0) in requests
            predict_count = [
                value
                for name, labels, value in samples
                if name == "repro_serve_request_seconds_count"
                and labels == {"endpoint": "/predict"}
            ]
            assert predict_count == [1.0]

        asyncio.run(scenario())

    def test_statz_numbers_match_metrics_numbers(self, registry):
        """/statz stays bit-compatible: both views read the same cells."""
        service = PredictionService(registry)
        stats = service._stats_for("obs-test")
        stats.requests += 3
        stats.rows += 7
        assert stats.as_dict()["requests"] == 3
        __, samples = obs.parse_exposition(service.metrics.render())
        values = {
            name: value
            for name, labels, value in samples
            if labels.get("model") == "obs-test"
        }
        assert values["repro_serve_model_requests_total"] == 3.0
        assert values["repro_serve_model_rows_total"] == 7.0


def make_traced_router(registry, exporter, workers=2):
    """A router over in-process replicas, every process sharing one
    deterministic exporter (everything is in-process, so the linked
    span tree lands in a single list)."""
    tracer = obs.Tracer(exporter)

    async def factory(name: str) -> Replica:
        service = PredictionService(registry, tracer=tracer)
        server = PredictionServer(service, host="127.0.0.1", port=0, name=name)
        await server.start()

        async def stop() -> object:
            return await server.stop()

        return Replica(name, "127.0.0.1", server.port, stop=stop)

    return ReplicaRouter(
        factory, workers=workers, registry=registry, probe_interval=0,
        tracer=tracer,
    )


class TestRouterObservability:
    def test_router_metrics_aggregate_replica_series(self, registry):
        async def scenario():
            router = make_traced_router(registry, exporter=None)
            await router.start()
            try:
                body = json.dumps(
                    {"model": "obs-test", "target": "R", "rows": [[0, 1]]}
                ).encode()
                status, __, __p = await http(
                    router.host, router.port, "POST", "/predict", body
                )
                assert status == 200
                status, content_type, payload = await http(
                    router.host, router.port, "GET", "/metrics"
                )
            finally:
                await router.stop()
            assert status == 200
            assert content_type == obs.METRICS_CONTENT_TYPE
            text = payload.decode("utf-8")
            assert check_metrics.validate_exposition(text) == []
            __, samples = obs.parse_exposition(text)
            names = {name for name, __l, __v in samples}
            assert "repro_router_replicas" in names
            replicas = {
                labels.get("replica")
                for name, labels, __v in samples
                if name == "repro_serve_uptime_seconds"
            }
            assert replicas == {"w1", "w2"}
            requests = sum(
                value
                for name, labels, value in samples
                if name == "repro_serve_model_requests_total"
            )
            assert requests == 1.0

        asyncio.run(scenario())

    def test_traced_request_yields_a_linked_span_tree(self, registry):
        records = []

        class ListExporter:
            def export(self, span):
                records.append(span.as_dict())

        async def scenario():
            router = make_traced_router(registry, ListExporter())
            await router.start()
            try:
                body = json.dumps(
                    {"model": "obs-test", "target": "R", "rows": [[0, 1]]}
                ).encode()
                status, __, __p = await http(
                    router.host,
                    router.port,
                    "POST",
                    "/predict",
                    body,
                    headers=((obs.TRACE_HEADER, "00000000000000aa-00000000000000bb"),),
                )
                assert status == 200
            finally:
                await router.stop()

        asyncio.run(scenario())
        trees = build_span_tree(records)
        assert list(trees) == ["00000000000000aa"]
        spans = {record["name"]: record for record in trees["00000000000000aa"]}
        assert set(spans) == {"router.predict", "serve.predict", "serve.flush"}
        assert spans["router.predict"]["parent_id"] == "00000000000000bb"
        assert spans["serve.predict"]["parent_id"] == (
            spans["router.predict"]["span_id"]
        )
        assert spans["serve.flush"]["parent_id"] == (
            spans["serve.predict"]["span_id"]
        )
        assert spans["serve.predict"]["attributes"]["model"] == "obs-test"
        assert spans["serve.flush"]["attributes"]["rows"] == 1

    def test_statz_surfaces_non_numeric_stats_per_replica(self, registry):
        async def scenario():
            router = make_traced_router(registry, exporter=None)
            await router.start()
            try:
                original = router._request_replica

                async def doctored(replica, method, path, body, **kwargs):
                    status, payload = await original(
                        replica, method, path, body, **kwargs
                    )
                    if path == "/models" and replica.name == "w1":
                        document = json.loads(payload.decode("utf-8"))
                        document["models"][0]["stats"]["engine"] = "compiled"
                        payload = json.dumps(document).encode("utf-8")
                    return status, payload

                router._request_replica = doctored
                return await router.statz_payload()
            finally:
                await router.stop()

        payload = asyncio.run(scenario())
        bucket = payload["models"]["obs-test"]
        assert bucket["non_numeric"] == {"w1": {"engine": "compiled"}}
        # Numeric keys still sum across the pool exactly as before.
        assert bucket["requests"] == 0


class TestInstrumentSeam:
    def test_disabled_by_default_and_clearable(self):
        assert obs.active() is None
        bundle = obs.instrument()
        assert obs.active() is bundle and bundle.registry is obs.REGISTRY
        assert obs.instrument(enabled=False) is None
        assert obs.active() is None

    def test_search_run_is_recorded_when_instrumented(self):
        from repro.core.search import CoverState, ExactRuleSearch

        rng = np.random.default_rng(2)
        dataset = TwoViewDataset(
            rng.random((30, 8)) < 0.45, rng.random((30, 6)) < 0.45, name="seam"
        )
        registry = obs.MetricsRegistry()
        obs.instrument(registry=registry)
        search = ExactRuleSearch(CoverState(dataset))
        search.find_best_rule()
        obs.instrument(enabled=False)
        search.find_best_rule()  # not counted: seam is off again
        __, samples = obs.parse_exposition(registry.render())
        runs = sum(
            value for name, __l, value in samples
            if name == "repro_search_runs_total"
        )
        assert runs == 1.0
        seconds = [
            value for name, __l, value in samples
            if name == "repro_search_seconds_count"
        ]
        assert seconds == [1.0]

    def test_metrics_lint_passes_end_to_end(self, capsys):
        """scripts/check_metrics.py: valid expositions, complete catalog."""
        assert check_metrics.main() == 0
        assert "families documented" in capsys.readouterr().out

    def test_lint_catches_a_bad_exposition(self):
        malformed = "# TYPE 0bad counter\n0bad{ 1\n"
        assert any(
            "unparseable" in error
            for error in check_metrics.validate_exposition(malformed)
        )
        misnamed = "# TYPE bad_hits counter\nbad_hits 1\n"
        assert any(
            "should end in _total" in error
            for error in check_metrics.validate_exposition(misnamed)
        )
