"""Smoke tests: every example script runs end to end.

Each example is executed in a subprocess exactly as a user would run it
(``python examples/<name>.py``).  The slowest two are marked ``slow`` so
they can be excluded with ``-m 'not slow'`` during quick iterations; the
full suite runs everything.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SLOW = {"method_comparison.py", "music_emotions.py"}

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least three examples"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", [name for name in EXAMPLES if name not in SLOW])
def test_example_runs(name):
    completed = run_example(name)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), f"{name} produced no output"


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SLOW))
def test_slow_example_runs(name):
    completed = run_example(name)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), f"{name} produced no output"


def test_quickstart_demonstrates_lossless_translation():
    completed = run_example("quickstart.py")
    assert completed.returncode == 0, completed.stderr
    assert "lossless" in completed.stdout.lower()


def test_stability_example_contrasts_noise():
    completed = run_example("stability_analysis.py")
    assert completed.returncode == 0, completed.stderr
    assert "noise" in completed.stdout
    assert "robust" in completed.stdout
