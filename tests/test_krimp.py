"""Unit tests for the KRIMP baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.baselines.convert import krimp_to_translation_table
from repro.baselines.krimp import CodeTable, Krimp


@pytest.fixture
def structured_matrix() -> np.ndarray:
    """A matrix with one strong embedded itemset {0,1,2}."""
    rng = np.random.default_rng(0)
    matrix = rng.random((200, 8)) < 0.15
    pattern_rows = rng.random(200) < 0.4
    matrix[np.ix_(pattern_rows, [0, 1, 2])] = True
    return matrix


class TestCodeTable:
    def test_initial_cover_is_singletons(self, structured_matrix):
        table = CodeTable(structured_matrix)
        total_usage = sum(table.usage.values())
        assert total_usage == int(structured_matrix.sum())

    def test_cover_partitions_transaction(self, structured_matrix):
        table = CodeTable(structured_matrix)
        table.insert(frozenset((0, 1, 2)), 50)
        for row in range(20):
            transaction = frozenset(np.flatnonzero(structured_matrix[row]).tolist())
            cover = table.cover(transaction)
            covered = set()
            for itemset in cover:
                assert itemset <= transaction
                assert not (itemset & covered)  # non-overlapping
                covered |= itemset
            assert covered == transaction  # complete

    def test_inserting_pattern_reduces_size(self, structured_matrix):
        table = CodeTable(structured_matrix)
        before = table.total_size()
        table.insert(frozenset((0, 1, 2)), 80)
        assert table.total_size() < before

    def test_inserting_noise_pattern_grows_size(self, structured_matrix):
        table = CodeTable(structured_matrix)
        before = table.total_size()
        table.insert(frozenset((5, 6, 7)), 1)
        assert table.total_size() >= before

    def test_remove_restores_size(self, structured_matrix):
        table = CodeTable(structured_matrix)
        before = table.total_size()
        table.insert(frozenset((0, 1)), 50)
        table.remove(frozenset((0, 1)))
        assert table.total_size() == pytest.approx(before)

    def test_cannot_remove_singleton(self, structured_matrix):
        table = CodeTable(structured_matrix)
        with pytest.raises(ValueError, match="singleton"):
            table.remove(frozenset((0,)))


class TestKrimp:
    def test_accepts_planted_pattern(self, structured_matrix):
        result = Krimp(minsup=10, max_size=4).fit(structured_matrix)
        assert result.compression_ratio < 1.0
        accepted = result.itemsets()
        assert any(set((0, 1, 2)) <= set(itemset) for itemset in accepted)

    def test_random_data_compresses_little(self):
        rng = np.random.default_rng(1)
        noise = rng.random((150, 8)) < 0.2
        result = Krimp(minsup=5, max_size=4).fit(noise)
        assert result.compression_ratio > 0.85

    def test_final_bits_consistent(self, structured_matrix):
        result = Krimp(minsup=10, max_size=4).fit(structured_matrix)
        assert result.final_bits == pytest.approx(result.code_table.total_size())

    def test_pruning_never_hurts(self, structured_matrix):
        pruned = Krimp(minsup=10, max_size=4, prune=True).fit(structured_matrix)
        unpruned = Krimp(minsup=10, max_size=4, prune=False).fit(structured_matrix)
        assert pruned.final_bits <= unpruned.final_bits + 1e-6

    def test_counts_reported(self, structured_matrix):
        result = Krimp(minsup=10, max_size=4).fit(structured_matrix)
        assert result.n_candidates > 0
        assert result.n_accepted == len(result.itemsets())


class TestConversion:
    def test_spanning_itemsets_become_rules(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=200, n_left=6, n_right=6,
                density_left=0.1, density_right=0.1,
                n_rules=2, confidence=(1.0, 1.0), activation=(0.3, 0.4), seed=2,
            )
        )
        joint, __ = dataset.joined()
        result = Krimp(minsup=5, max_size=5).fit(joint)
        table, dropped = krimp_to_translation_table(result, dataset.n_left)
        assert len(table) + dropped == len(result.itemsets())
        for rule in table:
            assert rule.lhs and rule.rhs
            assert rule.direction.value == "<->"
            assert all(item < dataset.n_left for item in rule.lhs)
            assert all(item < dataset.n_right for item in rule.rhs)
