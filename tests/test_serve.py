"""Serving subsystem tests (``pytest -m serve_smoke``).

Covers the three layers of :mod:`repro.serve` — the compiled predictor
(bit-identity against the per-rule loop on synthetic and ``car``-derived
tables, both strategies), artifacts and the registry (hash verification,
immutable versions, ``latest`` resolution), and the async service
(micro-batch coalescing, LRU response cache, HTTP round trips) — plus
the serving-adjacent regressions: the empty-antecedent guard in
``predict_view`` and the serving CLI commands.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.predict import predict_view
from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorGreedy
from repro.data.dataset import Side, TwoViewDataset
from repro.data.registry import make_dataset
from repro.serve import (
    ArtifactError,
    CompiledPredictor,
    LRUCache,
    MicroBatcher,
    ModelArtifact,
    ModelRegistry,
    PredictionServer,
    PredictionService,
    load_artifact,
    save_artifact,
)

pytestmark = pytest.mark.serve_smoke

STRATEGIES = ("blas", "packed")


def random_table(rng, n_left, n_right, n_rules=12) -> TranslationTable:
    rules = set()
    while len(rules) < n_rules:
        lhs = tuple(sorted(rng.choice(n_left, size=int(rng.integers(1, 4)), replace=False)))
        rhs = tuple(sorted(rng.choice(n_right, size=int(rng.integers(1, 4)), replace=False)))
        direction = ("->", "<-", "<->")[int(rng.integers(0, 3))]
        rules.add((lhs, rhs, direction))
    return TranslationTable(
        TranslationRule(lhs, rhs, direction) for lhs, rhs, direction in sorted(rules)
    )


@pytest.fixture(scope="module")
def car_model():
    """A table fitted on the paper's ``car`` dataset (shrunk for speed)."""
    dataset = make_dataset("car", scale=0.2)
    result = TranslatorGreedy(minsup=5).fit(dataset)
    return dataset, result


@pytest.fixture()
def registry(tmp_path, car_model):
    dataset, result = car_model
    registry = ModelRegistry(tmp_path / "registry")
    artifact = ModelArtifact.from_result(
        "car", dataset, result, {"method": "greedy", "minsup": 5}
    )
    registry.publish(artifact)
    return registry


class TestCompiledPredictor:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_bit_identical_to_loop_on_synthetic(self, seed, strategy):
        rng = np.random.default_rng(seed)
        n_left, n_right = 14, 11
        table = random_table(rng, n_left, n_right)
        batch = rng.random((73, n_left)) < 0.35
        loop = predict_view(batch, table, Side.RIGHT, n_right, engine="loop")
        compiled = CompiledPredictor.from_table(table, Side.RIGHT, n_left, n_right)
        assert np.array_equal(compiled.predict(batch, strategy=strategy), loop)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_bit_identical_to_loop_on_car(self, car_model, strategy):
        dataset, result = car_model
        rng = np.random.default_rng(3)
        for target, n_source, n_target, names in (
            (Side.RIGHT, dataset.n_left, dataset.n_right, "forward"),
            (Side.LEFT, dataset.n_right, dataset.n_left, "backward"),
        ):
            batch = rng.random((257, n_source)) < 0.3
            loop = predict_view(batch, result.table, target, n_target, engine="loop")
            compiled = CompiledPredictor.from_table(
                result.table, target, n_source, n_target
            )
            assert np.array_equal(
                compiled.predict(batch, strategy=strategy), loop
            ), f"{strategy} disagreed with the loop ({names})"

    def test_engine_dispatch_in_predict_view(self, car_model):
        dataset, result = car_model
        batch = dataset.left[:64]
        expected = predict_view(
            batch, result.table, Side.RIGHT, dataset.n_right, engine="loop"
        )
        for engine in ("compiled", "auto"):
            assert np.array_equal(
                predict_view(
                    batch, result.table, Side.RIGHT, dataset.n_right, engine=engine
                ),
                expected,
            )
        with pytest.raises(ValueError, match="engine"):
            predict_view(batch, result.table, Side.RIGHT, dataset.n_right, engine="gpu")

    def test_single_row_and_empty_batch(self):
        table = TranslationTable([TranslationRule((0, 1), (2,), "->")])
        compiled = CompiledPredictor.from_table(table, Side.RIGHT, 3, 3)
        assert compiled.predict_row([True, True, False]).tolist() == [
            False, False, True,
        ]
        assert compiled.predict(np.zeros((0, 3), dtype=bool)).shape == (0, 3)

    def test_direction_filtering(self):
        # A backward-only rule must not fire towards the right view.
        table = TranslationTable([TranslationRule((0,), (0,), "<-")])
        compiled = CompiledPredictor.from_table(table, Side.RIGHT, 2, 2)
        assert compiled.n_rules == 0
        assert not compiled.predict([[True, True]]).any()
        backward = CompiledPredictor.from_table(table, Side.LEFT, 2, 2)
        assert backward.n_rules == 1

    def test_shape_validation(self):
        table = TranslationTable([TranslationRule((0,), (0,), "->")])
        compiled = CompiledPredictor.from_table(table, Side.RIGHT, 4, 4)
        with pytest.raises(ValueError, match="source matrix"):
            compiled.predict(np.zeros((2, 5), dtype=bool))

    def test_wide_vocabulary_crosses_word_boundary(self):
        # >64 items per view exercises multi-word packed rows.
        rng = np.random.default_rng(9)
        table = random_table(rng, 130, 70, n_rules=20)
        batch = rng.random((40, 130)) < 0.4
        loop = predict_view(batch, table, Side.RIGHT, 70, engine="loop")
        compiled = CompiledPredictor.from_table(table, Side.RIGHT, 130, 70)
        for strategy in STRATEGIES:
            assert np.array_equal(compiled.predict(batch, strategy=strategy), loop)


class _EmptyAntecedentRule:
    """Duck-typed rule with an empty antecedent (TranslationRule forbids it)."""

    def applies_towards(self, target):
        return True

    def antecedent(self, target):
        return ()

    def consequent(self, target):
        return (0,)


class TestEmptyAntecedentGuard:
    def test_loop_engine_skips_with_warning(self):
        batch = np.zeros((3, 2), dtype=bool)  # nothing should ever fire
        with pytest.warns(UserWarning, match="empty antecedent"):
            predicted = predict_view(
                batch, [_EmptyAntecedentRule()], Side.RIGHT, 2, engine="loop"
            )
        assert not predicted.any()

    def test_compiled_engine_skips_with_warning(self):
        with pytest.warns(UserWarning, match="empty antecedent"):
            compiled = CompiledPredictor.from_table(
                [_EmptyAntecedentRule()], Side.RIGHT, 2, 2
            )
        assert compiled.n_rules == 0
        assert not compiled.predict(np.zeros((3, 2), dtype=bool)).any()


class TestArtifact:
    def test_save_load_roundtrip(self, tmp_path, car_model):
        dataset, result = car_model
        artifact = ModelArtifact.from_result("car", dataset, result, {"minsup": 5})
        path = tmp_path / "artifact.json"
        digest = save_artifact(artifact, path)
        loaded = load_artifact(path)
        assert loaded.table == artifact.table
        assert loaded.left_names == tuple(dataset.left_names)
        assert loaded.fit_params == {"minsup": 5}
        assert loaded.content_hash == digest

    def test_tampered_artifact_rejected(self, tmp_path, car_model):
        dataset, result = car_model
        path = tmp_path / "artifact.json"
        save_artifact(ModelArtifact.from_result("car", dataset, result), path)
        payload = json.loads(path.read_text())
        payload["fit_params"] = {"minsup": 999}  # tamper without rehashing
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="hash mismatch"):
            load_artifact(path)
        # Opting out of verification still loads it.
        assert load_artifact(path, verify=False).fit_params == {"minsup": 999}

    def test_unreadable_artifact_rejected(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(path)

    def test_unknown_schema_rejected(self, tmp_path, car_model):
        dataset, result = car_model
        path = tmp_path / "artifact.json"
        save_artifact(ModelArtifact.from_result("car", dataset, result), path)
        payload = json.loads(path.read_text())
        payload["artifact_schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="artifact_schema_version"):
            load_artifact(path)


class TestRegistry:
    def test_publish_assigns_increasing_versions(self, registry, car_model):
        dataset, result = car_model
        artifact = ModelArtifact.from_result("car", dataset, result)
        assert registry.versions("car") == [1]
        assert registry.publish(artifact).version == 2
        assert registry.versions("car") == [1, 2]
        assert registry.latest_version("car") == 2
        assert registry.models() == ["car"]

    def test_latest_pointer_rollback(self, registry, car_model):
        dataset, result = car_model
        registry.publish(ModelArtifact.from_result("car", dataset, result))
        registry.set_latest("car", 1)
        assert registry.latest_version("car") == 1
        assert registry.load("car").version == 1
        assert registry.load("car", "latest").version == 1
        assert registry.load("car", 2).version == 2
        with pytest.raises(KeyError):
            registry.set_latest("car", 42)

    def test_damaged_latest_pointer_raises_after_capped_retries(self, registry):
        # A persistently torn pointer is corruption, not a race: the read
        # loop is capped and surfaces a clear ArtifactError instead of
        # spinning or silently serving some other version.
        (registry.model_dir("car") / "LATEST").write_text("not-a-number")
        with pytest.raises(ArtifactError, match="LATEST pointer.*damaged"):
            registry.latest_version("car")
        # The damaged model degrades its /models row, not the listing.
        rows = registry.describe()
        assert rows[0]["name"] == "car"
        assert "LATEST pointer" in str(rows[0]["error"])

    def test_missing_latest_pointer_falls_back(self, registry):
        # Never written (publish(set_latest=False)): highest version wins.
        (registry.model_dir("car") / "LATEST").unlink(missing_ok=True)
        assert registry.latest_version("car") == 1

    def test_pointer_naming_unpublished_version_raises(self, registry):
        (registry.model_dir("car") / "LATEST").write_text("42\n")
        with pytest.raises(ArtifactError, match="names version 42"):
            registry.latest_version("car")

    def test_versions_are_immutable(self, registry, car_model):
        dataset, result = car_model
        stamped = registry.load("car", 1)
        directory = registry.artifact_path("car", 1).parent
        with pytest.raises(FileExistsError):
            directory.mkdir(parents=True, exist_ok=False)
        assert registry.load("car", 1).content_hash == stamped.content_hash

    def test_unknown_model_and_version(self, registry):
        with pytest.raises(KeyError):
            registry.load("nope")
        with pytest.raises(KeyError):
            registry.load("car", 99)

    def test_corrupt_artifact_rejected_on_load(self, registry):
        path = registry.artifact_path("car", 1)
        payload = json.loads(path.read_text())
        payload["vocab"]["left"] = payload["vocab"]["left"][:-1]
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="hash mismatch"):
            registry.load("car", 1)

    def test_invalid_model_name(self, registry):
        with pytest.raises(ValueError, match="model name"):
            registry.model_dir("../escape")

    def test_stray_directories_ignored(self, registry):
        (registry.root / ".git").mkdir()
        (registry.root / ".DS_Store").mkdir()
        assert registry.models() == ["car"]
        assert [row["name"] for row in registry.describe()] == ["car"]

    def test_describe(self, registry):
        rows = registry.describe()
        assert [row["name"] for row in rows] == ["car"]
        assert rows[0]["latest"] == 1
        assert rows[0]["n_rules"] > 0


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestMicroBatcher:
    def test_concurrent_requests_coalesce_into_one_call(self):
        calls = []

        def run(batch):
            calls.append(batch.shape[0])
            return ~batch

        async def scenario():
            batcher = MicroBatcher(max_batch=64, max_delay_ms=25.0)
            rows = [np.eye(4, dtype=bool)[i : i + 1] for i in range(4)]
            results = await asyncio.gather(
                *(batcher.submit("lane", row, run) for row in rows)
            )
            return results, batcher

        results, batcher = asyncio.run(scenario())
        assert calls == [4], "4 concurrent requests must run as one batch"
        assert batcher.batches == 1 and batcher.batched_rows == 4
        for index, result in enumerate(results):
            assert np.array_equal(result, ~np.eye(4, dtype=bool)[index : index + 1])

    def test_max_batch_triggers_immediate_flush(self):
        calls = []

        def run(batch):
            calls.append(batch.shape[0])
            return batch

        async def scenario():
            batcher = MicroBatcher(max_batch=2, max_delay_ms=10_000.0)
            rows = np.ones((1, 3), dtype=bool)
            await asyncio.gather(
                batcher.submit("lane", rows, run),
                batcher.submit("lane", rows, run),
            )

        asyncio.run(asyncio.wait_for(scenario(), timeout=5.0))
        assert calls == [2], "hitting max_batch must flush without the delay"

    def test_separate_lanes_do_not_mix(self):
        seen = {}

        def runner(name):
            def run(batch):
                seen.setdefault(name, 0)
                seen[name] += batch.shape[0]
                return batch

            return run

        async def scenario():
            batcher = MicroBatcher(max_batch=8, max_delay_ms=10.0)
            rows = np.ones((1, 2), dtype=bool)
            await asyncio.gather(
                batcher.submit("a", rows, runner("a")),
                batcher.submit("b", rows, runner("b")),
                batcher.submit("a", rows, runner("a")),
            )

        asyncio.run(scenario())
        assert seen == {"a": 2, "b": 1}

    def test_runner_failure_propagates_to_all_waiters(self):
        def run(batch):
            raise RuntimeError("model exploded")

        async def scenario():
            batcher = MicroBatcher(max_batch=8, max_delay_ms=5.0)
            rows = np.ones((1, 2), dtype=bool)
            results = await asyncio.gather(
                batcher.submit("lane", rows, run),
                batcher.submit("lane", rows, run),
                return_exceptions=True,
            )
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(result, RuntimeError) for result in results)

    def test_cancelled_flush_releases_waiters_promptly(self):
        # Shutdown discipline: cancelling the flush task while it waits
        # for batch company must hand every pending waiter a clean
        # CancelledError immediately — never a hang, never a re-wrapped
        # exception — and the cancellation itself must propagate (the
        # flush task ends *cancelled*, not swallowed-and-completed).
        async def scenario():
            batcher = MicroBatcher(max_batch=64, max_delay_ms=60_000.0)
            rows = np.ones((1, 2), dtype=bool)
            waiter = asyncio.ensure_future(
                batcher.submit("lane", rows, lambda batch: batch)
            )
            await asyncio.sleep(0.01)  # let the flush task start waiting
            (flush_task,) = batcher._flush_tasks
            flush_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await asyncio.wait_for(waiter, timeout=5.0)
            assert flush_task.cancelled(), "flush task swallowed its cancellation"
            assert "lane" not in batcher._lanes, "cancelled lane left behind"

        asyncio.run(asyncio.wait_for(scenario(), timeout=10.0))

    def test_shutdown_cancels_outstanding_flushes(self):
        async def scenario():
            batcher = MicroBatcher(max_batch=64, max_delay_ms=60_000.0)
            rows = np.ones((1, 2), dtype=bool)
            waiters = [
                asyncio.ensure_future(
                    batcher.submit(lane, rows, lambda batch: batch)
                )
                for lane in ("a", "b")
            ]
            await asyncio.sleep(0.01)
            await batcher.shutdown()
            results = await asyncio.gather(*waiters, return_exceptions=True)
            assert all(
                isinstance(result, asyncio.CancelledError) for result in results
            )
            assert not batcher._flush_tasks and not batcher._lanes

        asyncio.run(asyncio.wait_for(scenario(), timeout=10.0))

class TestPredictionService:
    def test_concurrent_predicts_coalesce(self, registry):
        service = PredictionService(registry, max_delay_ms=25.0, cache_size=0)
        predictor = service.predictor("car", 1, Side.RIGHT)
        calls = []

        class CountingPredictor:
            def predict(self, batch, strategy="auto"):
                calls.append(batch.shape[0])
                return predictor.predict(batch, strategy=strategy)

        service._predictors[("car", 1, Side.RIGHT.value)] = CountingPredictor()

        async def scenario():
            requests = [
                {"model": "car", "target": "R", "rows": [[index]]}
                for index in range(6)
            ]
            return await asyncio.gather(
                *(service.predict(request) for request in requests)
            )

        responses = asyncio.run(scenario())
        assert calls == [6], "6 concurrent requests must cost one predictor call"
        assert all(response["version"] == 1 for response in responses)
        stats = service.stats["car"]
        assert stats.requests == 6 and stats.rows == 6

    def test_response_cache_hit(self, registry):
        service = PredictionService(registry, max_delay_ms=0.0)
        request = {"model": "car", "target": "R", "rows": [[0, 3], []]}

        async def scenario():
            first = await service.predict(request)
            second = await service.predict(request)
            return first, second

        first, second = asyncio.run(scenario())
        assert first["cached"] is False and second["cached"] is True
        assert first["predictions"] == second["predictions"]
        assert service.stats["car"].cache_hits == 1

    def test_predictions_match_loop_engine(self, registry, car_model):
        dataset, result = car_model
        rows = [sorted(np.flatnonzero(row).tolist()) for row in dataset.left[:16]]
        compiled_service = PredictionService(registry, max_delay_ms=0.0)
        loop_service = PredictionService(registry, max_delay_ms=0.0, engine="loop")

        async def both():
            return (
                await compiled_service.predict(
                    {"model": "car", "target": "R", "rows": rows}
                ),
                await loop_service.predict(
                    {"model": "car", "target": "R", "rows": rows}
                ),
            )

        compiled_response, loop_response = asyncio.run(both())
        assert compiled_response["predictions"] == loop_response["predictions"]

    def test_request_validation(self, registry):
        service = PredictionService(registry, max_delay_ms=0.0)

        async def status_of(body):
            status, __ = await service.handle(
                "POST", "/predict", json.dumps(body).encode()
            )
            return status

        assert asyncio.run(status_of({"target": "R", "rows": []})) == 400
        assert asyncio.run(status_of({"model": "car", "rows": "x"})) == 400
        assert asyncio.run(status_of({"model": "ghost", "rows": []})) == 404
        assert (
            asyncio.run(status_of({"model": "car", "version": 9, "rows": []})) == 404
        )
        assert (
            asyncio.run(status_of({"model": "car", "rows": [[99999]]})) == 400
        )

    def test_corrupt_artifact_maps_to_500(self, registry):
        path = registry.artifact_path("car", 1)
        payload = json.loads(path.read_text())
        payload["content_hash"] = "0" * 64
        path.write_text(json.dumps(payload))
        service = PredictionService(registry, max_delay_ms=0.0)
        status, body = asyncio.run(
            service.handle(
                "POST",
                "/predict",
                json.dumps({"model": "car", "rows": [[0]]}).encode(),
            )
        )
        assert status == 500
        assert "hash mismatch" in body["error"]
        assert service.stats["car"].errors == 1

    def test_per_model_batch_counts_are_exact(self, registry):
        service = PredictionService(registry, max_delay_ms=25.0, cache_size=0)

        async def scenario():
            await asyncio.gather(
                *(
                    service.predict(
                        {"model": "car", "target": "R", "rows": [[index]]}
                    )
                    for index in range(5)
                )
            )

        asyncio.run(scenario())
        assert service.stats["car"].batches == 1

    def test_routes(self, registry):
        service = PredictionService(registry)

        async def scenario():
            health = await service.handle("GET", "/healthz")
            models = await service.handle("GET", "/models")
            missing = await service.handle("GET", "/nope")
            return health, models, missing

        health, models, missing = asyncio.run(scenario())
        assert health[0] == 200 and health[1]["status"] == "ok"
        assert models[0] == 200
        assert models[1]["models"][0]["name"] == "car"
        assert missing[0] == 404


class TestPredictionServer:
    def test_http_round_trip(self, registry):
        async def scenario():
            service = PredictionService(registry, max_delay_ms=0.0)
            server = PredictionServer(service, port=0)
            await server.start()
            try:
                async def call(raw: bytes) -> tuple[int, dict]:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    writer.write(raw)
                    await writer.drain()
                    response = await reader.read()
                    writer.close()
                    head, __, body = response.partition(b"\r\n\r\n")
                    status = int(head.split()[1])
                    return status, json.loads(body)

                health = await call(b"GET /healthz HTTP/1.1\r\n\r\n")
                body = json.dumps(
                    {"model": "car", "target": "R", "rows": [[0, 1]]}
                ).encode()
                predict = await call(
                    b"POST /predict HTTP/1.1\r\nContent-Length: "
                    + str(len(body)).encode()
                    + b"\r\n\r\n"
                    + body
                )
                bad = await call(b"BOGUS\r\n\r\n")
                huge = await call(
                    b"POST /predict HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"
                )
                return health, predict, bad, huge
            finally:
                await server.stop()

        health, predict, bad, huge = asyncio.run(scenario())
        assert health == (200, health[1]) and health[1]["status"] == "ok"
        assert predict[0] == 200 and predict[1]["model"] == "car"
        assert bad[0] == 400
        assert huge[0] == 413, "absurd Content-Length must be rejected"


class TestServeCli:
    def test_publish_serve_predict_batch(self, tmp_path, capsys):
        from repro.cli import main

        registry_dir = tmp_path / "registry"
        assert main([
            "publish", "car", "--scale", "0.2", "--method", "greedy",
            "--minsup", "5", "--registry", str(registry_dir), "--name", "car",
        ]) == 0
        assert "published car v1" in capsys.readouterr().out

        rows_path = tmp_path / "rows.json"
        rows_path.write_text(json.dumps([[0, 3], [1], []]))
        output_path = tmp_path / "predictions.json"
        assert main([
            "predict-batch", "--registry", str(registry_dir), "--model", "car",
            "--input", str(rows_path), "--output", str(output_path),
        ]) == 0
        response = json.loads(output_path.read_text())
        assert response["version"] == 1
        assert len(response["predictions"]) == 3

    def test_publish_table_default_name(self, tmp_path, capsys):
        from repro.cli import main

        table_path = tmp_path / "table.json"
        assert main([
            "fit", "car", "--scale", "0.2", "--method", "greedy",
            "--minsup", "5", "--output", str(table_path),
        ]) == 0
        capsys.readouterr()
        # No --name: a table-file publish must not claim a fit method.
        assert main([
            "publish", "car", "--scale", "0.2", "--table", str(table_path),
            "--registry", str(tmp_path / "registry"),
        ]) == 0
        assert "published car-table v1" in capsys.readouterr().out

    def test_predict_from_saved_table(self, tmp_path, capsys):
        from repro.cli import main

        table_path = tmp_path / "table.json"
        assert main([
            "fit", "car", "--scale", "0.2", "--method", "greedy",
            "--minsup", "5", "--output", str(table_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "predict", "car", "--scale", "0.2", "--table", str(table_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "saved table" in out
        assert "left_to_right" in out
