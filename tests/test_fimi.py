"""Tests for FIMI / LUCS-KDD transaction-file loading (repro.data.io)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import load_fimi, load_fimi_pair


@pytest.fixture
def fimi_file(tmp_path):
    path = tmp_path / "data.num"
    path.write_text(
        "# items 0-2 left, 3-5 right\n"
        "0 1 3\n"
        "2 4 5\n"
        "\n"
        "% another comment style\n"
        "0 3 5\n",
        encoding="utf-8",
    )
    return path


class TestLoadFimi:
    def test_splits_items_by_n_left(self, fimi_file):
        dataset = load_fimi(fimi_file, n_left=3)
        assert dataset.n_transactions == 3
        assert dataset.n_left == 3
        assert dataset.n_right == 3
        assert bool(dataset.left[0, 0]) and bool(dataset.left[0, 1])
        assert bool(dataset.right[0, 0])  # item 3 -> right column 0

    def test_comments_and_blank_lines_skipped(self, fimi_file):
        dataset = load_fimi(fimi_file, n_left=3)
        assert dataset.n_transactions == 3

    def test_n_items_fixes_vocabulary(self, tmp_path):
        path = tmp_path / "short.num"
        path.write_text("0 1\n", encoding="utf-8")
        dataset = load_fimi(path, n_left=1, n_items=5)
        assert dataset.n_left == 1
        assert dataset.n_right == 4

    def test_item_exceeding_n_items_rejected(self, tmp_path):
        path = tmp_path / "bad.num"
        path.write_text("0 9\n", encoding="utf-8")
        with pytest.raises(ValueError, match="exceeds n_items"):
            load_fimi(path, n_left=1, n_items=5)

    def test_n_left_exceeding_vocabulary_rejected(self, tmp_path):
        path = tmp_path / "tiny.num"
        path.write_text("0 1\n", encoding="utf-8")
        with pytest.raises(ValueError, match="n_left exceeds"):
            load_fimi(path, n_left=10)

    def test_default_name_is_stem(self, fimi_file):
        assert load_fimi(fimi_file, n_left=3).name == "data"


class TestLoadFimiPair:
    def test_aligned_views(self, tmp_path):
        left = tmp_path / "left.num"
        right = tmp_path / "right.num"
        left.write_text("0 1\n2\n", encoding="utf-8")
        right.write_text("0\n1 2\n", encoding="utf-8")
        dataset = load_fimi_pair(left, right)
        assert dataset.n_transactions == 2
        assert dataset.n_left == 3 and dataset.n_right == 3
        assert bool(dataset.left[1, 2])
        assert bool(dataset.right[1, 1]) and bool(dataset.right[1, 2])

    def test_mismatched_lengths_rejected(self, tmp_path):
        left = tmp_path / "left.num"
        right = tmp_path / "right.num"
        left.write_text("0\n1\n", encoding="utf-8")
        right.write_text("0\n", encoding="utf-8")
        with pytest.raises(ValueError, match="different transaction counts"):
            load_fimi_pair(left, right)

    def test_matrix_contents_round(self, tmp_path):
        rng = np.random.default_rng(0)
        left_rows = [sorted(rng.choice(6, size=rng.integers(1, 4), replace=False).tolist()) for __ in range(20)]
        right_rows = [sorted(rng.choice(5, size=rng.integers(1, 3), replace=False).tolist()) for __ in range(20)]
        left = tmp_path / "l.num"
        right = tmp_path / "r.num"
        left.write_text("\n".join(" ".join(map(str, row)) for row in left_rows), encoding="utf-8")
        right.write_text("\n".join(" ".join(map(str, row)) for row in right_rows), encoding="utf-8")
        dataset = load_fimi_pair(left, right)
        for index, row in enumerate(left_rows):
            assert set(np.flatnonzero(dataset.left[index]).tolist()) == set(row)
        for index, row in enumerate(right_rows):
            assert set(np.flatnonzero(dataset.right[index]).tolist()) == set(row)
