"""End-to-end integration tests across the whole library."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro import (
    Side,
    TranslationTable,
    TranslatorExact,
    TranslatorGreedy,
    TranslatorSelect,
    TwoViewDataset,
    make_dataset,
)
from repro.data.io import load_dataset, save_dataset
from repro.data.preprocessing import frame_to_two_view
from repro.core.translate import reconstruct
from repro.eval.metrics import evaluate_table, rule_set_summary


class TestEndToEndPipeline:
    def test_preprocess_fit_save_load_evaluate(self, tmp_path, rng):
        # 1. Tabular data with a planted dependency across the two frames.
        n = 300
        category = [["alpha", "beta", "gamma"][int(rng.integers(3))] for __ in range(n)]
        left_frame = {
            "category": category,
            "value": [float(rng.normal()) for __ in range(n)],
        }
        right_frame = {
            "flag": [value == "alpha" or rng.random() < 0.1 for value in category],
            "other": [float(rng.integers(10)) for __ in range(n)],
        }
        data = frame_to_two_view(left_frame, right_frame, n_bins=3, name="pipeline")

        # 2. Persist and reload the dataset.
        data_path = tmp_path / "pipeline.2v"
        save_dataset(data, data_path)
        reloaded = load_dataset(data_path)
        assert reloaded == data

        # 3. Induce a model, persist and reload the table.
        result = TranslatorSelect(k=1, minsup=5).fit(reloaded)
        table_path = tmp_path / "table.json"
        result.table.save(table_path)
        table = TranslationTable.load(table_path)
        assert table == result.table

        # 4. Scoring the reloaded table reproduces the fit metrics.
        state = evaluate_table(reloaded, table)
        assert state.compression_ratio() == pytest.approx(result.compression_ratio)

        # 5. The planted dependency category=alpha <-> flag is captured.
        alpha = reloaded.item_index(Side.LEFT, "category=alpha")
        flag = reloaded.item_index(Side.RIGHT, "flag")
        assert any(alpha in rule.lhs and flag in rule.rhs for rule in table)

        # 6. Losslessness end to end.
        np.testing.assert_array_equal(
            reconstruct(reloaded, table, Side.RIGHT), reloaded.right
        )

    def test_registry_to_report(self):
        data = make_dataset("wine", scale=0.5)
        result = TranslatorGreedy(minsup=2).fit(data)
        summary = rule_set_summary(data, result.table, method="greedy")
        assert summary["compression_ratio"] <= 1.0
        assert summary["n_rules"] == result.n_rules


class TestMethodOrderingOnPlantedData:
    """The paper's method ordering must hold on structured data."""

    def test_exact_vs_select_vs_greedy(self):
        data = make_dataset("car", scale=0.2)
        exact = TranslatorExact(max_nodes_per_search=30_000).fit(data)
        select = TranslatorSelect(k=1, minsup=1, max_candidates=3_000).fit(data)
        greedy = TranslatorGreedy(minsup=1, max_candidates=3_000).fit(data)
        # All compress; greedy does not beat select meaningfully.
        assert exact.compression_ratio <= 1.0
        assert select.compression_ratio <= 1.0
        assert greedy.compression_ratio >= select.compression_ratio - 0.02


class TestModuleExecution:
    def test_python_dash_m_repro(self, tmp_path, toy_dataset):
        path = tmp_path / "toy.2v"
        save_dataset(toy_dataset, path)
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "stats", str(path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "toy" in completed.stdout


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_exports_resolve(self):
        import repro.baselines
        import repro.core
        import repro.data
        import repro.eval
        import repro.mining

        for module in (
            repro.baselines, repro.core, repro.data, repro.eval, repro.mining
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module, name)
