"""Unit tests for the model report renderer."""

from __future__ import annotations

from repro.core.translator import TranslatorSelect
from repro.eval.report import describe_result


class TestDescribeResult:
    def test_contains_all_sections(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        text = describe_result(planted_dataset, result)
        for marker in (
            "model report",
            "dataset",
            "encoded lengths",
            "L(D, T)",
            "coverage",
            "redundancy",
            "rules (",
        ):
            assert marker in text

    def test_numbers_match_result(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        text = describe_result(planted_dataset, result)
        assert f"{100 * result.compression_ratio:11.2f}%" in text
        assert str(result.n_rules) in text

    def test_rule_limit(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        if result.n_rules > 1:
            text = describe_result(planted_dataset, result, max_rules=1)
            assert f"({result.n_rules - 1} more rules)" in text

    def test_empty_model(self, toy_dataset):
        result = TranslatorSelect(k=1, minsup=100).fit(toy_dataset)
        text = describe_result(toy_dataset, result)
        assert "rules (0 total" in text
