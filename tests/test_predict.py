"""Unit tests for prediction with translation tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Side, TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted, random_dataset
from repro.core.predict import (
    PredictionScores,
    holdout_evaluation,
    predict_view,
    prediction_scores,
)
from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.core.translate import translate_view
from repro.core.translator import TranslatorSelect


class TestPredictView:
    def test_matches_translate_view_on_training_data(self, toy_dataset):
        table = TranslationTable(
            [
                TranslationRule((0, 1), (3,), Direction.BOTH),
                TranslationRule((2,), (2,), Direction.FORWARD),
            ]
        )
        predicted = predict_view(
            toy_dataset.left, table, Side.RIGHT, toy_dataset.n_right
        )
        np.testing.assert_array_equal(
            predicted, translate_view(toy_dataset, table, Side.RIGHT)
        )

    def test_backward_prediction(self, toy_dataset):
        table = TranslationTable([TranslationRule((0,), (3,), Direction.BOTH)])
        predicted = predict_view(
            toy_dataset.right, table, Side.LEFT, toy_dataset.n_left
        )
        np.testing.assert_array_equal(
            predicted, translate_view(toy_dataset, table, Side.LEFT)
        )

    def test_unidirectional_rules_ignored_for_wrong_direction(self, toy_dataset):
        table = TranslationTable([TranslationRule((0,), (3,), Direction.FORWARD)])
        predicted = predict_view(
            toy_dataset.right, table, Side.LEFT, toy_dataset.n_left
        )
        assert not predicted.any()

    def test_new_transactions(self):
        table = TranslationTable([TranslationRule((0, 1), (0,), Direction.FORWARD)])
        new_left = np.array([[1, 1, 0], [1, 0, 0]], dtype=bool)
        predicted = predict_view(new_left, table, Side.RIGHT, 2)
        assert predicted[0, 0] and not predicted[1].any()


class TestScores:
    def test_perfect_prediction(self):
        actual = np.array([[1, 0], [0, 1]], dtype=bool)
        scores = prediction_scores(actual, actual, Side.RIGHT)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_empty_prediction(self):
        actual = np.array([[1, 0]], dtype=bool)
        predicted = np.zeros_like(actual)
        scores = prediction_scores(predicted, actual, Side.RIGHT)
        assert scores.precision == 0.0
        assert scores.recall == 0.0
        assert scores.f1 == 0.0

    def test_counts_by_hand(self):
        predicted = np.array([[1, 1, 0]], dtype=bool)
        actual = np.array([[1, 0, 1]], dtype=bool)
        scores = prediction_scores(predicted, actual, Side.RIGHT)
        assert scores.true_positives == 1
        assert scores.false_positives == 1
        assert scores.false_negatives == 1
        assert scores.precision == pytest.approx(0.5)
        assert scores.recall == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes"):
            prediction_scores(
                np.zeros((1, 2), bool), np.zeros((1, 3), bool), Side.RIGHT
            )


class TestHoldout:
    def test_structured_data_predicts_well(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=600, n_left=10, n_right=10,
                density_left=0.08, density_right=0.08,
                n_rules=3, confidence=(0.95, 1.0), activation=(0.25, 0.35), seed=13,
            )
        )
        scores = holdout_evaluation(
            dataset, TranslatorSelect(k=1, minsup=5), train_fraction=0.7, rng=0
        )
        assert scores["left_to_right"].f1 > 0.3
        assert scores["right_to_left"].f1 > 0.3

    def test_noise_predicts_poorly(self):
        noise = random_dataset(400, 10, 10, 0.15, 0.15, seed=14)
        scores = holdout_evaluation(
            noise, TranslatorSelect(k=1, minsup=5), train_fraction=0.7, rng=0
        )
        # On independent views there is nothing to predict.
        assert scores["left_to_right"].f1 < 0.4

    def test_structured_beats_noise(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=500, n_left=10, n_right=10,
                density_left=0.1, density_right=0.1,
                n_rules=3, confidence=(0.95, 1.0), activation=(0.25, 0.35), seed=15,
            )
        )
        noise = random_dataset(500, 10, 10, 0.1, 0.1, seed=16)
        structured = holdout_evaluation(dataset, TranslatorSelect(k=1, minsup=5), rng=0)
        random_scores = holdout_evaluation(noise, TranslatorSelect(k=1, minsup=5), rng=0)
        assert (
            structured["left_to_right"].f1 > random_scores["left_to_right"].f1
        )
