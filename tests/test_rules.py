"""Unit tests for translation rules."""

from __future__ import annotations

import pytest

from repro.data.dataset import Side
from repro.core.rules import Direction, TranslationRule


class TestDirection:
    def test_encoded_bits(self):
        assert Direction.BOTH.encoded_bits == 1
        assert Direction.FORWARD.encoded_bits == 2
        assert Direction.BACKWARD.encoded_bits == 2

    def test_applies(self):
        assert Direction.FORWARD.applies_forward
        assert not Direction.FORWARD.applies_backward
        assert Direction.BACKWARD.applies_backward
        assert not Direction.BACKWARD.applies_forward
        assert Direction.BOTH.applies_forward and Direction.BOTH.applies_backward

    def test_from_string(self):
        assert Direction.from_string("->") is Direction.FORWARD
        assert Direction.from_string("<-") is Direction.BACKWARD
        assert Direction.from_string("<->") is Direction.BOTH

    def test_from_string_invalid(self):
        with pytest.raises(ValueError, match="invalid direction"):
            Direction.from_string("=>")

    def test_str(self):
        assert str(Direction.BOTH) == "<->"


class TestTranslationRule:
    def test_normalises_and_sorts(self):
        rule = TranslationRule((3, 1, 1), (2,), Direction.FORWARD)
        assert rule.lhs == (1, 3)
        assert rule.rhs == (2,)

    def test_accepts_direction_string(self):
        rule = TranslationRule((0,), (0,), "<->")
        assert rule.direction is Direction.BOTH

    def test_rejects_empty_sides(self):
        with pytest.raises(ValueError, match="lhs"):
            TranslationRule((), (1,), Direction.FORWARD)
        with pytest.raises(ValueError, match="rhs"):
            TranslationRule((1,), (), Direction.FORWARD)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            TranslationRule((-1,), (0,), Direction.FORWARD)

    def test_size(self):
        rule = TranslationRule((0, 1), (2, 3, 4), Direction.BOTH)
        assert rule.size == 5

    def test_hashable_and_equal(self):
        rule_a = TranslationRule((1, 0), (2,), Direction.BOTH)
        rule_b = TranslationRule((0, 1), (2,), Direction.BOTH)
        assert rule_a == rule_b
        assert hash(rule_a) == hash(rule_b)
        assert rule_a != rule_a.with_direction(Direction.FORWARD)

    def test_antecedent_consequent(self):
        rule = TranslationRule((0,), (1,), Direction.BOTH)
        assert rule.antecedent(Side.RIGHT) == (0,)
        assert rule.consequent(Side.RIGHT) == (1,)
        assert rule.antecedent(Side.LEFT) == (1,)
        assert rule.consequent(Side.LEFT) == (0,)

    def test_applies_towards(self):
        forward = TranslationRule((0,), (1,), Direction.FORWARD)
        assert forward.applies_towards(Side.RIGHT)
        assert not forward.applies_towards(Side.LEFT)
        both = forward.with_direction(Direction.BOTH)
        assert both.applies_towards(Side.LEFT)

    def test_render_with_names(self, toy_dataset):
        rule = TranslationRule((0, 1), (3,), Direction.BOTH)
        assert rule.render(toy_dataset) == "{a, b} <-> {u}"

    def test_render_without_names(self):
        rule = TranslationRule((0, 1), (3,), Direction.FORWARD)
        assert str(rule) == "{0, 1} -> {3}"

    def test_serialisation_roundtrip(self):
        rule = TranslationRule((0, 2), (1,), Direction.BACKWARD)
        assert TranslationRule.from_dict(rule.to_dict()) == rule

    def test_with_direction(self):
        rule = TranslationRule((0,), (1,), Direction.FORWARD)
        flipped = rule.with_direction(Direction.BACKWARD)
        assert flipped.lhs == rule.lhs
        assert flipped.direction is Direction.BACKWARD
