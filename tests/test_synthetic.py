"""Unit tests for the synthetic planted-rule generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Side
from repro.data.synthetic import (
    PlantedRule,
    SyntheticSpec,
    generate_planted,
    planted_with_names,
    random_dataset,
)


class TestSpecValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError, match="positive"):
            SyntheticSpec(n_transactions=0)

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError, match="densities"):
            SyntheticSpec(density_left=1.5)

    def test_rejects_empty_rule_sides(self):
        with pytest.raises(ValueError, match="at least one item"):
            SyntheticSpec(lhs_size=(0, 2))

    def test_rejects_bad_bidirectional_fraction(self):
        with pytest.raises(ValueError, match="bidirectional_fraction"):
            SyntheticSpec(bidirectional_fraction=2.0)


class TestPlantedRuleValidation:
    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            PlantedRule((0,), (1,), "=>", 0.1, 0.9)

    def test_rejects_empty_sides(self):
        with pytest.raises(ValueError, match="non-empty"):
            PlantedRule((), (1,), "->", 0.1, 0.9)

    def test_rejects_bad_activation(self):
        with pytest.raises(ValueError, match="activation"):
            PlantedRule((0,), (1,), "->", 0.0, 0.9)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            PlantedRule((0,), (1,), "->", 0.1, 1.5)


class TestGeneration:
    def test_shapes(self):
        spec = SyntheticSpec(n_transactions=120, n_left=9, n_right=11, seed=1)
        dataset, rules = generate_planted(spec)
        assert dataset.n_transactions == 120
        assert dataset.n_left == 9
        assert dataset.n_right == 11
        assert len(rules) == spec.n_rules

    def test_deterministic(self):
        spec = SyntheticSpec(seed=5)
        first, rules_first = generate_planted(spec)
        second, rules_second = generate_planted(spec)
        assert first == second
        assert rules_first == rules_second

    def test_different_seeds_differ(self):
        first, __ = generate_planted(SyntheticSpec(seed=1))
        second, __ = generate_planted(SyntheticSpec(seed=2))
        assert first != second

    def test_density_close_to_target(self):
        spec = SyntheticSpec(
            n_transactions=2000, n_left=30, n_right=30,
            density_left=0.25, density_right=0.10, n_rules=3, seed=0,
        )
        dataset, __ = generate_planted(spec)
        assert dataset.density_left == pytest.approx(0.25, abs=0.05)
        assert dataset.density_right == pytest.approx(0.10, abs=0.05)

    def test_planted_rules_hold_with_confidence(self):
        spec = SyntheticSpec(
            n_transactions=1000, n_left=20, n_right=20,
            density_left=0.05, density_right=0.05,
            n_rules=3, confidence=(0.95, 1.0), activation=(0.2, 0.3), seed=4,
        )
        dataset, rules = generate_planted(spec)
        for rule in rules:
            if rule.direction in ("->", "<->"):
                antecedent = dataset.support_mask(Side.LEFT, rule.lhs)
                consequent = dataset.support_mask(Side.RIGHT, rule.rhs)
                confidence = (antecedent & consequent).sum() / antecedent.sum()
                assert confidence > 0.6  # planted signal dominates noise

    def test_rule_items_within_vocabulary(self):
        dataset, rules = generate_planted(SyntheticSpec(seed=2))
        for rule in rules:
            assert all(0 <= item < dataset.n_left for item in rule.lhs)
            assert all(0 <= item < dataset.n_right for item in rule.rhs)


class TestRandomDataset:
    def test_shapes_and_density(self):
        data = random_dataset(500, 12, 8, 0.3, 0.2, seed=0)
        assert data.n_transactions == 500
        assert data.density_left == pytest.approx(0.3, abs=0.05)
        assert data.density_right == pytest.approx(0.2, abs=0.05)

    def test_deterministic(self):
        assert random_dataset(50, 5, 5, seed=1) == random_dataset(50, 5, 5, seed=1)


class TestNamed:
    def test_names_applied(self):
        spec = SyntheticSpec(n_transactions=50, n_left=2, n_right=2, n_rules=1, seed=0)
        dataset, __ = planted_with_names(spec, ["a", "b"], ["x", "y"], name="named")
        assert dataset.left_names == ["a", "b"]
        assert dataset.name == "named"

    def test_name_length_mismatch(self):
        spec = SyntheticSpec(n_left=2, n_right=2)
        with pytest.raises(ValueError, match="match the spec"):
            planted_with_names(spec, ["a"], ["x", "y"])
