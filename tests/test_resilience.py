"""Fault-tolerance tests (``pytest -m chaos_smoke``).

Chaos engineering as unit tests: every scenario injects a *scripted*
failure (torn write, crash between publish steps, mid-stream process
death, stalled client, corrupt registry) through
:mod:`repro.resilience.faults` and asserts the system degrades the way
the docs promise — quarantined versions, healed ``LATEST`` pointers,
bit-identical crash-resume, graceful drains with zero dropped requests,
stale-flagged last-good responses.  All fault plans are deterministic
(exact replays, no roulette) and no test sleeps longer than 0.1s.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorExact
from repro.resilience import (
    CheckpointError,
    CircuitBreaker,
    CircuitOpenError,
    CrashPoint,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    Supervisor,
    WindowCheckpoint,
    fault_point,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve import (
    ArtifactError,
    ModelArtifact,
    ModelRegistry,
    PredictionServer,
    PredictionService,
)
from repro.stream import MaintenanceLoop, RefitPolicy, StreamBuffer
from repro.stream.source import JsonlSource

pytestmark = pytest.mark.chaos_smoke

N_LEFT, N_RIGHT = 6, 5


def random_table(seed: int, n_rules: int = 5) -> TranslationTable:
    rng = np.random.default_rng(seed)
    rules = set()
    while len(rules) < n_rules:
        lhs = tuple(
            sorted(rng.choice(N_LEFT, size=int(rng.integers(1, 3)), replace=False))
        )
        rhs = tuple(
            sorted(rng.choice(N_RIGHT, size=int(rng.integers(1, 3)), replace=False))
        )
        rules.add((lhs, rhs, "->"))
    return TranslationTable(
        TranslationRule(lhs, rhs, direction) for lhs, rhs, direction in sorted(rules)
    )


def tiny_artifact(seed: int, name: str = "live") -> ModelArtifact:
    return ModelArtifact(
        name=name,
        table=random_table(seed),
        left_names=tuple(f"l{i}" for i in range(N_LEFT)),
        right_names=tuple(f"r{i}" for i in range(N_RIGHT)),
        created_unix=float(seed),
    )


def write_rows(path, n_rows: int, seed: int = 0) -> None:
    """A deterministic JSONL stream over the (N_LEFT, N_RIGHT) vocab."""
    rng = np.random.default_rng(seed)
    lines = []
    for _ in range(n_rows):
        left = sorted(
            int(i)
            for i in rng.choice(N_LEFT, size=int(rng.integers(1, 4)), replace=False)
        )
        right = sorted(
            int(i)
            for i in rng.choice(N_RIGHT, size=int(rng.integers(1, 3)), replace=False)
        )
        lines.append(json.dumps({"left": left, "right": right}))
    path.write_text("\n".join(lines) + "\n")


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_schedule_is_deterministic_per_seed(self):
        a = list(RetryPolicy(attempts=5, seed=7).delays())
        b = list(RetryPolicy(attempts=5, seed=7).delays())
        c = list(RetryPolicy(attempts=5, seed=8).delays())
        assert a == b
        assert a != c, "distinct seeds must de-synchronise the schedule"

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3, 0.3]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(attempts=9, base_delay=1.0, max_delay=1.0, jitter=0.25)
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.25

    def test_call_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        sleeps = []
        policy = RetryPolicy(attempts=4, base_delay=0.01, jitter=0.0)
        assert policy.call(flaky, sleep=sleeps.append) == "done"
        assert len(attempts) == 3
        assert sleeps == [0.01, 0.02]

    def test_call_exhausts_and_raises_last_error(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(OSError, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(OSError("always")),
                        sleep=lambda _: None)

    def test_deadline_preempts_retries(self):
        tick = iter([0.0, 0.0, 5.0, 5.0, 5.0]).__next__
        deadline = Deadline(1.0, clock=tick)
        calls = []

        def failing():
            calls.append(1)
            raise OSError("down")

        policy = RetryPolicy(attempts=10, base_delay=0.0, jitter=0.0)
        with pytest.raises((OSError, DeadlineExceeded)):
            policy.call(failing, deadline=deadline, sleep=lambda _: None)
        assert len(calls) < 10, "no retry may start past the deadline"

    def test_call_async_retries(self):
        attempts = []

        async def flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0)
        assert asyncio.run(policy.call_async(flaky)) == "ok"
        assert len(attempts) == 2


class TestDeadline:
    def test_remaining_and_expiry_on_fake_clock(self):
        times = iter([0.0, 0.4, 0.9, 1.1])
        deadline = Deadline(1.0, clock=lambda: next(times))
        assert deadline.remaining() == pytest.approx(0.6)
        assert not deadline.expired()  # clock at 0.9
        with pytest.raises(DeadlineExceeded):
            deadline.check("drain")  # clock at 1.1

    def test_unbounded(self):
        deadline = Deadline(None)
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()


class TestCircuitBreaker:
    def make(self, threshold=2, reset=10.0):
        self.now = 0.0
        return CircuitBreaker(
            failure_threshold=threshold,
            reset_timeout=reset,
            clock=lambda: self.now,
        )

    def test_opens_after_threshold_and_recovers_via_probe(self):
        breaker = self.make()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.guard("registry")
        self.now = 10.0  # cooldown elapsed -> half-open, single probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow(), "only one concurrent probe is let through"
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_failed_probe_reopens(self):
        breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        self.now = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        self.now = 15.0
        assert breaker.state == CircuitBreaker.OPEN, "re-opened at the probe time"
        self.now = 20.0
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_call_wrapper(self):
        breaker = self.make(threshold=1)
        with pytest.raises(OSError):
            breaker.call(lambda: (_ for _ in ()).throw(OSError("x")))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_inactive_fault_point_is_a_passthrough(self):
        assert fault_point("anything", data=b"xyz") == b"xyz"
        assert fault_point("anything") is None

    def test_fail_nth_then_recover(self):
        injector = FaultInjector().plan("op.write", kind="error", nth=2)
        with injector.active():
            assert fault_point("op.write", data=b"a") == b"a"
            with pytest.raises(InjectedFault):
                fault_point("op.write", data=b"b")
            assert fault_point("op.write", data=b"c") == b"c"
        assert injector.fired == [("op.write", "error", 2)]

    def test_times_window_and_forever(self):
        injector = FaultInjector().plan("op", kind="error", nth=1, times=2)
        with injector.active():
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fault_point("op")
            fault_point("op")  # 3rd call: outside the window
        forever = FaultInjector().plan("op", kind="error", times=-1)
        with forever.active():
            for _ in range(3):
                with pytest.raises(InjectedFault):
                    fault_point("op")

    def test_corrupt_flips_one_byte(self):
        injector = FaultInjector().plan("op", kind="corrupt", at=1)
        with injector.active():
            mangled = fault_point("op", data=b"abc")
        assert mangled == bytes([ord("a"), ord("b") ^ 0xFF, ord("c")])

    def test_truncate_keeps_a_prefix(self):
        injector = FaultInjector().plan("op", kind="truncate", at=3)
        with injector.active():
            assert fault_point("op", data=b"abcdef") == b"abc"

    def test_crash_is_a_base_exception(self):
        injector = FaultInjector().plan("op", kind="crash")
        with injector.active():
            caught = None
            try:
                try:
                    fault_point("op")
                except Exception:  # ordinary recovery code must NOT see it
                    pytest.fail("CrashPoint must pierce `except Exception`")
            except CrashPoint as crash:
                caught = crash
        assert caught is not None

    def test_wildcard_pattern_and_uninstall(self):
        injector = FaultInjector().plan("registry.*", kind="error")
        with injector.active():
            with pytest.raises(InjectedFault):
                fault_point("registry.artifact.bytes")
        # Out of the context manager: the hook is a no-op again.
        assert fault_point("registry.artifact.bytes", data=b"ok") == b"ok"

    def test_delay_passes_data_through(self):
        injector = FaultInjector().plan("op", kind="delay", delay=0.0)
        with injector.active():
            assert fault_point("op", data=b"d") == b"d"
        assert injector.fired == [("op", "delay", 1)]


# ----------------------------------------------------------------------
# Supervision
# ----------------------------------------------------------------------
class TestSupervisor:
    def test_restarts_until_success(self):
        async def scenario():
            async def flaky(attempt: int):
                if attempt < 2:
                    raise RuntimeError(f"boom {attempt}")
                return "recovered"

            supervisor = Supervisor(flaky, max_restarts=3)
            return await supervisor.run(), supervisor

        result, supervisor = asyncio.run(scenario())
        assert result == "recovered"
        assert supervisor.restarts == 2
        assert [event.attempt for event in supervisor.events] == [1, 2]
        assert "boom 0" in supervisor.events[0].error

    def test_gives_up_and_reraises_terminal_failure(self):
        async def scenario():
            async def doomed(attempt: int):
                raise ValueError(f"fatal {attempt}")

            supervisor = Supervisor(doomed, max_restarts=1)
            with pytest.raises(ValueError, match="fatal 1"):
                await supervisor.run()
            return supervisor

        supervisor = asyncio.run(scenario())
        assert supervisor.restarts == 1

    def test_restarts_on_crash_point(self):
        async def scenario():
            async def dying(attempt: int):
                if attempt == 0:
                    raise CrashPoint("simulated kill -9")
                return attempt

            supervisor = Supervisor(dying, max_restarts=1)
            return await supervisor.run()

        assert asyncio.run(scenario()) == 1

    def test_cancellation_propagates(self):
        async def scenario():
            started = asyncio.Event()

            async def hang(attempt: int):
                started.set()
                await asyncio.sleep(60)

            supervisor = Supervisor(hang, max_restarts=5)
            task = asyncio.ensure_future(supervisor.run())
            await started.wait()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert supervisor.restarts == 0

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
class TestCheckpoints:
    def filled_buffer(self, n_rows=10, seed=0):
        rng = np.random.default_rng(seed)
        buffer = StreamBuffer(N_LEFT, N_RIGHT)
        buffer.append(
            rng.random((n_rows, N_LEFT)) < 0.4,
            rng.random((n_rows, N_RIGHT)) < 0.4,
        )
        return buffer

    def test_roundtrip_restores_window_and_counters(self, tmp_path):
        buffer = self.filled_buffer()
        buffer.evict(2)
        checkpoint = WindowCheckpoint.capture(
            buffer, "live", rows_seen=10, rows_since_check=3, published_version=4
        )
        path = save_checkpoint(tmp_path / "live.ckpt.npz", checkpoint)
        loaded = load_checkpoint(path)
        assert loaded is not None
        assert (loaded.model_name, loaded.rows_seen) == ("live", 10)
        assert (loaded.rows_since_check, loaded.published_version) == (3, 4)
        restored = StreamBuffer(N_LEFT, N_RIGHT)
        loaded.restore_into(restored)
        original = buffer.window_dataset()
        window = restored.window_dataset()
        assert np.array_equal(window.left, original.left)
        assert np.array_equal(window.right, original.right)
        assert restored.appended_total == 10
        assert restored.evicted_total == 2

    def test_capture_is_a_copy(self, tmp_path):
        buffer = self.filled_buffer()
        checkpoint = WindowCheckpoint.capture(buffer, "live", rows_seen=10)
        before = checkpoint.left.copy()
        buffer.append(
            np.ones((1, N_LEFT), dtype=bool), np.ones((1, N_RIGHT), dtype=bool)
        )
        assert np.array_equal(checkpoint.left, before)

    def test_missing_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.npz") is None

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_torn_tail_raises(self, tmp_path):
        buffer = self.filled_buffer()
        path = save_checkpoint(
            tmp_path / "live.ckpt.npz",
            WindowCheckpoint.capture(buffer, "live", rows_seen=10),
        )
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 24])  # torn write: lost tail
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_restore_refuses_nonempty_buffer_and_wrong_vocab(self, tmp_path):
        checkpoint = WindowCheckpoint.capture(
            self.filled_buffer(), "live", rows_seen=10
        )
        with pytest.raises(ValueError, match="empty buffer"):
            checkpoint.restore_into(self.filled_buffer(seed=1))
        with pytest.raises(CheckpointError, match="vocabularies"):
            checkpoint.restore_into(StreamBuffer(N_LEFT + 1, N_RIGHT))

    def test_crash_during_save_preserves_previous_checkpoint(self, tmp_path):
        path = tmp_path / "live.ckpt.npz"
        save_checkpoint(
            path, WindowCheckpoint.capture(self.filled_buffer(), "live", rows_seen=10)
        )
        injector = FaultInjector().plan("checkpoint.replace", kind="crash")
        with injector.active():
            with pytest.raises(CrashPoint):
                save_checkpoint(
                    path,
                    WindowCheckpoint.capture(
                        self.filled_buffer(seed=1), "live", rows_seen=20
                    ),
                )
        survivor = load_checkpoint(path)
        assert survivor is not None and survivor.rows_seen == 10


# ----------------------------------------------------------------------
# Registry chaos
# ----------------------------------------------------------------------
class TestRegistryChaos:
    def test_torn_artifact_write_is_quarantined_and_latest_heals(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(tiny_artifact(seed=1))
        injector = FaultInjector().plan(
            "registry.artifact.bytes", kind="truncate", nth=1
        )
        with injector.active():
            registry.publish(tiny_artifact(seed=2))  # v2's bytes are torn
        assert injector.fired
        with pytest.raises(ArtifactError):
            registry.load("live")  # latest -> v2 -> corrupt -> quarantine
        assert registry.versions("live") == [1]
        assert registry.latest_version("live") == 1, "LATEST healed to survivor"
        assert len(registry.quarantined("live")) == 1
        assert registry.load("live").version == 1, "the torn model never serves"

    def test_crash_between_artifact_and_latest_keeps_old_pointer(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(tiny_artifact(seed=1))
        injector = FaultInjector().plan("registry.publish.before_latest", kind="crash")
        with injector.active():
            with pytest.raises(CrashPoint):
                registry.publish(tiny_artifact(seed=2))
        # v2 was fully (and durably) written, but readers keep getting v1
        # until someone repoints LATEST — the intended failure mode.
        assert registry.versions("live") == [1, 2]
        assert registry.latest_version("live") == 1
        assert registry.load("live").version == 1
        assert registry.load("live", 2).version == 2  # intact, just unlinked

    def test_corrupt_latest_bytes_never_reach_disk_silently(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(tiny_artifact(seed=1))
        registry.publish(tiny_artifact(seed=2))
        injector = FaultInjector().plan("registry.latest.bytes", kind="corrupt")
        with injector.active():
            registry.set_latest("live", 1)
        # The pointer's bytes were flipped in flight; the bounded-retry
        # reader rejects garbage instead of serving a wrong version.
        with pytest.raises((ArtifactError, KeyError)):
            registry.latest_version("live")


# ----------------------------------------------------------------------
# Service degradation
# ----------------------------------------------------------------------
REQUEST = {"model": "live", "target": "R", "rows": [[0, 1]]}


class TestServiceDegradation:
    def make_service(self, registry, **kwargs):
        kwargs.setdefault("max_delay_ms", 0.0)
        kwargs.setdefault("latest_ttl_seconds", 0.0)
        return PredictionService(registry, **kwargs)

    def test_last_good_serves_through_corrupt_latest(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(tiny_artifact(seed=1))
        service = self.make_service(registry)

        async def scenario():
            first = await service.predict(dict(REQUEST))
            assert first["version"] == 1 and "stale" not in first
            assert service.readyz_payload()["status"] == "ready"

            registry.publish(tiny_artifact(seed=2))
            path = registry.artifact_path("live", 2)
            path.write_text(path.read_text()[:-40])  # torn on disk

            degraded = await service.predict(dict(REQUEST))
            assert degraded["version"] == 1, "answered from last-good v1"
            assert degraded["stale"] is True
            ready = service.readyz_payload()
            assert ready["status"] == "degraded"
            assert ready["degraded_models"] == ["live"]
            assert ready["stale_responses"] == {"live": 1}
            assert registry.quarantined("live"), "corrupt v2 was quarantined"

            registry.publish(tiny_artifact(seed=3))  # healthy again
            recovered = await service.predict(dict(REQUEST))
            assert recovered["version"] == 2 and "stale" not in recovered
            assert service.readyz_payload()["status"] == "ready"

        asyncio.run(scenario())

    def test_breaker_turns_repeated_failures_into_503(self, tmp_path, monkeypatch):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(tiny_artifact(seed=1))
        service = self.make_service(
            registry,
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=1, reset_timeout=60.0
            ),
        )
        monkeypatch.setattr(
            registry,
            "load",
            lambda *a, **k: (_ for _ in ()).throw(ArtifactError("disk on fire")),
        )
        body = json.dumps({**REQUEST, "version": 1}).encode()

        async def scenario():
            first_status, _ = await service.handle("POST", "/predict", body)
            second_status, payload = await service.handle("POST", "/predict", body)
            return first_status, second_status, payload

        first_status, second_status, payload = asyncio.run(scenario())
        assert first_status == 500, "first failure is an honest server error"
        assert second_status == 503, "open breaker refuses without a disk read"
        assert "circuit" in payload["error"]
        assert service.readyz_payload()["breakers"]["live"] == "open"

    def test_cached_artifacts_survive_registry_loss(self, tmp_path, monkeypatch):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(tiny_artifact(seed=1))
        service = self.make_service(registry, cache_size=0)

        async def scenario():
            await service.predict(dict(REQUEST))  # loads + memoises v1
            monkeypatch.setattr(
                registry,
                "load",
                lambda *a, **k: (_ for _ in ()).throw(ArtifactError("gone")),
            )
            response = await service.predict({**REQUEST, "version": 1})
            assert response["version"] == 1

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Server: drain, slow-loris, readiness
# ----------------------------------------------------------------------
async def http_call(port: int, raw: bytes) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    response = await reader.read()
    writer.close()
    head, __, body = response.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(body)


def predict_request() -> bytes:
    body = json.dumps(REQUEST).encode()
    return (
        b"POST /predict HTTP/1.1\r\nContent-Length: "
        + str(len(body)).encode()
        + b"\r\n\r\n"
        + body
    )


class TestServerChaos:
    def test_drain_completes_all_inflight_requests(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(tiny_artifact(seed=1))
        n_clients = 64

        async def scenario():
            service = PredictionService(registry, max_delay_ms=0.0, cache_size=0)
            inner_predict = service.predict

            async def slow_predict(request):
                await asyncio.sleep(0.05)  # keep requests in flight
                return await inner_predict(request)

            service.predict = slow_predict
            server = PredictionServer(service, port=0)
            await server.start()
            clients = [
                asyncio.ensure_future(http_call(server.port, predict_request()))
                for _ in range(n_clients)
            ]
            deadline = Deadline(2.0)
            while server.inflight < n_clients:
                deadline.check("waiting for all requests to be in flight")
                await asyncio.sleep(0.002)
            summary = await server.stop(drain_timeout=5.0)
            responses = await asyncio.gather(*clients)
            # The listener is closed: a late client cannot even connect.
            with pytest.raises(OSError):
                await http_call(server.port, predict_request())
            return summary, responses

        summary, responses = asyncio.run(scenario())
        assert summary["inflight_at_stop"] == n_clients
        assert summary["cancelled"] == 0, "drain must never reset a request"
        assert summary["completed"] == n_clients
        statuses = [status for status, _ in responses]
        assert statuses == [200] * n_clients
        assert all(payload["model"] == "live" for _, payload in responses)

    def test_slow_loris_gets_408_not_a_pinned_task(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(tiny_artifact(seed=1))

        async def scenario():
            service = PredictionService(registry, max_delay_ms=0.0)
            server = PredictionServer(service, port=0, read_timeout=0.05)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # A request line with no terminator: the client stalls.
                writer.write(b"POST /predict HTTP/1.1\r\nContent-Le")
                await writer.drain()
                response = await asyncio.wait_for(reader.read(), timeout=2.0)
                writer.close()
                head, __, body = response.partition(b"\r\n\r\n")
                return int(head.split()[1]), json.loads(body)
            finally:
                await server.stop(drain_timeout=0.1)

        status, payload = asyncio.run(scenario())
        assert status == 408
        assert "not received" in payload["error"]

    def test_readyz_transitions(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(tiny_artifact(seed=1))

        async def scenario():
            service = PredictionService(registry, max_delay_ms=0.0)
            server = PredictionServer(service, port=0)
            await server.start()
            live = await http_call(server.port, b"GET /readyz HTTP/1.1\r\n\r\n")
            await server.stop(drain_timeout=0.1)
            drained = await service.handle("GET", "/readyz")
            return live, drained

        live, drained = asyncio.run(scenario())
        assert live[0] == 200 and live[1]["status"] == "ready"
        assert drained[0] == 503 and drained[1]["status"] == "draining"


# ----------------------------------------------------------------------
# Crash-and-resume bit-identity
# ----------------------------------------------------------------------
def make_loop(rows_path, registry, checkpoint_dir=None) -> MaintenanceLoop:
    return MaintenanceLoop(
        JsonlSource(rows_path),
        StreamBuffer(N_LEFT, N_RIGHT),
        registry,
        "live",
        TranslatorExact(max_rule_size=2),
        policy=RefitPolicy(
            window=64, check_every=32, min_rows=16, always_publish=True
        ),
        checkpoint_dir=checkpoint_dir,
    )


class TestCrashResume:
    def published_payloads(self, registry) -> list[dict]:
        return [
            registry.load("live", version).table.to_payload()
            for version in registry.versions("live")
        ]

    def test_resumed_run_publishes_bit_identical_models(self, tmp_path):
        rows_path = tmp_path / "rows.jsonl"
        write_rows(rows_path, 120, seed=3)

        # Reference: one uncrashed run.
        clean_registry = ModelRegistry(tmp_path / "clean")
        asyncio.run(make_loop(rows_path, clean_registry).run())
        clean = self.published_payloads(clean_registry)
        assert len(clean) >= 3, "the stream must produce several versions"

        # Chaos: the process dies at row 80 (between the checkpoints at
        # rows 64 and 96); the supervisor restarts a fresh loop that
        # resumes from the row-64 checkpoint.
        chaos_registry = ModelRegistry(tmp_path / "chaos")
        checkpoint_dir = tmp_path / "ckpt"
        loops: list[MaintenanceLoop] = []

        def attempt(number: int):
            loop = make_loop(rows_path, chaos_registry, checkpoint_dir)
            loops.append(loop)
            return loop.run()

        supervisor = Supervisor(attempt, max_restarts=2)
        injector = FaultInjector().plan("maintenance.row", kind="crash", nth=80)

        async def scenario():
            with injector.active():
                await supervisor.run()

        asyncio.run(scenario())
        assert injector.fired == [("maintenance.row", "crash", 80)]
        assert supervisor.restarts == 1
        assert loops[-1].resumed_rows == 64, "resumed from the row-64 checkpoint"
        assert self.published_payloads(chaos_registry) == clean

    def test_unreadable_checkpoint_falls_back_to_fresh_start(self, tmp_path):
        rows_path = tmp_path / "rows.jsonl"
        write_rows(rows_path, 40, seed=5)
        checkpoint_dir = tmp_path / "ckpt"
        checkpoint_dir.mkdir()
        (checkpoint_dir / "live.ckpt.npz").write_bytes(b"garbage, not an npz")
        registry = ModelRegistry(tmp_path / "registry")
        loop = make_loop(rows_path, registry, checkpoint_dir)
        asyncio.run(loop.run())
        assert loop.checkpoint_recovery_error is not None
        assert loop.resumed_rows == 0
        assert loop.rows_seen == 40
        assert registry.versions("live"), "the run still publishes"
        # The bad checkpoint was overwritten by a good one at the next check.
        assert load_checkpoint(checkpoint_dir / "live.ckpt.npz") is not None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestResilienceCli:
    def test_stream_with_checkpoint_and_supervision(self, tmp_path, capsys):
        from repro.cli import main

        rows_path = tmp_path / "rows.jsonl"
        write_rows(rows_path, 40, seed=1)
        # A malformed line mid-stream: lenient ingestion skips + counts it.
        lines = rows_path.read_text().splitlines()
        lines.insert(10, "{broken json")
        rows_path.write_text("\n".join(lines) + "\n")

        checkpoint_dir = tmp_path / "ckpt"
        assert main([
            "stream", str(rows_path),
            "--registry", str(tmp_path / "registry"),
            "--name", "live", "--n-left", str(N_LEFT), "--n-right", str(N_RIGHT),
            "--window", "32", "--check-every", "16", "--min-rows", "8",
            "--max-rule-size", "2", "--always-publish",
            "--checkpoint-dir", str(checkpoint_dir), "--max-restarts", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 malformed source line(s) skipped" in out
        assert load_checkpoint(checkpoint_dir / "live.ckpt.npz") is not None

    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--registry", "r",
            "--read-timeout", "2.5", "--drain-timeout", "0.5",
        ])
        assert args.read_timeout == 2.5
        assert args.drain_timeout == 0.5
