"""Mixed-type registry datasets: determinism, checksums, schema flow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.mixed import (
    MIXED_CHECKSUMS,
    MIXED_DATASETS,
    abalone_frames,
    frame_checksum,
    make_mixed_dataset,
    winequality_frames,
)
from repro.data.registry import dataset_names, make_dataset

pytestmark = pytest.mark.multiview_smoke


class TestFrames:
    def test_checksums_are_pinned(self):
        assert frame_checksum(*abalone_frames()) == MIXED_CHECKSUMS["abalone-mixed"]
        assert (
            frame_checksum(*winequality_frames())
            == MIXED_CHECKSUMS["winequality-mixed"]
        )

    def test_generation_is_deterministic(self):
        first = abalone_frames(n_rows=100)
        second = abalone_frames(n_rows=100)
        assert frame_checksum(*first) == frame_checksum(*second)

    def test_published_shapes(self):
        left, right = abalone_frames()
        assert len(left["length"]) == 4177
        assert set(right) == {"rings", "maturity"}
        left, right = winequality_frames()
        assert len(left["alcohol"]) == 1599
        assert set(right) == {"quality", "style"}

    def test_cross_view_correlations_present(self):
        left, right = abalone_frames()
        shell = np.asarray(left["shell_weight"], dtype=float)
        rings = np.asarray(right["rings"], dtype=float)
        assert np.corrcoef(shell, rings)[0, 1] > 0.4
        left, right = winequality_frames()
        alcohol = np.asarray(left["alcohol"], dtype=float)
        quality = np.asarray(right["quality"], dtype=float)
        assert np.corrcoef(alcohol, quality)[0, 1] > 0.3


class TestLoader:
    def test_registry_lists_mixed_names(self):
        names = dataset_names()
        for name in MIXED_DATASETS:
            assert name in names

    def test_make_dataset_routes_to_mixed(self):
        dataset = make_dataset("abalone-mixed", scale=0.1)
        assert dataset.name == "abalone-mixed"
        assert dataset.left_schema is not None
        assert dataset.right_schema is not None

    def test_checksum_drift_detected(self, monkeypatch):
        monkeypatch.setitem(MIXED_CHECKSUMS, "abalone-mixed", "0" * 64)
        with pytest.raises(ValueError, match="drift"):
            make_mixed_dataset("abalone-mixed")

    def test_scaled_builds_skip_checksum(self):
        dataset = make_mixed_dataset("winequality-mixed", scale=0.05)
        assert 40 <= dataset.n_transactions < 1599

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown mixed dataset"):
            make_mixed_dataset("iris-mixed")

    def test_discretize_methods_change_item_count(self):
        mdl = make_mixed_dataset("winequality-mixed", discretize="mdl", scale=0.2)
        eqh = make_mixed_dataset(
            "winequality-mixed", discretize="equal-height", scale=0.2
        )
        assert mdl.n_transactions == eqh.n_transactions
        # MDL merges uninformative bins, equal-height always emits ~n_bins.
        assert mdl.n_left != eqh.n_left or mdl.n_right != eqh.n_right

    def test_units_render_in_labels(self):
        from repro.data.dataset import Side

        dataset = make_mixed_dataset("abalone-mixed", scale=0.1)
        labels = [
            dataset.item_label(Side.LEFT, index) for index in range(dataset.n_left)
        ]
        assert any("mm" in label for label in labels)
        assert any(label.startswith("sex = ") for label in labels)
