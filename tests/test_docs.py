"""Documentation smoke tests (``pytest -m docs_smoke``).

Tier-1 wiring for :mod:`scripts.check_docs`: the README's python code
blocks must execute, every public symbol must carry a docstring, and
the docs tree's internal links must resolve.  These run in the default
suite (markers select, they do not exclude), so documentation breakage
fails CI like any other regression.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_docs  # noqa: E402

pytestmark = pytest.mark.docs_smoke


def test_every_public_symbol_has_a_docstring():
    assert check_docs.missing_docstrings() == []


def test_documentation_links_resolve():
    assert check_docs.broken_doc_links() == []


def test_docs_pages_exist():
    for page in ("index.md", "architecture.md", "paper-mapping.md",
                 "benchmarks.md", "runtime.md", "serving.md"):
        assert (REPO_ROOT / "docs" / page).is_file(), f"docs/{page} missing"
    assert (REPO_ROOT / "README.md").is_file()


def test_readme_mentions_the_knobs():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for needle in ("n_jobs", "kernel", "docs/architecture.md",
                   "repro-translator sweep", "repro-translator serve",
                   "docs/serving.md"):
        assert needle in readme, f"README should mention {needle!r}"


def test_readme_code_blocks_execute():
    count = check_docs.run_markdown_blocks(REPO_ROOT / "README.md")
    assert count >= 5  # quickstart, noise, n_jobs, sweep, serving
