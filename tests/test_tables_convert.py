"""Focused tests for report formatting and baseline conversion glue."""

from __future__ import annotations

import pytest

from repro.baselines.convert import krimp_to_translation_table, rules_to_translation_table
from repro.core.rules import Direction, TranslationRule
from repro.eval.tables import format_table


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"
        assert format_table([], title="T") == "T"

    def test_header_and_separator(self):
        text = format_table([{"a": 1, "bb": 2}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) == {"-"}
        assert lines[2].split() == ["1", "2"]

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2, "c": 3}], columns=["c", "a"])
        assert text.splitlines()[0].split() == ["c", "a"]
        assert "b" not in text.splitlines()[0]

    def test_missing_values_render_empty(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        last = text.splitlines()[-1]
        assert last.strip() == "3"

    def test_float_digits(self):
        text = format_table([{"x": 1.23456}], float_digits=3)
        assert "1.235" in text

    def test_bool_not_formatted_as_float(self):
        text = format_table([{"flag": True}])
        assert "True" in text

    def test_alignment(self):
        text = format_table([{"name": "a", "v": 1}, {"name": "longer", "v": 22}])
        lines = text.splitlines()
        assert len(lines[2]) <= len(lines[0]) + 2
        # All data lines start their second column at the same offset.
        offset_row1 = lines[2].index("1")
        offset_row2 = lines[3].index("22")
        assert offset_row1 == offset_row2

    def test_title_line_first(self):
        text = format_table([{"a": 1}], title="My table")
        assert text.splitlines()[0] == "My table"


class _RuleLike:
    def __init__(self, rule: TranslationRule) -> None:
        self._rule = rule

    def to_translation_rule(self) -> TranslationRule:
        return self._rule


class TestRulesToTranslationTable:
    def test_accepts_plain_rules(self):
        rule = TranslationRule((0,), (1,), Direction.FORWARD)
        table = rules_to_translation_table([rule])
        assert list(table) == [rule]

    def test_accepts_rule_like_objects(self):
        rule = TranslationRule((0,), (1,), Direction.BOTH)
        table = rules_to_translation_table([_RuleLike(rule)])
        assert list(table) == [rule]

    def test_duplicates_dropped(self):
        rule = TranslationRule((0,), (1,), Direction.FORWARD)
        table = rules_to_translation_table([rule, rule, _RuleLike(rule)])
        assert len(table) == 1

    def test_rejects_unconvertible(self):
        with pytest.raises(TypeError, match="cannot convert"):
            rules_to_translation_table([object()])


class TestKrimpConversion:
    class _FakeKrimpResult:
        def __init__(self, itemsets):
            self._itemsets = itemsets

        def itemsets(self):
            return self._itemsets

    def test_spanning_itemsets_become_bidirectional_rules(self):
        result = self._FakeKrimpResult([(0, 3), (1, 2, 4)])
        table, dropped = krimp_to_translation_table(result, n_left=3)
        assert dropped == 0
        rules = list(table)
        assert rules[0] == TranslationRule((0,), (0,), Direction.BOTH)
        assert rules[1] == TranslationRule((1, 2), (1,), Direction.BOTH)

    def test_single_view_itemsets_dropped_and_counted(self):
        result = self._FakeKrimpResult([(0, 1), (3, 4), (0, 3)])
        table, dropped = krimp_to_translation_table(result, n_left=3)
        assert dropped == 2
        assert len(table) == 1

    def test_duplicate_spanning_itemsets_merged(self):
        result = self._FakeKrimpResult([(0, 3), (0, 3)])
        table, dropped = krimp_to_translation_table(result, n_left=3)
        assert len(table) == 1
        assert dropped == 0
