"""Unit tests for the multi-view extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.multiview.dataset import MultiViewDataset
from repro.multiview.translator import MultiViewTranslator


@pytest.fixture
def three_view_dataset() -> MultiViewDataset:
    """Three views where (0,1) share planted structure and view 2 is noise."""
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=250, n_left=8, n_right=8,
            density_left=0.12, density_right=0.12,
            n_rules=3, confidence=(0.95, 1.0), activation=(0.2, 0.3), seed=17,
        )
    )
    rng = np.random.default_rng(18)
    noise = rng.random((250, 6)) < 0.15
    return MultiViewDataset(
        [dataset.left, dataset.right, noise],
        view_names=["audio", "emotions", "noise"],
        name="three",
    )


class TestDataset:
    def test_construction(self, three_view_dataset):
        assert three_view_dataset.n_views == 3
        assert three_view_dataset.n_transactions == 250

    def test_rejects_single_view(self):
        with pytest.raises(ValueError, match="at least two"):
            MultiViewDataset([np.zeros((2, 2), bool)])

    def test_rejects_row_mismatch(self):
        with pytest.raises(ValueError, match="same number"):
            MultiViewDataset([np.zeros((2, 2), bool), np.zeros((3, 2), bool)])

    def test_rejects_non_boolean(self):
        with pytest.raises(ValueError, match="Boolean"):
            MultiViewDataset([np.full((2, 2), 2), np.zeros((2, 2), bool)])

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError, match="view_names"):
            MultiViewDataset(
                [np.zeros((2, 2), bool), np.zeros((2, 2), bool)],
                view_names=["only-one"],
            )

    def test_view_pairs(self, three_view_dataset):
        assert three_view_dataset.view_pairs() == [(0, 1), (0, 2), (1, 2)]

    def test_pair_projection(self, three_view_dataset):
        pair = three_view_dataset.pair(0, 1)
        assert pair.n_transactions == 250
        np.testing.assert_array_equal(pair.left, three_view_dataset.views[0])
        assert "audio" in pair.name and "emotions" in pair.name

    def test_pair_validation(self, three_view_dataset):
        with pytest.raises(ValueError, match="distinct"):
            three_view_dataset.pair(1, 1)
        with pytest.raises(IndexError):
            three_view_dataset.pair(0, 9)

    def test_default_item_names(self, three_view_dataset):
        assert three_view_dataset.item_names[2][0] == "noise:0"

    def test_repr(self, three_view_dataset):
        assert "views=" in repr(three_view_dataset)


class TestTranslator:
    def test_fits_all_pairs(self, three_view_dataset):
        result = MultiViewTranslator(k=1, minsup=3).fit(three_view_dataset)
        assert set(result.pair_results) == {(0, 1), (0, 2), (1, 2)}
        assert result.runtime_seconds > 0

    def test_structured_pair_compresses_best(self, three_view_dataset):
        result = MultiViewTranslator(k=1, minsup=3).fit(three_view_dataset)
        structured = result.pair_results[(0, 1)].compression_ratio
        noise_pairs = [
            result.pair_results[(0, 2)].compression_ratio,
            result.pair_results[(1, 2)].compression_ratio,
        ]
        # Planted structure lives between views 0 and 1 only.
        assert structured < min(noise_pairs)

    def test_aggregate_statistics(self, three_view_dataset):
        result = MultiViewTranslator(k=1, minsup=3).fit(three_view_dataset)
        assert result.n_rules == sum(
            pair.n_rules for pair in result.pair_results.values()
        )
        assert 0 < result.compression_ratio <= 1.0
        summary = result.summary()
        assert summary["n_pairs"] == 3
        assert (0, 1) in summary["per_pair"]

    def test_reduces_to_two_view_case(self):
        dataset, __ = generate_planted(
            SyntheticSpec(n_transactions=150, n_left=6, n_right=6, n_rules=2, seed=19)
        )
        multi = MultiViewDataset([dataset.left, dataset.right])
        result = MultiViewTranslator(k=1, minsup=2).fit(multi)
        from repro.core.translator import TranslatorSelect

        two_view = TranslatorSelect(k=1, minsup=2).fit(multi.pair(0, 1))
        pair_result = result.pair_results[(0, 1)]
        assert pair_result.n_rules == two_view.n_rules
        assert pair_result.compression_ratio == pytest.approx(
            two_view.compression_ratio
        )
