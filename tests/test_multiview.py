"""Unit tests for the multi-view extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.multiview.dataset import MultiViewDataset
from repro.multiview.translator import MultiViewTranslator


@pytest.fixture
def three_view_dataset() -> MultiViewDataset:
    """Three views where (0,1) share planted structure and view 2 is noise."""
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=250, n_left=8, n_right=8,
            density_left=0.12, density_right=0.12,
            n_rules=3, confidence=(0.95, 1.0), activation=(0.2, 0.3), seed=17,
        )
    )
    rng = np.random.default_rng(18)
    noise = rng.random((250, 6)) < 0.15
    return MultiViewDataset(
        [dataset.left, dataset.right, noise],
        view_names=["audio", "emotions", "noise"],
        name="three",
    )


class TestDataset:
    def test_construction(self, three_view_dataset):
        assert three_view_dataset.n_views == 3
        assert three_view_dataset.n_transactions == 250

    def test_rejects_single_view(self):
        with pytest.raises(ValueError, match="at least two"):
            MultiViewDataset([np.zeros((2, 2), bool)])

    def test_rejects_row_mismatch(self):
        with pytest.raises(ValueError, match="same number"):
            MultiViewDataset([np.zeros((2, 2), bool), np.zeros((3, 2), bool)])

    def test_rejects_non_boolean(self):
        with pytest.raises(ValueError, match="Boolean"):
            MultiViewDataset([np.full((2, 2), 2), np.zeros((2, 2), bool)])

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError, match="view_names"):
            MultiViewDataset(
                [np.zeros((2, 2), bool), np.zeros((2, 2), bool)],
                view_names=["only-one"],
            )

    def test_view_pairs(self, three_view_dataset):
        assert three_view_dataset.view_pairs() == [(0, 1), (0, 2), (1, 2)]

    def test_pair_projection(self, three_view_dataset):
        pair = three_view_dataset.pair(0, 1)
        assert pair.n_transactions == 250
        np.testing.assert_array_equal(pair.left, three_view_dataset.views[0])
        assert "audio" in pair.name and "emotions" in pair.name

    def test_pair_validation(self, three_view_dataset):
        with pytest.raises(ValueError, match="distinct"):
            three_view_dataset.pair(1, 1)
        with pytest.raises(IndexError):
            three_view_dataset.pair(0, 9)

    def test_default_item_names(self, three_view_dataset):
        assert three_view_dataset.item_names[2][0] == "noise:0"

    def test_repr(self, three_view_dataset):
        assert "views=" in repr(three_view_dataset)


class TestTranslator:
    def test_fits_all_pairs(self, three_view_dataset):
        result = MultiViewTranslator(k=1, minsup=3).fit(three_view_dataset)
        assert set(result.pair_results) == {(0, 1), (0, 2), (1, 2)}
        assert result.runtime_seconds > 0

    def test_structured_pair_compresses_best(self, three_view_dataset):
        result = MultiViewTranslator(k=1, minsup=3).fit(three_view_dataset)
        structured = result.pair_results[(0, 1)].compression_ratio
        noise_pairs = [
            result.pair_results[(0, 2)].compression_ratio,
            result.pair_results[(1, 2)].compression_ratio,
        ]
        # Planted structure lives between views 0 and 1 only.
        assert structured < min(noise_pairs)

    def test_aggregate_statistics(self, three_view_dataset):
        result = MultiViewTranslator(k=1, minsup=3).fit(three_view_dataset)
        assert result.n_rules == sum(
            pair.n_rules for pair in result.pair_results.values()
        )
        assert 0 < result.compression_ratio <= 1.0
        summary = result.summary()
        assert summary["n_pairs"] == 3
        assert (0, 1) in summary["per_pair"]

    def test_reduces_to_two_view_case(self):
        dataset, __ = generate_planted(
            SyntheticSpec(n_transactions=150, n_left=6, n_right=6, n_rules=2, seed=19)
        )
        multi = MultiViewDataset([dataset.left, dataset.right])
        result = MultiViewTranslator(k=1, minsup=2).fit(multi)
        from repro.core.translator import TranslatorSelect

        two_view = TranslatorSelect(k=1, minsup=2).fit(multi.pair(0, 1))
        pair_result = result.pair_results[(0, 1)]
        assert pair_result.n_rules == two_view.n_rules
        assert pair_result.compression_ratio == pytest.approx(
            two_view.compression_ratio
        )


@pytest.mark.multiview_smoke
class TestSharedBitsets:
    """The shared per-view packing must be bit-identical to per-pair fits."""

    def test_select_matches_fresh_per_pair_fits(self, three_view_dataset):
        from repro.core.translator import TranslatorSelect

        shared = MultiViewTranslator(k=1, minsup=3).fit(three_view_dataset)
        for pair in three_view_dataset.view_pairs():
            fresh = TranslatorSelect(k=1, minsup=3).fit(
                three_view_dataset.pair(*pair)
            )
            result = shared.pair_results[pair]
            assert set(result.table) == set(fresh.table)
            assert result.total_bits == fresh.total_bits

    def test_exact_matches_fresh_per_pair_fits(self, three_view_dataset):
        from repro.core.translator import TranslatorExact

        shared = MultiViewTranslator(method="exact", max_rule_size=2).fit(
            three_view_dataset
        )
        for pair in three_view_dataset.view_pairs():
            fresh = TranslatorExact(max_rule_size=2).fit(
                three_view_dataset.pair(*pair)
            )
            result = shared.pair_results[pair]
            assert set(result.table) == set(fresh.table)
            assert result.total_bits == fresh.total_bits

    def test_bool_kernel_matches_bitset_kernel(self, three_view_dataset):
        packed = MultiViewTranslator(k=1, minsup=3, kernel="bitset").fit(
            three_view_dataset
        )
        reference = MultiViewTranslator(k=1, minsup=3, kernel="bool").fit(
            three_view_dataset
        )
        for pair in three_view_dataset.view_pairs():
            assert set(packed.pair_results[pair].table) == set(
                reference.pair_results[pair].table
            )

    def test_joint_bits_equals_fresh_joint_pack(self, three_view_dataset):
        from repro.core.bitset import BitMatrix
        from repro.mining.twoview import joint_bits

        pair = three_view_dataset.pair(0, 1)
        joint, __ = pair.joined()
        left_bits = BitMatrix.from_bool_columns(three_view_dataset.views[0])
        right_bits = BitMatrix.from_bool_columns(three_view_dataset.views[1])
        stitched = joint_bits(left_bits, right_bits)
        fresh = BitMatrix.from_bool_columns(joint)
        np.testing.assert_array_equal(stitched.words, fresh.words)
        assert stitched.n_bits == fresh.n_bits

    def test_joint_bits_rejects_row_mismatch(self):
        from repro.core.bitset import BitMatrix
        from repro.mining.twoview import joint_bits

        with pytest.raises(ValueError, match="transaction counts"):
            joint_bits(
                BitMatrix.from_bool_columns(np.zeros((8, 2), bool)),
                BitMatrix.from_bool_columns(np.zeros((9, 2), bool)),
            )


@pytest.mark.multiview_smoke
class TestConditionalTranslation:
    def test_residual_rows_shrink_in_pair_order(self, three_view_dataset):
        result = MultiViewTranslator(k=1, minsup=3, conditional=True).fit(
            three_view_dataset
        )
        assert result.conditional
        rows = [result.pair_rows[pair] for pair in three_view_dataset.view_pairs()]
        assert rows[0] == three_view_dataset.n_transactions
        assert all(later <= rows[0] for later in rows[1:])
        # The structured pair (0, 1) fires rules, so later pairs see fewer rows.
        assert rows[1] < rows[0]

    def test_first_pair_matches_unconditional_fit(self, three_view_dataset):
        conditional = MultiViewTranslator(k=1, minsup=3, conditional=True).fit(
            three_view_dataset
        )
        unconditional = MultiViewTranslator(k=1, minsup=3).fit(three_view_dataset)
        assert set(conditional.pair_results[(0, 1)].table) == set(
            unconditional.pair_results[(0, 1)].table
        )

    def test_summary_reports_mode_and_rows(self, three_view_dataset):
        result = MultiViewTranslator(k=1, minsup=3, conditional=True).fit(
            three_view_dataset
        )
        summary = result.summary()
        assert summary["conditional"] is True
        assert all("rows" in cells for cells in summary["per_pair"].values())


@pytest.mark.multiview_smoke
class TestPayloadAndSchemas:
    def test_payload_roundtrip(self, three_view_dataset):
        payload = three_view_dataset.to_payload()
        rebuilt = MultiViewDataset.from_payload(payload)
        assert rebuilt.n_views == three_view_dataset.n_views
        assert rebuilt.view_names == three_view_dataset.view_names
        for mine, theirs in zip(three_view_dataset.views, rebuilt.views):
            np.testing.assert_array_equal(mine, theirs)

    def test_schemas_flow_into_pairs(self):
        from repro.data.preprocessing import frame_to_multi_view

        rng = np.random.default_rng(23)
        frame = {
            "a": rng.normal(0, 1, 80),
            "b": rng.normal(4, 2, 80),
            "c": rng.choice(["p", "q"], 80),
            "d": rng.normal(-2, 1, 80),
        }
        dataset = frame_to_multi_view(frame, n_views=3, rng=3)
        pair = dataset.pair(0, 1)
        assert pair.left_schema is not None and pair.right_schema is not None
        payload = dataset.to_payload()
        rebuilt = MultiViewDataset.from_payload(payload)
        for original, restored in zip(dataset.schemas, rebuilt.schemas):
            assert restored is not None
            assert original.to_payload() == restored.to_payload()
