"""Unit tests for translation tables."""

from __future__ import annotations

import pytest

from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable


@pytest.fixture
def rules() -> list[TranslationRule]:
    return [
        TranslationRule((0, 1), (3,), Direction.BOTH),
        TranslationRule((2,), (1, 2), Direction.FORWARD),
        TranslationRule((3,), (0,), Direction.BACKWARD),
    ]


class TestContainer:
    def test_add_and_iterate(self, rules):
        table = TranslationTable(rules)
        assert len(table) == 3
        assert list(table) == rules
        assert table[1] == rules[1]

    def test_contains(self, rules):
        table = TranslationTable(rules[:2])
        assert rules[0] in table
        assert rules[2] not in table

    def test_rejects_duplicates(self, rules):
        table = TranslationTable(rules)
        with pytest.raises(ValueError, match="duplicate"):
            table.add(rules[0])

    def test_rejects_non_rules(self):
        table = TranslationTable()
        with pytest.raises(TypeError, match="TranslationRule"):
            table.add("not a rule")

    def test_equality_ignores_order(self, rules):
        assert TranslationTable(rules) == TranslationTable(reversed(rules))
        assert TranslationTable(rules[:1]) != TranslationTable(rules)
        assert TranslationTable() != "something"


class TestStatistics:
    def test_directional_counts(self, rules):
        table = TranslationTable(rules)
        assert table.n_bidirectional == 1
        assert table.n_unidirectional == 2

    def test_average_length(self, rules):
        table = TranslationTable(rules)
        assert table.average_length == pytest.approx((3 + 3 + 2) / 3)

    def test_average_length_empty(self):
        assert TranslationTable().average_length == 0.0

    def test_items_used(self, rules):
        table = TranslationTable(rules)
        left, right = table.items_used()
        assert left == {0, 1, 2, 3}
        assert right == {0, 1, 2, 3}

    def test_rules_with_item(self, rules):
        table = TranslationTable(rules)
        assert table.rules_with_item(0, left=True) == [rules[0]]
        assert table.rules_with_item(0, left=False) == [rules[2]]


class TestRendering:
    def test_render_limit(self, rules):
        table = TranslationTable(rules)
        text = table.render(limit=2)
        assert "1 more rules" in text

    def test_repr(self, rules):
        assert "3 rules" in repr(TranslationTable(rules))

    def test_json_roundtrip(self, rules):
        table = TranslationTable(rules)
        assert TranslationTable.from_json(table.to_json()) == table

    def test_save_load(self, rules, tmp_path):
        table = TranslationTable(rules)
        path = tmp_path / "table.json"
        table.save(path)
        assert TranslationTable.load(path) == table


class TestSchemaVersion:
    def test_payload_carries_schema_version(self, rules):
        import json

        from repro.core.table import TABLE_SCHEMA_VERSION

        payload = json.loads(TranslationTable(rules).to_json())
        # Schema-less tables keep emitting the version-2 document so
        # pre-existing content hashes are unchanged; only tables that
        # carry view schemas use TABLE_SCHEMA_VERSION.
        assert payload["schema_version"] == 2
        assert payload["schema_version"] <= TABLE_SCHEMA_VERSION
        assert len(payload["rules"]) == len(rules)

    def test_payload_roundtrip(self, rules):
        table = TranslationTable(rules)
        assert TranslationTable.from_payload(table.to_payload()) == table

    def test_legacy_bare_list_still_loads(self, rules):
        import json

        table = TranslationTable(rules)
        legacy = json.dumps([rule.to_dict() for rule in table])  # v1 format
        assert TranslationTable.from_json(legacy) == table

    def test_future_schema_version_rejected(self, rules):
        import pytest

        from repro.core.table import TABLE_SCHEMA_VERSION

        payload = TranslationTable(rules).to_payload()
        payload["schema_version"] = TABLE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            TranslationTable.from_payload(payload)

    def test_garbage_payload_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="payload"):
            TranslationTable.from_payload("not a table")

    def test_missing_rules_list_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="rules"):
            TranslationTable.from_json('{"schema_version": 2}')
