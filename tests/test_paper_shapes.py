"""Fast, test-suite-level checks of the paper's headline claims.

The benchmark harness regenerates every table and figure at full
parameterisation; these tests assert the same *shapes* on small planted
data so regressions are caught by ``pytest tests/`` alone.
"""

from __future__ import annotations

import pytest

from repro.data.synthetic import SyntheticSpec, generate_planted, random_dataset
from repro.core.translator import TranslatorExact, TranslatorGreedy, TranslatorSelect
from repro.baselines.assoc import mine_crossview_rules
from repro.baselines.convert import rules_to_translation_table
from repro.baselines.krimp import Krimp
from repro.baselines.convert import krimp_to_translation_table
from repro.baselines.redescription import ReremiMiner
from repro.baselines.significant import SignificantRuleMiner
from repro.eval.metrics import rule_set_summary


@pytest.fixture(scope="module")
def structured():
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=300, n_left=10, n_right=10,
            density_left=0.12, density_right=0.12,
            n_rules=4, confidence=(0.9, 1.0), activation=(0.15, 0.3), seed=99,
        )
    )
    return dataset


class TestSection61Claims:
    """Section 6.1 — comparison of search strategies."""

    def test_fewer_rules_than_transactions(self, structured):
        """'in all cases, there are much fewer rules than transactions'."""
        for translator in (
            TranslatorSelect(k=1, minsup=3),
            TranslatorGreedy(minsup=3),
        ):
            result = translator.fit(structured)
            assert result.n_rules < structured.n_transactions / 2

    def test_greedy_fastest(self, structured):
        select = TranslatorSelect(k=1, minsup=3).fit(structured)
        greedy = TranslatorGreedy(minsup=3).fit(structured)
        assert greedy.runtime_seconds <= select.runtime_seconds

    def test_select_approximates_exact(self, structured):
        """'in practice it approximates the best possible compression
        ratio very well'."""
        exact = TranslatorExact(max_rule_size=5).fit(structured)
        select = TranslatorSelect(k=1, minsup=1).fit(structured)
        assert select.compression_ratio <= exact.compression_ratio + 0.05

    def test_no_structure_no_compression(self):
        """'if there is little or no structure connecting the two views,
        this will be reflected in the attained compression ratios'."""
        noise = random_dataset(300, 10, 10, 0.12, 0.12, seed=100)
        result = TranslatorSelect(k=1, minsup=3).fit(noise)
        assert result.compression_ratio > 0.92


class TestSection63Claims:
    """Section 6.3 — comparison with other approaches."""

    def test_association_rules_explode(self, structured):
        translator = TranslatorSelect(k=1, minsup=3).fit(structured)
        rules = mine_crossview_rules(structured, minsup=3, minconf=0.5, max_size=4)
        assert len(rules) > 5 * max(1, translator.n_rules)

    def test_translator_beats_significant_rules_on_compression(self, structured):
        translator = TranslatorSelect(k=1, minsup=3).fit(structured)
        significant = SignificantRuleMiner(minsup=3).mine(structured)
        summary = rule_set_summary(
            structured, rules_to_translation_table(significant), method="mo"
        )
        assert translator.compression_ratio <= float(summary["compression_ratio"]) + 0.02

    def test_redescriptions_all_bidirectional_and_incomplete(self, structured):
        translator = TranslatorSelect(k=1, minsup=3).fit(structured)
        miner = ReremiMiner(min_support=3)
        rules = miner.to_rules(miner.mine(structured))
        assert all(rule.direction.value == "<->" for rule in rules)
        summary = rule_set_summary(
            structured, rules_to_translation_table(rules), method="rm"
        )
        assert float(summary["compression_ratio"]) >= translator.compression_ratio - 0.02

    def test_krimp_as_table_compresses_badly(self, structured):
        translator = TranslatorSelect(k=1, minsup=3).fit(structured)
        joint, __ = structured.joined()
        krimp = Krimp(minsup=5, max_size=5, max_candidates=1_000).fit(joint)
        table, __ = krimp_to_translation_table(krimp, structured.n_left)
        summary = rule_set_summary(structured, table, method="krimp")
        assert float(summary["compression_ratio"]) > translator.compression_ratio

    def test_translator_mixes_directions(self, structured):
        """'having both bidirectional and unidirectional rules proves
        useful' — an asymmetric association yields a unidirectional rule,
        a symmetric one a bidirectional rule."""
        import numpy as np

        from repro.data.dataset import TwoViewDataset
        from repro.core.rules import Direction

        rng = np.random.default_rng(7)
        n = 400
        left = rng.random((n, 3)) < 0.15
        right = rng.random((n, 3)) < 0.1
        # Symmetric: right0 iff left0 (bidirectional expected).
        right[:, 0] = left[:, 0]
        # Asymmetric: left1 implies right1, but right1 is common on its
        # own (forward-only expected: the backward direction would
        # introduce many errors).
        right[:, 1] = left[:, 1] | (rng.random(n) < 0.4)
        dataset = TwoViewDataset(left, right)
        result = TranslatorExact().fit(dataset)
        directions = {
            (rule.lhs, rule.rhs): rule.direction for rule in result.table
        }
        assert directions.get(((0,), (0,))) is Direction.BOTH
        assert directions.get(((1,), (1,))) is Direction.FORWARD
