"""Coherence checks on the public API surface.

These tests keep the documentation honest: every name a package exports
in ``__all__`` must resolve, the top-level convenience re-exports must
stay in sync with the subpackages, and the CLI must expose every
documented subcommand.
"""

from __future__ import annotations

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.data",
    "repro.mining",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.multiview",
    "repro.runtime",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} must declare __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_has_no_duplicates(package_name):
    package = importlib.import_module(package_name)
    assert len(package.__all__) == len(set(package.__all__))


def test_top_level_reexports_core_entry_points():
    for name in (
        "TwoViewDataset",
        "Side",
        "TranslatorExact",
        "TranslatorSelect",
        "TranslatorGreedy",
        "TranslationRule",
        "TranslationTable",
        "make_dataset",
        "generate_planted",
        "ParallelExecutor",
        "ResultCache",
        "SweepTask",
        "expand_grid",
        "run_sweep",
    ):
        assert name in repro.__all__
        assert getattr(repro, name) is not None


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") >= 1


def test_public_functions_have_docstrings():
    """Every callable exported from the top level carries a docstring."""
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"repro.{name} is missing a docstring"


def test_cli_exposes_documented_subcommands():
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if action.__class__.__name__ == "_SubParsersAction"
    )
    commands = set(subparsers.choices)
    documented = {
        "stats", "fit", "describe", "compare", "trace", "predict",
        "randomize", "stability", "encoding", "cluster", "convert", "sweep",
    }
    assert documented <= commands


def test_extension_modules_are_reachable():
    """The extension modules named in DESIGN.md import cleanly."""
    for module in (
        "repro.data.arff",
        "repro.mining.sampling",
        "repro.core.beam",
        "repro.core.pruning",
        "repro.core.predict",
        "repro.core.refined",
        "repro.core.clustering",
        "repro.eval.randomization",
        "repro.eval.stability",
        "repro.eval.ranking",
        "repro.multiview",
    ):
        importlib.import_module(module)
