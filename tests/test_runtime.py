"""Tests for the parallel runtime: executor, result cache, sweep engine.

The load-bearing contracts:

* ``ParallelExecutor.map`` returns results in input order on every
  backend and propagates worker exceptions.
* ``ResultCache`` round-trips JSON values, treats corruption as a miss,
  and keys by content (order-insensitive, salt-sensitive).
* ``run_sweep`` produces identical results under the serial and process
  backends, serves re-runs from the cache, and invalidates on any task
  payload change.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.runtime.cache import ResultCache, content_key
from repro.runtime.executor import ParallelExecutor, effective_n_jobs
from repro.runtime.sweep import (
    SweepTask,
    build_translator,
    expand_grid,
    resolve_dataset_spec,
    run_sweep,
)

NOISE = {"noise": {"n_transactions": 60, "n_left": 5, "n_right": 5}}
PLANTED = {
    "synthetic": {
        "n_transactions": 80,
        "n_left": 6,
        "n_right": 6,
        "n_rules": 3,
    }
}


def _square(value: int) -> int:
    return value * value


def _explode(value: int) -> int:
    raise RuntimeError(f"boom {value}")


class TestParallelExecutor:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("chunk_size", [None, 1, 3])
    def test_map_preserves_input_order(self, backend, chunk_size):
        executor = ParallelExecutor(n_jobs=3, backend=backend, chunk_size=chunk_size)
        assert executor.map(_square, range(17)) == [i * i for i in range(17)]

    def test_empty_input(self):
        assert ParallelExecutor(n_jobs=2, backend="thread").map(_square, []) == []

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_exceptions_propagate(self, backend):
        executor = ParallelExecutor(n_jobs=2, backend=backend)
        with pytest.raises(RuntimeError, match="boom"):
            executor.map(_explode, [1, 2, 3])

    def test_auto_backend_resolution(self):
        assert ParallelExecutor(n_jobs=1).backend == "serial"
        assert ParallelExecutor(n_jobs=2).backend == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(backend="gpu")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(chunk_size=0)

    def test_effective_n_jobs(self):
        assert effective_n_jobs(3) == 3
        assert effective_n_jobs(None) >= 1
        assert effective_n_jobs(-1) >= 1
        with pytest.raises(ValueError):
            effective_n_jobs(0)


class TestResultCache:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key({"a": 1})
        assert cache.get(key) is None
        cache.put(key, {"value": [1, 2, 3]})
        assert cache.get(key) == {"value": [1, 2, 3]}
        assert key in cache
        assert len(cache) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key("x")
        cache.put(key, 42)
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for value in range(3):
            cache.put(content_key(value), value)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_content_key_is_order_insensitive(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_content_key_sensitivity(self):
        assert content_key({"a": 1}) != content_key({"a": 2})
        assert content_key({"a": 1}) != content_key({"a": 1}, salt="v2")


class TestSweepTask:
    def test_key_is_stable_and_content_sensitive(self):
        base = SweepTask(dataset=NOISE, method="greedy", params={"minsup": 2})
        same = SweepTask(dataset=NOISE, method="greedy", params={"minsup": 2})
        assert base.key() == same.key()
        assert base.key() != dataclasses.replace(base, seed=1).key()
        assert base.key() != dataclasses.replace(base, params={"minsup": 3}).key()
        assert base.key() != dataclasses.replace(base, method="select").key()

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            SweepTask(dataset=NOISE, method="magic")


class TestDatasetSpecs:
    def test_registry_name(self):
        dataset = resolve_dataset_spec("house", scale=0.02)
        assert dataset.n_transactions >= 40

    def test_synthetic_spec_with_seed_override(self):
        one = resolve_dataset_spec(PLANTED, seed=1)
        two = resolve_dataset_spec(PLANTED, seed=2)
        assert (one.left != two.left).any()

    def test_pinned_seed_wins_over_task_seed(self):
        pinned = {"synthetic": dict(PLANTED["synthetic"], seed=9)}
        one = resolve_dataset_spec(pinned, seed=1)
        two = resolve_dataset_spec(pinned, seed=2)
        assert (one.left == two.left).all()

    def test_noise_spec(self):
        dataset = resolve_dataset_spec(NOISE)
        assert dataset.n_transactions == 60

    def test_path_roundtrip(self, tmp_path, toy_dataset):
        from repro.data.io import save_dataset

        path = tmp_path / "toy.2v"
        save_dataset(toy_dataset, path)
        loaded = resolve_dataset_spec(str(path))
        assert (loaded.left == toy_dataset.left).all()

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            resolve_dataset_spec({"synthetic": {}, "noise": {}})
        with pytest.raises(ValueError):
            resolve_dataset_spec({"magic": {}})
        with pytest.raises(TypeError):
            resolve_dataset_spec(42)

    def test_build_translator(self):
        assert type(build_translator("beam", beam_width=2)).__name__ == "TranslatorBeam"
        with pytest.raises(ValueError):
            build_translator("magic")


class TestExpandGrid:
    def test_cross_product_order(self):
        tasks = expand_grid(
            [NOISE], methods=["select", "greedy"],
            params={"minsup": [2, 5]}, seeds=[0, 1],
        )
        assert len(tasks) == 8
        # dataset-major, then method, then params, then seed:
        assert [t.method for t in tasks[:4]] == ["select"] * 4
        assert [t.params["minsup"] for t in tasks[:4]] == [2, 2, 5, 5]
        assert [t.seed for t in tasks[:2]] == [0, 1]

    def test_default_single_cell(self):
        tasks = expand_grid([NOISE])
        assert len(tasks) == 1
        assert tasks[0].params == {}
        assert tasks[0].seed is None


class TestRunSweep:
    def _grid(self):
        return expand_grid(
            [NOISE, PLANTED], methods=["greedy", "select"],
            params={"minsup": [2]}, seeds=[0, 1],
        )

    @staticmethod
    def _models(report):
        return [
            (row["dataset"], row["method"], row["seed"], row["n_rules"],
             row["compression_ratio"], tuple(row["rules"]))
            for row in report.results
        ]

    def test_serial_process_equivalence(self):
        grid = self._grid()
        serial = run_sweep(grid, n_jobs=1)
        process = run_sweep(grid, n_jobs=2, backend="process")
        threaded = run_sweep(grid, n_jobs=2, backend="thread")
        assert self._models(serial) == self._models(process) == self._models(threaded)
        assert serial.backend == "serial"
        assert process.backend == "process"

    def test_results_align_with_tasks(self):
        grid = self._grid()
        report = run_sweep(grid, n_jobs=2, backend="thread")
        for task, row in zip(report.tasks, report.results):
            assert row["seed"] == task.seed
            assert row["params"] == dict(task.params)

    def test_cache_hits_and_flags(self, tmp_path):
        grid = self._grid()
        cold = run_sweep(grid, n_jobs=1, cache_dir=tmp_path)
        assert (cold.cache_hits, cold.cache_misses) == (0, len(grid))
        assert all(row["cached"] is False for row in cold.results)
        warm = run_sweep(grid, n_jobs=2, backend="process", cache_dir=tmp_path)
        assert (warm.cache_hits, warm.cache_misses) == (len(grid), 0)
        assert all(row["cached"] is True for row in warm.results)
        assert self._models(cold) == self._models(warm)

    def test_cache_invalidation_on_param_change(self, tmp_path):
        base = expand_grid([NOISE], methods=["greedy"], params={"minsup": [2]})
        run_sweep(base, cache_dir=tmp_path)
        changed = expand_grid([NOISE], methods=["greedy"], params={"minsup": [3]})
        report = run_sweep(changed, cache_dir=tmp_path)
        assert (report.cache_hits, report.cache_misses) == (0, 1)

    def test_partial_cache_reuse_on_grid_refinement(self, tmp_path):
        run_sweep(expand_grid([NOISE], methods=["greedy"]), cache_dir=tmp_path)
        refined = expand_grid([NOISE], methods=["greedy", "select"])
        report = run_sweep(refined, cache_dir=tmp_path)
        assert (report.cache_hits, report.cache_misses) == (1, 1)

    def test_fallback_auto_is_part_of_the_key(self):
        plain = SweepTask(dataset=NOISE, method="greedy")
        fallback = SweepTask(dataset=NOISE, method="greedy", fallback_auto=True)
        assert plain.key() != fallback.key()

    def test_no_cache_reports_zero_hits_and_misses(self):
        report = run_sweep(expand_grid([NOISE], methods=["greedy"]))
        assert (report.cache_hits, report.cache_misses) == (0, 0)

    def test_cache_hit_restores_this_runs_tag(self, tmp_path):
        # tag is a display label outside the cache key: a hit must carry
        # the requesting task's tag, not the storing run's.
        first = SweepTask(dataset=NOISE, method="greedy", tag="first")
        run_sweep([first], cache_dir=tmp_path)
        relabelled = dataclasses.replace(first, tag="second")
        report = run_sweep([relabelled], cache_dir=tmp_path)
        assert report.cache_hits == 1
        assert report.results[0]["tag"] == "second"
