"""Edge-case and failure-injection tests across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Side, TwoViewDataset
from repro.core.encoding import CodeLengthModel
from repro.core.rules import Direction, TranslationRule
from repro.core.search import ExactRuleSearch
from repro.core.state import CoverState
from repro.core.translator import TranslatorExact, TranslatorGreedy, TranslatorSelect
from repro.baselines.krimp import Krimp
from repro.mining.twoview import two_view_candidates


class TestDegenerateDatasets:
    def test_single_transaction(self):
        data = TwoViewDataset([[1, 1]], [[1, 0]])
        result = TranslatorExact().fit(data)
        # One transaction: all occurring items have probability 1, so both
        # rule codes and correction codes are free — nothing to gain.
        assert result.compression_ratio == pytest.approx(1.0)

    def test_all_ones_dataset(self):
        data = TwoViewDataset(np.ones((5, 3), bool), np.ones((5, 2), bool))
        state = CoverState(data)
        # Items with full support have zero code length: baseline is 0.
        assert state.baseline_bits == 0.0
        assert state.compression_ratio() == pytest.approx(1.0)
        result = TranslatorExact().fit(data)
        assert result.n_rules == 0

    def test_all_zero_columns(self):
        left = np.zeros((6, 3), dtype=bool)
        left[:, 0] = True
        right = np.zeros((6, 2), dtype=bool)
        right[:3, 0] = True
        data = TwoViewDataset(left, right)
        result = TranslatorExact().fit(data)
        # Zero-support items must never enter rules.
        for rule in result.table:
            assert all(data.left[:, item].any() for item in rule.lhs)
            assert all(data.right[:, item].any() for item in rule.rhs)

    def test_single_item_views(self):
        rng = np.random.default_rng(0)
        column = (rng.random(40) < 0.5).reshape(-1, 1)
        data = TwoViewDataset(column, column.copy())
        result = TranslatorExact().fit(data)
        # Perfect correlation between two single items: one rule suffices.
        assert result.n_rules == 1
        assert result.table[0].direction is Direction.BOTH
        assert result.compression_ratio < 1.0

    def test_perfectly_anticorrelated_views(self):
        rng = np.random.default_rng(1)
        column = (rng.random(40) < 0.5).reshape(-1, 1)
        data = TwoViewDataset(column, ~column)
        result = TranslatorExact().fit(data)
        # X -> Y never co-occurs; the search prunes non-co-occurring pairs,
        # so no rule can be found even though the views are dependent.
        assert result.n_rules == 0

    def test_duplicate_transactions(self):
        data = TwoViewDataset.from_transactions(
            [({"a"}, {"x"})] * 20 + [({"b"}, {"y"})] * 20
        )
        result = TranslatorExact().fit(data)
        assert result.compression_ratio < 0.6
        rendered = result.table.render(data)
        assert "a" in rendered and "x" in rendered


class TestSelectEdgeCases:
    def test_empty_candidate_list(self, toy_dataset):
        result = TranslatorSelect(candidates=[]).fit(toy_dataset)
        assert result.n_rules == 0
        assert result.compression_ratio == pytest.approx(1.0)

    def test_minsup_above_all_supports(self, toy_dataset):
        result = TranslatorSelect(minsup=100).fit(toy_dataset)
        assert result.n_rules == 0

    def test_candidate_truncation_keeps_top_support(self, planted_dataset):
        translator = TranslatorSelect(minsup=2, max_candidates=10)
        candidates = translator._get_candidates(planted_dataset)
        assert len(candidates) == 10
        full = two_view_candidates(planted_dataset, 2, max_candidates=200_000)
        top_supports = [candidate.support for candidate in full[:10]]
        assert [candidate.support for candidate in candidates] == top_supports

    def test_max_iterations_zero(self, planted_dataset):
        result = TranslatorSelect(minsup=2, max_iterations=0).fit(planted_dataset)
        assert result.n_rules == 0

    def test_k_larger_than_candidates(self, toy_dataset):
        result = TranslatorSelect(k=1000, minsup=1).fit(toy_dataset)
        # Must terminate and produce a valid model.
        assert result.compression_ratio <= 1.0


class TestGreedyEdgeCases:
    def test_greedy_deterministic(self, planted_dataset):
        first = TranslatorGreedy(minsup=2).fit(planted_dataset)
        second = TranslatorGreedy(minsup=2).fit(planted_dataset)
        assert list(first.table) == list(second.table)

    def test_greedy_empty_candidates(self, toy_dataset):
        result = TranslatorGreedy(candidates=[]).fit(toy_dataset)
        assert result.n_rules == 0


class TestSearchEdgeCases:
    def test_search_on_all_zero_right(self):
        left = np.ones((5, 2), dtype=bool)
        right = np.zeros((5, 2), dtype=bool)
        data = TwoViewDataset(left, right)
        state = CoverState(data)
        rule, gain, stats = ExactRuleSearch(state).find_best_rule()
        assert rule is None
        assert gain == 0.0

    def test_search_max_rule_size_one_impossible(self, planted_dataset):
        # A rule needs at least 2 items (one per side); max_rule_size=1
        # therefore yields nothing.
        state = CoverState(planted_dataset)
        rule, gain, __ = ExactRuleSearch(state, max_rule_size=1).find_best_rule()
        assert rule is None

    def test_search_after_saturation(self, toy_dataset):
        state = CoverState(toy_dataset)
        added = 0
        while added < 20:
            rule, gain, __ = ExactRuleSearch(state).find_best_rule()
            if rule is None:
                break
            state.add_rule(rule)
            added += 1
        # Convergence: the final search finds nothing with positive gain.
        rule, gain, __ = ExactRuleSearch(state).find_best_rule()
        assert rule is None and gain == 0.0


class TestEncodingEdgeCases:
    def test_deterministic_across_instances(self, planted_dataset):
        first = CodeLengthModel(planted_dataset)
        second = CodeLengthModel(planted_dataset)
        np.testing.assert_array_equal(first.lengths_left, second.lengths_left)

    def test_duplicate_items_in_itemset_length(self, toy_dataset):
        codes = CodeLengthModel(toy_dataset)
        # itemset_length sums what it is given; rule normalisation upstream
        # guarantees uniqueness, asserted here via TranslationRule.
        rule = TranslationRule((0, 0, 1), (2,), Direction.BOTH)
        assert rule.lhs == (0, 1)


class TestKrimpEdgeCases:
    def test_adaptive_minsup_reported(self):
        rng = np.random.default_rng(2)
        dense = rng.random((60, 14)) < 0.7
        result = Krimp(minsup=1, max_candidates=200, adaptive=True).fit(dense)
        assert result.effective_minsup >= 1
        assert result.n_candidates <= 200

    def test_non_adaptive_raises(self):
        rng = np.random.default_rng(3)
        dense = rng.random((60, 14)) < 0.7
        with pytest.raises(RuntimeError, match="max_itemsets"):
            Krimp(minsup=1, max_candidates=200, adaptive=False).fit(dense)

    def test_empty_matrix(self):
        result = Krimp(minsup=1).fit(np.zeros((4, 3), dtype=bool))
        assert result.n_accepted == 0
        assert result.baseline_bits == 0.0
