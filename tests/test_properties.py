"""Property-based tests (hypothesis) on the core invariants.

These are the load-bearing guarantees of the paper's framework:

1. **Losslessness** — for *any* dataset and *any* translation table,
   ``TRANSLATE`` + correction table reconstructs the data exactly.
2. **Gain exactness** — the incremental gain (Eq. 1-2) always equals the
   brute-force difference of total encoded lengths.
3. **Cover-state consistency** — incremental state equals batch
   recomputation after any rule sequence.
4. **Mining correctness** — ECLAT equals brute-force enumeration; closed
   itemsets are exactly the support-maximal frequent itemsets.
5. **Serialisation roundtrips** — datasets and tables survive I/O.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.dataset import Side, TwoViewDataset
from repro.data.io import load_dataset, save_dataset
from repro.core.encoding import CodeLengthModel
from repro.core.rules import Direction, TranslationRule
from repro.core.state import CoverState
from repro.core.table import TranslationTable
from repro.core.translate import corrections, reconstruct
from repro.mining.eclat import eclat
from repro.mining.closed import closed_itemsets

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def datasets(draw, max_n=20, max_items=5):
    """Random small two-view datasets where every item occurs at least once."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    n_left = draw(st.integers(min_value=1, max_value=max_items))
    n_right = draw(st.integers(min_value=1, max_value=max_items))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    density = draw(st.floats(min_value=0.1, max_value=0.7))
    rng = np.random.default_rng(seed)
    left = rng.random((n, n_left)) < density
    right = rng.random((n, n_right)) < density
    for column in range(n_left):
        if not left[:, column].any():
            left[int(rng.integers(n)), column] = True
    for column in range(n_right):
        if not right[:, column].any():
            right[int(rng.integers(n)), column] = True
    return TwoViewDataset(left, right, name="hyp")


@st.composite
def datasets_with_rules(draw, max_rules=6):
    dataset = draw(datasets())
    n_rules = draw(st.integers(min_value=0, max_value=max_rules))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    rules = []
    for __ in range(n_rules):
        lhs_size = int(rng.integers(1, min(3, dataset.n_left) + 1))
        rhs_size = int(rng.integers(1, min(3, dataset.n_right) + 1))
        lhs = tuple(rng.choice(dataset.n_left, size=lhs_size, replace=False))
        rhs = tuple(rng.choice(dataset.n_right, size=rhs_size, replace=False))
        direction = [Direction.FORWARD, Direction.BACKWARD, Direction.BOTH][
            int(rng.integers(3))
        ]
        rule = TranslationRule(lhs, rhs, direction)
        if rule not in rules:
            rules.append(rule)
    return dataset, rules


class TestLosslessness:
    @SETTINGS
    @given(datasets_with_rules())
    def test_translation_is_lossless(self, payload):
        dataset, rules = payload
        np.testing.assert_array_equal(
            reconstruct(dataset, rules, Side.RIGHT), dataset.right
        )
        np.testing.assert_array_equal(
            reconstruct(dataset, rules, Side.LEFT), dataset.left
        )

    @SETTINGS
    @given(datasets_with_rules())
    def test_correction_partition(self, payload):
        dataset, rules = payload
        tables = corrections(dataset, rules)
        assert not (tables.uncovered_left & tables.errors_left).any()
        assert not (tables.uncovered_right & tables.errors_right).any()
        np.testing.assert_array_equal(
            tables.correction_right, dataset.right ^ tables.translated_right
        )


class TestGainExactness:
    @SETTINGS
    @given(datasets_with_rules())
    def test_incremental_gain_matches_length_difference(self, payload):
        dataset, rules = payload
        state = CoverState(dataset)
        for rule in rules:
            before = state.total_length()
            predicted = state.gain(rule)
            state.add_rule(rule)
            assert predicted == pytest.approx(
                before - state.total_length(), abs=1e-8
            )

    @SETTINGS
    @given(datasets_with_rules())
    def test_state_matches_batch(self, payload):
        dataset, rules = payload
        state = CoverState(dataset)
        for rule in rules:
            state.add_rule(rule)
        batch = corrections(dataset, rules)
        np.testing.assert_array_equal(state.uncovered_left, batch.uncovered_left)
        np.testing.assert_array_equal(state.uncovered_right, batch.uncovered_right)
        np.testing.assert_array_equal(state.errors_left, batch.errors_left)
        np.testing.assert_array_equal(state.errors_right, batch.errors_right)

    @SETTINGS
    @given(datasets_with_rules())
    def test_total_length_matches_code_model(self, payload):
        dataset, rules = payload
        state = CoverState(dataset)
        for rule in rules:
            state.add_rule(rule)
        codes = CodeLengthModel(dataset)
        batch = corrections(dataset, rules)
        expected = (
            codes.table_length(rules)
            + codes.correction_length(Side.LEFT, batch.correction_left)
            + codes.correction_length(Side.RIGHT, batch.correction_right)
        )
        assert state.total_length() == pytest.approx(expected, abs=1e-8)


class TestMiningCorrectness:
    @SETTINGS
    @given(datasets(max_n=15, max_items=5), st.integers(min_value=1, max_value=5))
    def test_eclat_matches_brute_force(self, dataset, minsup):
        matrix = dataset.left
        mined = dict(eclat(matrix, minsup))
        expected = {}
        for size in range(1, matrix.shape[1] + 1):
            for itemset in itertools.combinations(range(matrix.shape[1]), size):
                support = int(matrix[:, itemset].all(axis=1).sum())
                if support >= minsup:
                    expected[itemset] = support
        assert mined == expected

    @SETTINGS
    @given(datasets(max_n=15, max_items=5), st.integers(min_value=1, max_value=4))
    def test_closed_are_support_maximal(self, dataset, minsup):
        matrix = dataset.left
        frequent = dict(eclat(matrix, minsup))
        closed = dict(closed_itemsets(matrix, minsup))
        for itemset, support in closed.items():
            assert frequent.get(itemset) == support
            for other, other_support in frequent.items():
                if set(itemset) < set(other):
                    assert other_support < support


class TestEncodingProperties:
    @SETTINGS
    @given(datasets())
    def test_code_lengths_nonnegative(self, dataset):
        codes = CodeLengthModel(dataset)
        assert (codes.lengths_left[np.isfinite(codes.lengths_left)] >= 0).all()
        assert (codes.lengths_right[np.isfinite(codes.lengths_right)] >= 0).all()

    @SETTINGS
    @given(datasets_with_rules())
    def test_compression_of_added_rules_only_improves_when_gain_positive(
        self, payload
    ):
        dataset, rules = payload
        state = CoverState(dataset)
        for rule in rules:
            gain = state.gain(rule)
            before = state.total_length()
            state.add_rule(rule)
            if gain > 0:
                assert state.total_length() < before
            else:
                assert state.total_length() >= before - 1e-9


class TestSerialisationRoundtrips:
    @SETTINGS
    @given(datasets())
    def test_dataset_io_roundtrip(self, tmp_path_factory, dataset):
        path = tmp_path_factory.mktemp("io") / "data.2v"
        save_dataset(dataset, path)
        assert load_dataset(path) == dataset

    @SETTINGS
    @given(datasets_with_rules())
    def test_table_json_roundtrip(self, payload):
        __, rules = payload
        table = TranslationTable(rules)
        assert TranslationTable.from_json(table.to_json()) == table


class TestSearchExactnessProperty:
    """The DFS search equals brute force on arbitrary small datasets."""

    @SETTINGS
    @given(datasets(max_n=15, max_items=4))
    def test_search_matches_brute_force(self, dataset):
        from repro.core.search import ExactRuleSearch
        from tests.test_search import brute_force_best

        state = CoverState(dataset)
        __, gain, stats = ExactRuleSearch(state).find_best_rule()
        __, expected = brute_force_best(state)
        assert gain == pytest.approx(expected, abs=1e-9)
        assert stats.complete

    @SETTINGS
    @given(datasets_with_rules(max_rules=3))
    def test_search_exact_after_arbitrary_rules(self, payload):
        from repro.core.search import ExactRuleSearch
        from tests.test_search import brute_force_best

        dataset, rules = payload
        if dataset.n_left > 4 or dataset.n_right > 4:
            return  # keep brute force tractable
        state = CoverState(dataset)
        for rule in rules:
            state.add_rule(rule)
        __, gain, __ = ExactRuleSearch(state).find_best_rule()
        __, expected = brute_force_best(state)
        assert gain == pytest.approx(expected, abs=1e-9)
