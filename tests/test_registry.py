"""Unit tests for the paper dataset registry."""

from __future__ import annotations

import pytest

from repro.data.registry import (
    PAPER_DATASETS,
    dataset_names,
    make_dataset,
    paper_stats,
)


class TestRegistryContents:
    def test_fourteen_datasets(self):
        assert len(PAPER_DATASETS) == 14

    def test_names_match_table1(self):
        expected = {
            "abalone", "adult", "cal500", "car", "chesskrvk", "crime",
            "elections", "emotions", "house", "mammals", "nursery",
            "tictactoe", "wine", "yeast",
        }
        assert set(PAPER_DATASETS) == expected
        # dataset_names() additionally lists the mixed-type datasets.
        assert set(dataset_names()) == expected | {
            "abalone-mixed", "winequality-mixed",
        }

    def test_paper_stats_values(self):
        house = paper_stats("house")
        assert house.n_transactions == 435
        assert house.n_left == 26
        assert house.n_right == 24
        assert house.baseline_bits == 31625

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            paper_stats("not-a-dataset")


class TestGeneratedStandIns:
    @pytest.mark.parametrize("name", ["house", "wine", "car", "tictactoe"])
    def test_shapes_match_paper(self, name):
        stats = paper_stats(name)
        dataset = make_dataset(name)
        assert dataset.n_transactions == stats.n_transactions
        assert dataset.n_left == stats.n_left
        assert dataset.n_right == stats.n_right

    @pytest.mark.parametrize("name", ["house", "yeast"])
    def test_densities_close_to_paper(self, name):
        stats = paper_stats(name)
        dataset = make_dataset(name)
        assert dataset.density_left == pytest.approx(stats.density_left, abs=0.06)
        assert dataset.density_right == pytest.approx(stats.density_right, abs=0.06)

    def test_scale_shrinks_transactions(self):
        full = make_dataset("car")
        half = make_dataset("car", scale=0.5)
        assert half.n_transactions == pytest.approx(full.n_transactions / 2, abs=2)
        assert half.n_left == full.n_left

    def test_minimum_size_floor(self):
        tiny = make_dataset("wine", scale=0.001)
        assert tiny.n_transactions >= 40

    def test_deterministic(self):
        assert make_dataset("wine") == make_dataset("wine")

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            make_dataset("wine", scale=0)

    def test_all_datasets_generate_small(self):
        for name in dataset_names():
            dataset = make_dataset(name, scale=0.01)
            assert dataset.n_transactions >= 40
            assert dataset.name == name


class TestQualitativeNames:
    def test_cal500_has_genre_rock(self):
        dataset = make_dataset("cal500", scale=0.1)
        assert "Genre:Rock" in dataset.right_names

    def test_house_has_party_and_votes(self):
        dataset = make_dataset("house", scale=0.1)
        all_names = dataset.left_names + dataset.right_names
        assert "party=democrat" in all_names
        assert any("mx-missile" in name for name in all_names)

    def test_mammals_has_species(self):
        dataset = make_dataset("mammals", scale=0.05)
        all_names = dataset.left_names + dataset.right_names
        assert "Red-Fox" in all_names
        assert "European-Mole" in all_names

    def test_elections_has_parties_and_questions(self):
        dataset = make_dataset("elections", scale=0.05)
        assert any(name.startswith("party=") for name in dataset.left_names)
        assert any(name.startswith("Q") for name in dataset.right_names)

    def test_names_unique_everywhere(self):
        for name in ("cal500", "mammals", "elections", "house"):
            dataset = make_dataset(name, scale=0.02)
            assert len(set(dataset.left_names)) == dataset.n_left
            assert len(set(dataset.right_names)) == dataset.n_right
