"""Unit tests for post-hoc translation-table pruning."""

from __future__ import annotations

import pytest

from repro.core.encoding import CodeLengthModel
from repro.core.pruning import prune_table
from repro.core.rules import Direction, TranslationRule
from repro.core.state import CoverState
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorGreedy, TranslatorSelect


def total_bits(dataset, rules):
    state = CoverState(dataset)
    for rule in rules:
        state.add_rule(rule)
    return state.total_length()


class TestPruneTable:
    def test_empty_table(self, toy_dataset):
        result = prune_table(toy_dataset, TranslationTable())
        assert len(result.table) == 0
        assert result.removed == []
        assert result.improvement_bits == 0.0

    def test_never_increases_length(self, planted_dataset):
        fitted = TranslatorGreedy(minsup=2).fit(planted_dataset)
        result = prune_table(planted_dataset, fitted.table)
        assert result.bits_after <= result.bits_before + 1e-9
        assert result.bits_after == pytest.approx(
            total_bits(planted_dataset, list(result.table))
        )

    def test_removes_useless_rule(self, planted_dataset):
        # A rule with a never-occurring antecedent only costs bits.
        fitted = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        junk = TranslationRule(
            tuple(range(min(6, planted_dataset.n_left))),
            (0,),
            Direction.FORWARD,
        )
        rules = list(fitted.table)
        if junk in rules:
            rules.remove(junk)
        padded = TranslationTable(rules + [junk])
        result = prune_table(planted_dataset, padded)
        assert junk in result.removed

    def test_keeps_good_rules(self, planted_dataset):
        fitted = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        result = prune_table(planted_dataset, fitted.table)
        # MDL-selected rules each had positive gain at addition time;
        # most should survive pruning (later additions rarely subsume
        # earlier ones completely on planted data).
        assert len(result.table) >= max(1, fitted.n_rules // 2)

    def test_accounting_consistent(self, planted_dataset):
        fitted = TranslatorGreedy(minsup=2).fit(planted_dataset)
        codes = CodeLengthModel(planted_dataset)
        result = prune_table(planted_dataset, fitted.table, codes)
        assert len(result.table) + len(result.removed) == fitted.n_rules
        assert result.improvement_bits >= 0.0
