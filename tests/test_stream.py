"""Streaming subsystem tests (``pytest -m stream_smoke``).

Covers the four layers of :mod:`repro.stream` — the incremental buffer
(property-style bit-identity of append/evict sequences against
from-scratch packing, tracked supports, capacity growth and rotation),
drift monitoring (determinism under a fixed seed, detection of a
flipped association), the binary codec and row sources, and the
maintenance loop — plus the serving satellites that ride along: binary
``/predict`` ingestion, LRU predictor eviction, the registry's
``latest``-pointer race tolerance, and the end-to-end hot-swap of a
live :class:`PredictionServer` without a restart.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.bitset import BitMatrix, pack_rows_at, shift_rows
from repro.core.beam import TranslatorBeam
from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorExact
from repro.data.dataset import Side, TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.serve import (
    ModelArtifact,
    ModelRegistry,
    PredictionServer,
    PredictionService,
)
from repro.stream import (
    DriftMonitor,
    FeedSource,
    JsonlSource,
    MaintenanceLoop,
    PackedSource,
    RefitPolicy,
    StreamBuffer,
    decode_packed_rows,
    encode_packed_rows,
    fit_window,
    iter_packed_frames,
    score_table,
)

pytestmark = pytest.mark.stream_smoke


def planted(seed=42, n=300):
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=n,
            n_left=10,
            n_right=10,
            density_left=0.15,
            density_right=0.15,
            n_rules=3,
            seed=seed,
        )
    )
    return dataset


def crossed_pair(n_rows=120):
    """Two tiny datasets with *opposite* cross-view associations.

    ``a`` pairs L0<->R0 / L1<->R1; ``b`` pairs L0<->R1 / L1<->R0.  Both
    have identical margins, so only the pairing differs — the exact
    drift scenario.
    """
    half = n_rows // 2
    left = np.zeros((n_rows, 2), dtype=bool)
    right_a = np.zeros((n_rows, 2), dtype=bool)
    right_b = np.zeros((n_rows, 2), dtype=bool)
    left[:half, 0] = True
    left[half:, 1] = True
    right_a[:half, 0] = True
    right_a[half:, 1] = True
    right_b[:half, 1] = True
    right_b[half:, 0] = True
    order = np.arange(n_rows) % 2 * half + np.arange(n_rows) // 2  # interleave
    return (
        TwoViewDataset(left[order], right_a[order], name="assoc-a"),
        TwoViewDataset(left[order], right_b[order], name="assoc-b"),
    )


class TestBitsetPrimitives:
    def test_pack_rows_at_matches_shifted_pack(self, rng):
        for offset in (0, 1, 17, 63):
            chunk = rng.random((70, 9)) < 0.4
            packed = pack_rows_at(chunk, offset)
            padded = np.zeros((offset + 70, 9), dtype=bool)
            padded[offset:] = chunk
            assert np.array_equal(
                packed, BitMatrix.from_bool_columns(padded).words
            )

    def test_shift_rows_inverts_offset(self, rng):
        chunk = rng.random((130, 5)) < 0.4
        for shift in (1, 13, 63):
            padded = np.zeros((shift + 130, 5), dtype=bool)
            padded[shift:] = chunk
            shifted = shift_rows(
                BitMatrix.from_bool_columns(padded).words, shift
            )
            expect = BitMatrix.from_bool_columns(chunk).words
            assert np.array_equal(shifted[:, : expect.shape[1]], expect)

    def test_validation(self):
        with pytest.raises(ValueError, match="offset"):
            pack_rows_at(np.zeros((2, 2), dtype=bool), 64)
        with pytest.raises(ValueError, match="shift"):
            shift_rows(np.zeros((2, 2), dtype=np.uint64), -1)
        with pytest.raises(ValueError, match="2-dimensional"):
            shift_rows(np.zeros(4, dtype=np.uint64), 1)


class TestStreamBuffer:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_append_evict_is_bit_identical(self, seed):
        """Property test: incremental buffer == from-scratch pack."""
        rng = np.random.default_rng(seed)
        n_left, n_right = int(rng.integers(1, 80)), int(rng.integers(1, 80))
        buffer = StreamBuffer(n_left, n_right, capacity=8)
        ref_left = np.zeros((0, n_left), dtype=bool)
        ref_right = np.zeros((0, n_right), dtype=bool)
        trackers = []
        for op in range(80):
            if rng.random() < 0.6 or len(buffer) == 0:
                k = int(rng.integers(1, 70))
                chunk_l = rng.random((k, n_left)) < 0.3
                chunk_r = rng.random((k, n_right)) < 0.3
                buffer.append(chunk_l, chunk_r)
                ref_left = np.concatenate([ref_left, chunk_l])
                ref_right = np.concatenate([ref_right, chunk_r])
            else:
                k = int(rng.integers(1, len(buffer) + 1))
                buffer.evict(k)
                ref_left, ref_right = ref_left[k:], ref_right[k:]
            if op in (5, 25):
                side = Side.LEFT if rng.random() < 0.5 else Side.RIGHT
                width = n_left if side is Side.LEFT else n_right
                items = sorted(
                    rng.choice(width, size=min(2, width), replace=False).tolist()
                )
                trackers.append((buffer.track(side, items), side))
            for side, reference in (
                (Side.LEFT, ref_left),
                (Side.RIGHT, ref_right),
            ):
                assert np.array_equal(
                    buffer.bit_matrix(side).words,
                    BitMatrix.from_bool_columns(reference).words,
                ), f"seed={seed} op={op} {side} words diverged"
                assert np.array_equal(
                    buffer.item_counts(side), reference.sum(axis=0)
                )
            window = buffer.window_dataset()
            assert np.array_equal(window.left, ref_left)
            assert np.array_equal(window.right, ref_right)
            for tracker, side in trackers:
                reference = ref_left if side is Side.LEFT else ref_right
                expected = (
                    int(reference[:, list(tracker.items)].all(axis=1).sum())
                    if len(reference)
                    else 0
                )
                assert tracker.count == expected, f"seed={seed} op={op}"

    def test_growth_from_tiny_capacity(self, rng):
        buffer = StreamBuffer(3, 3, capacity=1)
        chunk = rng.random((500, 3)) < 0.5
        buffer.append(chunk, chunk)
        assert len(buffer) == 500
        assert np.array_equal(
            buffer.bit_matrix(Side.LEFT).words,
            BitMatrix.from_bool_columns(chunk).words,
        )

    def test_misaligned_window_rotation(self, rng):
        # An odd eviction leaves the window start mid-word; extraction
        # must still be bit-identical (the shift_rows path).
        chunk = rng.random((200, 5)) < 0.4
        buffer = StreamBuffer(5, 5)
        buffer.append(chunk, chunk)
        buffer.evict(37)
        assert np.array_equal(
            buffer.bit_matrix(Side.RIGHT).words,
            BitMatrix.from_bool_columns(chunk[37:]).words,
        )

    def test_validation(self):
        buffer = StreamBuffer(2, 3)
        with pytest.raises(ValueError, match="same number of rows"):
            buffer.append(np.zeros((2, 2), bool), np.zeros((3, 3), bool))
        with pytest.raises(ValueError, match="widths"):
            buffer.append(np.zeros((1, 3), bool), np.zeros((1, 3), bool))
        with pytest.raises(ValueError, match="cannot evict"):
            buffer.evict(1)
        with pytest.raises(ValueError, match="empty itemset"):
            buffer.track(Side.LEFT, ())
        with pytest.raises(ValueError, match="vocabulary"):
            buffer.track(Side.LEFT, (5,))

    def test_empty_buffer_edges(self):
        buffer = StreamBuffer(2, 2)
        assert len(buffer) == 0
        buffer.evict(0)
        assert buffer.bit_matrix(Side.LEFT).n_bits == 0
        assert buffer.window_dataset().n_transactions == 0

    def test_eviction_landing_on_word_boundaries(self, rng):
        # Evictions whose window start lands exactly on a 64-bit word
        # edge exercise the tail_mask=None branches (the whole dead word
        # is zeroed, nothing straddles) and the word-aligned slice path
        # of bit_matrix.
        chunk = rng.random((256, 6)) < 0.4
        buffer = StreamBuffer(6, 6, capacity=8)
        buffer.append(chunk, chunk)
        tracker = buffer.track(Side.LEFT, (0, 3))
        start = 0
        for step in (64, 64, 63, 1):  # boundary, boundary, stray, re-align
            buffer.evict(step)
            start += step
            live = chunk[start:]
            assert len(buffer) == 256 - start
            assert np.array_equal(
                buffer.bit_matrix(Side.LEFT).words,
                BitMatrix.from_bool_columns(live).words,
            ), f"diverged after evicting to {start}"
            assert np.array_equal(buffer.item_counts(Side.LEFT), live.sum(axis=0))
            assert tracker.count == int((live[:, 0] & live[:, 3]).sum())
        # Draining the rest exactly to the end is also a boundary case.
        buffer.evict(len(buffer))
        assert len(buffer) == 0 and tracker.count == 0

    def test_word_boundary_appends_keep_trackers_exact(self, rng):
        # Appends of exactly one word (offset 0 tail) and appends that
        # finish a word (offset + k == 64) take the offset_mask=None and
        # full-tail-word paths of the tracker update.
        buffer = StreamBuffer(4, 4, capacity=4)
        tracker = buffer.track(Side.RIGHT, (1,))
        reference = np.zeros((0, 4), dtype=bool)
        for k in (64, 64, 32, 32, 128, 1, 63):
            chunk = rng.random((k, 4)) < 0.5
            buffer.append(chunk, chunk)
            reference = np.concatenate([reference, chunk])
            assert tracker.count == int(reference[:, 1].sum())
        assert np.array_equal(
            buffer.bit_matrix(Side.RIGHT).words,
            BitMatrix.from_bool_columns(reference).words,
        )

    def test_empty_appends_are_noops(self, rng):
        # k=0 chunks must change nothing — including at a misaligned
        # offset, where pack_rows_at gets a zero-row matrix.
        buffer = StreamBuffer(3, 5, capacity=2)
        tracker = buffer.track(Side.LEFT, (0,))
        empty_l = np.zeros((0, 3), dtype=bool)
        empty_r = np.zeros((0, 5), dtype=bool)
        buffer.append(empty_l, empty_r)  # offset 0
        assert len(buffer) == 0 and buffer.appended_total == 0
        chunk_l = rng.random((37, 3)) < 0.5  # leave a mid-word tail
        chunk_r = rng.random((37, 5)) < 0.5
        buffer.append(chunk_l, chunk_r)
        before_words = buffer.bit_matrix(Side.LEFT).words.copy()
        before_count = tracker.count
        buffer.append(empty_l, empty_r)  # offset 37 % 64
        assert len(buffer) == 37
        assert tracker.count == before_count
        assert np.array_equal(buffer.bit_matrix(Side.LEFT).words, before_words)

    def test_pack_rows_at_zero_row_chunks(self):
        # The primitive itself: a (0, n_items) chunk at any offset packs
        # to all-zero words of the right shape.
        for offset in (0, 1, 37, 63):
            packed = pack_rows_at(np.zeros((0, 5), dtype=bool), offset)
            assert packed.shape == (5, (offset + 63) // 64 if offset else 0)
            assert not packed.any()


class TestWindowedRefit:
    def test_exact_refit_is_bit_identical(self):
        data = planted()
        buffer = StreamBuffer(data.n_left, data.n_right, capacity=16)
        buffer.append(data.left[:180], data.right[:180])
        buffer.evict(29)  # misalign the window start
        buffer.append(data.left[180:], data.right[180:])
        window = buffer.window_dataset("w")
        batch = TranslatorExact(max_rule_size=4).fit(window)
        incremental = fit_window(TranslatorExact(max_rule_size=4), buffer, "w")
        assert list(batch.table) == list(incremental.table)
        assert batch.compression_ratio == incremental.compression_ratio

    def test_beam_refit_is_bit_identical(self):
        data = planted(seed=7)
        buffer = StreamBuffer(data.n_left, data.n_right)
        buffer.append(data.left, data.right)
        buffer.evict(13)
        window = buffer.window_dataset("w")
        batch = TranslatorBeam(max_rule_size=4).fit(window)
        incremental = fit_window(TranslatorBeam(max_rule_size=4), buffer, "w")
        assert list(batch.table) == list(incremental.table)

    def test_beam_rejects_mismatched_bits(self):
        data = planted()
        other = planted(seed=1, n=100)
        wrong = (
            BitMatrix.from_bool_columns(other.left),
            BitMatrix.from_bool_columns(other.right),
        )
        with pytest.raises(ValueError, match="do not match"):
            TranslatorBeam(max_rule_size=3).fit(data, bits=wrong)

    def test_search_cache_rejects_mismatched_bits(self):
        from repro.core.search import SearchCache

        data = planted()
        other = planted(seed=1, n=100)
        with pytest.raises(ValueError, match="does not match"):
            SearchCache(
                data, left_bits=BitMatrix.from_bool_columns(other.left)
            )

    def test_exact_fit_rejects_foreign_cache(self):
        from repro.core.search import SearchCache

        data = planted()
        cache = SearchCache(planted(seed=1))
        with pytest.raises(ValueError, match="different dataset"):
            TranslatorExact().fit(data, cache=cache)


class TestDriftMonitor:
    def test_deterministic_under_fixed_seed(self):
        data = planted()
        result = TranslatorExact(max_rule_size=3).fit(data)
        monitor = DriftMonitor(result.table, seed=5)
        first = monitor.check(data, result)
        second = monitor.check(data, result)
        assert first == second
        assert first.null_ratios == second.null_ratios

    def test_no_drift_on_distribution(self):
        data = planted()
        result = TranslatorExact(max_rule_size=3).fit(data)
        report = DriftMonitor(result.table).check(data, result)
        assert not report.drifted
        assert report.p_value <= 0.05
        assert abs(report.degradation) < 1e-9

    def test_flipped_association_is_flagged(self):
        assoc_a, assoc_b = crossed_pair()
        published = TranslatorExact().fit(assoc_a)
        refit = TranslatorExact().fit(assoc_b)
        report = DriftMonitor(published.table).check(assoc_b, refit)
        assert report.drifted
        assert report.reason == "degradation"
        assert report.degradation > 0.02

    def test_validation(self):
        table = TranslationTable([TranslationRule((0,), (0,), "->")])
        with pytest.raises(ValueError, match="n_permutations"):
            DriftMonitor(table, n_permutations=0)
        with pytest.raises(ValueError, match="cannot reach"):
            DriftMonitor(table, n_permutations=3, significance=0.05)

    def test_score_table_matches_fit_state(self):
        data = planted()
        result = TranslatorExact(max_rule_size=3).fit(data)
        assert score_table(data, result.table) == pytest.approx(
            result.compression_ratio
        )


class TestCodec:
    @pytest.mark.parametrize("n_items", [1, 7, 64, 70, 130])
    def test_roundtrip(self, rng, n_items):
        matrix = rng.random((9, n_items)) < 0.4
        meta, back, right = decode_packed_rows(
            encode_packed_rows(matrix, {"model": "m", "target": "L"})
        )
        assert right is None
        assert np.array_equal(back, matrix)
        assert meta["model"] == "m" and meta["n_rows"] == 9

    def test_two_view_roundtrip(self, rng):
        left = rng.random((5, 70)) < 0.3
        right = rng.random((5, 13)) < 0.3
        __, back_l, back_r = decode_packed_rows(
            encode_packed_rows(left, right=right)
        )
        assert np.array_equal(back_l, left)
        assert np.array_equal(back_r, right)

    def test_frame_concatenation(self, rng):
        frames = b"".join(
            encode_packed_rows(rng.random((3, 10)) < 0.4, {"i": i})
            for i in range(4)
        )
        decoded = list(iter_packed_frames(frames))
        assert [meta["i"] for meta, __, ___ in decoded] == [0, 1, 2, 3]

    def test_malformed_frames_rejected(self, rng):
        good = encode_packed_rows(rng.random((3, 10)) < 0.4)
        with pytest.raises(ValueError, match="magic"):
            decode_packed_rows(b"NOPE" + good[4:])
        with pytest.raises(ValueError, match="truncated"):
            decode_packed_rows(good[:-3])
        with pytest.raises(ValueError, match="trailing"):
            decode_packed_rows(good + b"xx")
        with pytest.raises(ValueError, match="version"):
            decode_packed_rows(good[:4] + b"\x09" + good[5:])

    @staticmethod
    def _frame(header: dict, payload: bytes) -> bytes:
        """Hand-rolled frame with an arbitrary (possibly invalid) header."""
        import struct

        header_bytes = json.dumps(header).encode("utf-8")
        return (
            b"2VPB\x01"
            + struct.pack("<I", len(header_bytes))
            + header_bytes
            + payload
        )

    @pytest.mark.parametrize(
        "n_rows,n_items",
        [(-1, 4), (2, -4), (1.5, 4), (2, 3.0), ("2", 4), (True, 4), (None, 4)],
    )
    def test_non_integer_or_negative_dimensions_rejected(self, n_rows, n_items):
        frame = self._frame(
            {"n_rows": n_rows, "n_items": n_items}, b"\x00" * 64
        )
        with pytest.raises(ValueError, match="integer|dimension"):
            decode_packed_rows(frame)

    def test_bad_right_view_dimension_rejected(self):
        frame = self._frame(
            {"n_rows": 1, "n_items": 4, "n_items_right": -2}, b"\x00" * 8
        )
        with pytest.raises(ValueError, match="integer|dimension"):
            decode_packed_rows(frame)

    def test_payload_must_exactly_match_header(self, rng):
        matrix = rng.random((3, 10)) < 0.4
        good = encode_packed_rows(matrix)
        # One word (8 bytes) per row: short by a row, and long by a word.
        with pytest.raises(ValueError, match="truncated"):
            decode_packed_rows(good[:-8])
        with pytest.raises(ValueError, match="trailing"):
            decode_packed_rows(good + b"\x00" * 8)

    @pytest.mark.parametrize("n_items", [10, 70, 127])
    def test_set_padding_bits_rejected(self, rng, n_items):
        # decode(encode(x)) must be the ONLY accepted representation:
        # setting any padding bit of a row's final word is a malformed
        # frame, never a silent truncation.
        matrix = rng.random((4, n_items)) < 0.5
        good = bytearray(encode_packed_rows(matrix, {"model": "m"}))
        row_bytes = ((n_items + 63) // 64) * 8
        payload_start = len(good) - 4 * row_bytes
        # Highest byte of row 2's final word is pure padding for all the
        # parametrised widths (n_items % 64 < 57).
        victim = payload_start + 3 * row_bytes - 1
        good[victim] |= 0x80
        with pytest.raises(ValueError, match="padding"):
            decode_packed_rows(bytes(good))
        # The straddling byte's low bits are data, its high bits padding.
        if n_items % 8:
            good = bytearray(encode_packed_rows(matrix, {"model": "m"}))
            straddle = payload_start + (n_items // 8)
            good[straddle] |= 1 << 7  # top bit of the boundary byte
            with pytest.raises(ValueError, match="padding"):
                decode_packed_rows(bytes(good))

    def test_zero_item_frames_decode_and_reject_stray_payload(self):
        frame = self._frame({"n_rows": 1, "n_items": 0}, b"")
        __, matrix, right = decode_packed_rows(frame)
        assert matrix.shape == (1, 0) and right is None
        with pytest.raises(ValueError, match="trailing"):
            decode_packed_rows(self._frame({"n_rows": 1, "n_items": 0}, b"\x01"))


class TestSources:
    def test_feed_source_drains_then_stops(self):
        async def scenario():
            source = FeedSource()
            source.put_nowait([0, 1], [2])
            await source.put([3], [])
            source.close()
            return [row async for row in source]

        rows = asyncio.run(scenario())
        assert rows == [([0, 1], [2]), ([3], [])]

    def test_closed_feed_rejects_rows(self):
        async def scenario():
            source = FeedSource()
            source.close()
            with pytest.raises(RuntimeError, match="closed"):
                source.put_nowait([0], [0])

        asyncio.run(scenario())

    def test_jsonl_source_both_shapes(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text(
            json.dumps({"left": [0], "right": [1]})
            + "\n\n"
            + json.dumps([[2], [3]])
            + "\n"
        )

        async def drain():
            return [row async for row in JsonlSource(path)]

        assert asyncio.run(drain()) == [([0], [1]), ([2], [3])]

    def test_jsonl_source_parses_final_line_without_newline(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text(json.dumps({"left": [0], "right": [1]}))  # no \n

        async def drain():
            return [row async for row in JsonlSource(path)]

        assert asyncio.run(drain()) == [([0], [1])]

    def test_following_source_buffers_partial_lines(self, tmp_path):
        # A producer caught mid-write must not crash the follower; the
        # partial line is buffered until its newline lands.
        path = tmp_path / "rows.jsonl"
        full = json.dumps({"left": [0], "right": [1]})
        path.write_text(full[:7])

        async def scenario():
            source = JsonlSource(path, follow=True, poll_interval=0.01)
            rows = []

            async def consume():
                async for row in source:
                    rows.append(row)
                    source.stop()

            task = asyncio.create_task(consume())
            await asyncio.sleep(0.05)  # follower sees only the partial line
            assert rows == []
            with path.open("a") as stream:
                stream.write(full[7:] + "\n")
            await asyncio.wait_for(task, timeout=5.0)
            return rows

        assert asyncio.run(scenario()) == [([0], [1])]

    def test_stopped_follower_discards_incomplete_line(self, tmp_path):
        # stop() while the producer is mid-line must end cleanly — the
        # never-completed record is discarded, not parsed.
        path = tmp_path / "rows.jsonl"
        path.write_text(json.dumps({"left": [0], "right": [1]}) + '\n{"left": [2], "ri')

        async def scenario():
            source = JsonlSource(path, follow=True, poll_interval=0.01)
            rows = []
            async for row in source:
                rows.append(row)
                source.stop()
            return rows

        assert asyncio.run(scenario()) == [([0], [1])]

    def test_jsonl_source_rejects_garbage(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"left": 3, "right": []}\n')

        async def drain():
            return [row async for row in JsonlSource(path, strict=True)]

        with pytest.raises(ValueError, match="item-index lists"):
            asyncio.run(drain())

    def test_jsonl_source_lenient_skips_and_counts(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text(
            '{"left": [0], "right": [1]}\n'
            "not json at all\n"
            '{"left": 3, "right": []}\n'
            '{"left": [2], "right": [0]}\n'
        )
        source = JsonlSource(path)  # lenient is the default

        async def drain():
            return [row async for row in source]

        assert asyncio.run(drain()) == [([0], [1]), ([2], [0])]
        assert source.malformed_rows == 2

    def test_packed_source(self, tmp_path, rng):
        left = rng.random((6, 4)) < 0.5
        right = rng.random((6, 3)) < 0.5
        path = tmp_path / "rows.2vp"
        path.write_bytes(encode_packed_rows(left, right=right))

        async def drain():
            return [row async for row in PackedSource(path, max_rows=5)]

        rows = asyncio.run(drain())
        assert len(rows) == 5
        assert rows[0] == (
            np.flatnonzero(left[0]).tolist(),
            np.flatnonzero(right[0]).tolist(),
        )

    def test_packed_source_rejects_truncated_file(self, tmp_path, rng):
        path = tmp_path / "rows.2vp"
        frame = encode_packed_rows(
            rng.random((4, 3)) < 0.5, right=rng.random((4, 3)) < 0.5
        )
        path.write_bytes(frame[:-5])

        async def drain():
            return [row async for row in PackedSource(path)]

        with pytest.raises(ValueError, match="truncated"):
            asyncio.run(drain())

    def test_packed_source_requires_two_views(self, tmp_path, rng):
        path = tmp_path / "rows.2vp"
        path.write_bytes(encode_packed_rows(rng.random((2, 4)) < 0.5))

        async def drain():
            return [row async for row in PackedSource(path)]

        with pytest.raises(ValueError, match="both views"):
            asyncio.run(drain())


@pytest.fixture()
def crossed_registry(tmp_path):
    """Registry with a model fitted on the 'a' association."""
    assoc_a, assoc_b = crossed_pair()
    result = TranslatorExact().fit(assoc_a)
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(
        ModelArtifact.from_result("live", assoc_a, result, {"method": "exact"})
    )
    return registry, assoc_a, assoc_b


class TestBinaryPredict:
    def test_packed_predict_matches_json(self, crossed_registry, rng):
        registry, assoc_a, __ = crossed_registry
        service = PredictionService(registry, max_delay_ms=0.0)
        matrix = assoc_a.left[:12]
        rows = [np.flatnonzero(row).tolist() for row in matrix]
        body = encode_packed_rows(matrix, {"model": "live", "target": "R"})

        async def both():
            packed_status, packed = await service.handle("POST", "/predict", body)
            json_status, via_json = await service.handle(
                "POST",
                "/predict",
                json.dumps(
                    {"model": "live", "target": "R", "rows": rows}
                ).encode(),
            )
            return packed_status, packed, json_status, via_json

        packed_status, packed, json_status, via_json = asyncio.run(both())
        assert packed_status == 200 and json_status == 200
        assert packed["predictions"] == via_json["predictions"]
        assert packed["model"] == "live" and packed["version"] == 1

    def test_packed_predict_validation(self, crossed_registry, rng):
        registry, __, ___ = crossed_registry
        service = PredictionService(registry, max_delay_ms=0.0)

        async def status_of(body):
            status, __ = await service.handle("POST", "/predict", body)
            return status

        wide = encode_packed_rows(
            rng.random((2, 9)) < 0.5, {"model": "live", "target": "R"}
        )
        assert asyncio.run(status_of(wide)) == 400  # wrong vocabulary width
        anonymous = encode_packed_rows(rng.random((2, 2)) < 0.5)
        assert asyncio.run(status_of(anonymous)) == 400  # no model name
        ghost = encode_packed_rows(
            rng.random((2, 2)) < 0.5, {"model": "ghost"}
        )
        assert asyncio.run(status_of(ghost)) == 404
        truncated = encode_packed_rows(
            rng.random((2, 2)) < 0.5, {"model": "live"}
        )[:-1]
        assert asyncio.run(status_of(truncated)) == 400
        # Set padding bits and bad header dimensions are 400s (malformed
        # client input), never 500s.
        padded = bytearray(
            encode_packed_rows(rng.random((2, 2)) < 0.5, {"model": "live"})
        )
        padded[-1] |= 0x80  # padding bit of the last row's only word
        status, payload = asyncio.run(
            service.handle("POST", "/predict", bytes(padded))
        )
        assert status == 400 and "padding" in payload["error"]
        bogus = TestCodec._frame(
            {"model": "live", "n_rows": -1, "n_items": 2}, b""
        )
        assert asyncio.run(status_of(bogus)) == 400

    def test_packed_cache_key_includes_shape(self, crossed_registry):
        # A (2, 2) frame and an (invalid) (1, 4) frame with identical
        # decoded payload bytes must not collide in the response cache —
        # the second one has the wrong vocabulary width and must 400.
        registry, __, ___ = crossed_registry
        service = PredictionService(registry, max_delay_ms=0.0)
        bits = np.array([True, False, False, True])
        valid = encode_packed_rows(
            bits.reshape(2, 2), {"model": "live", "target": "R"}
        )
        colliding = encode_packed_rows(
            bits.reshape(1, 4), {"model": "live", "target": "R"}
        )

        async def scenario():
            ok_status, __ = await service.handle("POST", "/predict", valid)
            bad_status, ___ = await service.handle("POST", "/predict", colliding)
            return ok_status, bad_status

        ok_status, bad_status = asyncio.run(scenario())
        assert ok_status == 200
        assert bad_status == 400, "shape mismatch must not be served from cache"

    def test_packed_predict_cache_hits(self, crossed_registry):
        registry, assoc_a, __ = crossed_registry
        service = PredictionService(registry, max_delay_ms=0.0)
        body = encode_packed_rows(
            assoc_a.left[:4], {"model": "live", "target": "R"}
        )

        async def twice():
            first = await service.predict_packed(body)
            second = await service.predict_packed(body)
            return first, second

        first, second = asyncio.run(twice())
        assert first["cached"] is False and second["cached"] is True
        assert first["predictions"] == second["predictions"]


class TestPredictorEviction:
    def test_lru_bounds_resident_predictors(self, crossed_registry):
        registry, assoc_a, __ = crossed_registry
        result = TranslatorExact().fit(assoc_a)
        for __ in range(4):  # versions 2..5
            registry.publish(ModelArtifact.from_result("live", assoc_a, result))
        service = PredictionService(
            registry, max_delay_ms=0.0, cache_size=0, max_predictors=2
        )

        async def hit_all_versions():
            responses = []
            for version in (1, 2, 3, 4, 5, 1):  # 1 is evicted, then back
                responses.append(
                    await service.predict(
                        {
                            "model": "live",
                            "version": version,
                            "target": "R",
                            "rows": [[0]],
                        }
                    )
                )
            return responses

        responses = asyncio.run(hit_all_versions())
        assert len(service._predictors) <= 2
        assert [response["version"] for response in responses] == [
            1, 2, 3, 4, 5, 1,
        ]
        # Same model, so every version answers identically.
        assert responses[0]["predictions"] == responses[-1]["predictions"]

    def test_max_predictors_validation(self, crossed_registry):
        registry, __, ___ = crossed_registry
        with pytest.raises(ValueError, match="max_predictors"):
            PredictionService(registry, max_predictors=0)


class TestRegistryRace:
    def test_transiently_missing_pointer_is_retried(
        self, crossed_registry, monkeypatch
    ):
        registry, __, ___ = crossed_registry
        real_read = Path.read_text
        calls = {"failures": 0}

        def flaky(self, *args, **kwargs):
            if self.name == "LATEST" and calls["failures"] == 0:
                calls["failures"] += 1
                raise FileNotFoundError(str(self))  # publisher mid-swap
            return real_read(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", flaky)
        assert registry.latest_version("live") == 1
        assert calls["failures"] == 1, "the first read must have been retried"

    def test_pointer_ahead_of_directory_scan_is_trusted(
        self, crossed_registry, monkeypatch
    ):
        registry, assoc_a, __ = crossed_registry
        result = TranslatorExact().fit(assoc_a)
        # Scans see only v1, the pointer says v2: simulates a publisher
        # finishing between the scan and the pointer read.
        real_versions = ModelRegistry.versions
        state = {"first": True}

        def stale_once(self, name):
            versions = real_versions(self, name)
            if state["first"]:
                state["first"] = False
                return versions[:1]
            return versions

        registry.publish(ModelArtifact.from_result("live", assoc_a, result))
        monkeypatch.setattr(ModelRegistry, "versions", stale_once)
        assert registry.latest_version("live") == 2

    def test_concurrent_publishes_never_break_readers(self, crossed_registry):
        registry, assoc_a, __ = crossed_registry
        result = TranslatorExact().fit(assoc_a)
        stop = threading.Event()
        errors = []

        def publisher():
            try:
                for __ in range(5):
                    registry.publish(
                        ModelArtifact.from_result("live", assoc_a, result)
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)
            finally:
                stop.set()

        thread = threading.Thread(target=publisher)
        thread.start()
        seen = set()
        while not stop.is_set():
            seen.add(registry.latest_version("live"))
        thread.join()
        assert not errors
        assert seen <= {1, 2, 3, 4, 5, 6}
        assert registry.latest_version("live") == 6


class TestMaintenanceLoop:
    def test_bootstrap_publish_and_stable_stream(self, tmp_path):
        assoc_a, __ = crossed_pair(240)
        registry = ModelRegistry(tmp_path / "registry")
        buffer = StreamBuffer(2, 2)

        async def scenario():
            source = FeedSource()
            for row in range(240):
                source.put_nowait(
                    np.flatnonzero(assoc_a.left[row]).tolist(),
                    np.flatnonzero(assoc_a.right[row]).tolist(),
                )
            source.close()
            loop = MaintenanceLoop(
                source,
                buffer,
                registry,
                "live",
                TranslatorExact(),
                policy=RefitPolicy(window=80, check_every=40, min_rows=40),
            )
            await loop.run()
            return loop

        loop = asyncio.run(scenario())
        assert loop.rows_seen == 240
        # Bootstrap published v1; the stationary stream never drifts.
        assert registry.latest_version("live") == 1
        published = [event for event in loop.events if event.published]
        assert len(published) == 1 and published[0].report is None
        assert all(
            not event.report.drifted
            for event in loop.events
            if event.report is not None
        )

    def test_tumbling_window_clears_between_blocks(self, tmp_path):
        assoc_a, __ = crossed_pair(200)
        registry = ModelRegistry(tmp_path / "registry")
        buffer = StreamBuffer(2, 2)

        async def scenario():
            source = FeedSource()
            for row in range(200):
                source.put_nowait(
                    np.flatnonzero(assoc_a.left[row]).tolist(),
                    np.flatnonzero(assoc_a.right[row]).tolist(),
                )
            source.close()
            loop = MaintenanceLoop(
                source,
                buffer,
                registry,
                "live",
                TranslatorExact(),
                policy=RefitPolicy(
                    window=80, policy="tumbling", min_rows=40
                ),
            )
            await loop.run()
            return loop

        loop = asyncio.run(scenario())
        # 200 rows = 2 full blocks of 80 plus a final partial block of 40.
        assert len(loop.events) == 3
        assert len(buffer) == 40  # the final partial block stays buffered

    def test_short_sliding_stream_still_bootstraps(self, tmp_path):
        # Fewer rows than check_every must still produce a model on
        # drain (the final-check path).
        assoc_a, __ = crossed_pair(100)
        registry = ModelRegistry(tmp_path / "registry")

        async def scenario():
            source = FeedSource()
            for row in range(100):
                source.put_nowait(
                    np.flatnonzero(assoc_a.left[row]).tolist(),
                    np.flatnonzero(assoc_a.right[row]).tolist(),
                )
            source.close()
            loop = MaintenanceLoop(
                source,
                StreamBuffer(2, 2),
                registry,
                "live",
                TranslatorExact(),
                policy=RefitPolicy(window=256, check_every=128, min_rows=64),
            )
            await loop.run()
            return loop

        loop = asyncio.run(scenario())
        assert registry.latest_version("live") == 1
        assert loop.published_version == 1

    def test_structureless_stream_does_not_republish(self, tmp_path):
        # Significance drift on a stream with no cross-view structure is
        # reported but must not republish an equally useless model on
        # every check (the registry would grow without bound).
        rng = np.random.default_rng(3)
        registry = ModelRegistry(tmp_path / "registry")

        async def scenario():
            source = FeedSource()
            for __ in range(240):
                source.put_nowait(
                    np.flatnonzero(rng.random(4) < 0.3).tolist(),
                    np.flatnonzero(rng.random(4) < 0.3).tolist(),
                )
            source.close()
            loop = MaintenanceLoop(
                source,
                StreamBuffer(4, 4),
                registry,
                "live",
                TranslatorExact(),
                policy=RefitPolicy(window=80, check_every=40, min_rows=40),
            )
            await loop.run()
            return loop

        loop = asyncio.run(scenario())
        significance_events = [
            event
            for event in loop.events
            if event.report is not None and event.report.reason == "significance"
        ]
        assert significance_events, "noise should trip the significance trigger"
        # Significance-only drift is reported but never publishes; only
        # a candidate that measurably improves on the published table
        # (degradation trigger) earns a new version.
        for event in significance_events:
            assert not event.published
        for event in loop.events[1:]:  # event 0 is the bootstrap
            if event.published:
                assert event.report.reason == "degradation"
                assert event.report.degradation > 0.02

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="unknown window policy"):
            RefitPolicy(policy="hopping")
        with pytest.raises(ValueError, match="at least min_rows"):
            RefitPolicy(window=32, min_rows=64)

    def test_e2e_hot_swap_of_live_server(self, crossed_registry):
        """Drifted rows -> new version published -> /predict answers
        change, with the HTTP server running the whole time."""
        registry, assoc_a, assoc_b = crossed_registry
        service = PredictionService(
            registry, max_delay_ms=0.0, cache_size=0, latest_ttl_seconds=0.0
        )
        server = PredictionServer(service, port=0)
        probe = json.dumps(
            {"model": "live", "target": "R", "rows": [[0]]}
        ).encode()

        async def call_predict() -> dict:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /predict HTTP/1.1\r\nContent-Length: "
                + str(len(probe)).encode()
                + b"\r\n\r\n"
                + probe
            )
            await writer.drain()
            response = await reader.read()
            writer.close()
            head, __, body = response.partition(b"\r\n\r\n")
            assert int(head.split()[1]) == 200
            return json.loads(body)

        async def scenario():
            await server.start()
            try:
                before = await call_predict()
                source = FeedSource()
                for row in range(assoc_b.n_transactions):
                    source.put_nowait(
                        np.flatnonzero(assoc_b.left[row]).tolist(),
                        np.flatnonzero(assoc_b.right[row]).tolist(),
                    )
                source.close()
                loop = MaintenanceLoop(
                    source,
                    StreamBuffer(2, 2),
                    registry,
                    "live",
                    TranslatorExact(),
                    policy=RefitPolicy(window=80, check_every=40, min_rows=40),
                )
                await loop.run()
                after = await call_predict()
                return before, after, loop
            finally:
                await server.stop()

        before, after, loop = asyncio.run(scenario())
        assert before["version"] == 1
        assert after["version"] > 1, "the loop must have published a version"
        assert before["predictions"] != after["predictions"], (
            "the hot-swapped model must answer the probe differently"
        )
        # Under association a, L0 predicts R0; under b it predicts R1.
        assert before["predictions"][0] == [0]
        assert after["predictions"][0] == [1]
        drift_reports = [
            event.report for event in loop.events if event.report is not None
        ]
        assert any(report.drifted for report in drift_reports)


class TestStreamCli:
    def test_jsonl_stream_publishes(self, tmp_path, capsys):
        from repro.cli import main

        assoc_a, __ = crossed_pair(200)
        rows_path = tmp_path / "rows.jsonl"
        rows_path.write_text(
            "\n".join(
                json.dumps(
                    {
                        "left": np.flatnonzero(assoc_a.left[row]).tolist(),
                        "right": np.flatnonzero(assoc_a.right[row]).tolist(),
                    }
                )
                for row in range(200)
            )
        )
        registry_dir = tmp_path / "registry"
        assert main([
            "stream", str(rows_path), "--registry", str(registry_dir),
            "--name", "live", "--n-left", "2", "--n-right", "2",
            "--window", "80", "--check-every", "40", "--min-rows", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "published v1" in out
        assert ModelRegistry(registry_dir).latest_version("live") == 1

    def test_requires_vocabulary(self, tmp_path, capsys):
        from repro.cli import main

        rows_path = tmp_path / "rows.jsonl"
        rows_path.write_text("")
        assert main([
            "stream", str(rows_path), "--registry", str(tmp_path / "r"),
            "--name", "live",
        ]) == 2
        assert "--vocab-from" in capsys.readouterr().err

    def test_follow_rejected_for_packed_sources(self, tmp_path, capsys, rng):
        from repro.cli import main

        path = tmp_path / "rows.2vp"
        path.write_bytes(
            encode_packed_rows(
                rng.random((2, 2)) < 0.5, right=rng.random((2, 2)) < 0.5
            )
        )
        assert main([
            "stream", str(path), "--registry", str(tmp_path / "r"),
            "--name", "live", "--n-left", "2", "--n-right", "2", "--follow",
        ]) == 2
        assert "only supported for JSONL" in capsys.readouterr().err
