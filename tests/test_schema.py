"""Invertible-schema tests (``pytest -m multiview_smoke``).

The MDL/equal-height binning pipeline emits
:class:`~repro.data.schema.ViewSchema` provenance that must (a) render
items in original units, (b) invert back to the exact discretiser edges,
and (c) survive every serialisation carrier — table JSON, model
artifacts, binary sidecars, ``.2v`` files — byte-identically, with
legacy schema-less documents still loading.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorSelect
from repro.data.dataset import Side, TwoViewDataset
from repro.data.io import load_dataset, save_dataset
from repro.data.preprocessing import (
    boolean_frame_schema,
    equal_height_edges,
    frame_to_two_view,
)
from repro.data.schema import ItemSchema, ViewSchema
from repro.serve.artifact import ModelArtifact
from repro.serve.binfmt import map_artifact, write_compiled
from repro.serve.registry import ModelRegistry
from repro.serve.server import PredictionService

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_schema  # noqa: E402

pytestmark = pytest.mark.multiview_smoke


@pytest.fixture
def mixed_dataset() -> TwoViewDataset:
    rng = np.random.default_rng(7)
    n = 200
    left = {
        "age": rng.normal(40, 12, n),
        "income": rng.lognormal(10, 0.4, n),
        "city": rng.choice(["oslo", "turku"], n),
    }
    right = {
        "score": rng.normal(0, 1, n),
        "grade": rng.choice(["a", "b"], n),
    }
    return frame_to_two_view(
        left, right, discretize="mdl", units={"age": "yr"}, name="mixed"
    )


class TestItemSchema:
    def test_numeric_label_half_open(self):
        item = ItemSchema("age=bin0", "age", "numeric", lo=30.0, hi=45.0)
        assert item.label() == "age ∈ [30, 45)"

    def test_numeric_label_closed_with_unit(self):
        item = ItemSchema(
            "age=bin4", "age", "numeric", lo=60.0, hi=81.0, closed_hi=True, unit="yr"
        )
        assert item.label() == "age ∈ [60, 81] yr"

    def test_category_and_flag_labels(self):
        assert ItemSchema("c=red", "c", "category", value="red").label() == "c = red"
        assert ItemSchema("vip", "vip", "flag").label() == "vip"

    def test_contains_respects_bounds(self):
        half_open = ItemSchema("x=bin0", "x", "numeric", lo=0.0, hi=1.0)
        assert half_open.contains(0.0) and not half_open.contains(1.0)
        closed = ItemSchema("x=bin1", "x", "numeric", lo=1.0, hi=2.0, closed_hi=True)
        assert closed.contains(2.0)

    def test_dict_roundtrip(self):
        for item in (
            ItemSchema("a=bin0", "a", "numeric", lo=1.0, hi=2.0, unit="kg"),
            ItemSchema("c=x", "c", "category", value="x"),
            ItemSchema("f", "f", "flag"),
        ):
            assert ItemSchema.from_dict(item.to_dict()) == item


class TestInvertibility:
    """Acceptance (b): rendered intervals map back to the exact edges."""

    def test_bin_edges_reconstruct_discretizer_edges(self):
        rng = np.random.default_rng(3)
        values = rng.normal(50, 9, 300)
        matrix, schema = boolean_frame_schema({"age": values}, n_bins=5)
        edges = equal_height_edges(values, n_bins=5)
        assert schema.bin_edges("age") == pytest.approx(list(edges))
        # And every value lands inside the bin its item claims.
        for column in range(matrix.shape[1]):
            item = schema[column]
            for value in values[matrix[:, column]]:
                assert item.contains(value)

    def test_mdl_bins_are_contiguous_and_exhaustive(self, mixed_dataset):
        schema = mixed_dataset.left_schema
        edges = schema.bin_edges("age")
        assert edges == sorted(edges) and len(edges) >= 2
        items = [schema[index] for index in schema.items_for("age")]
        items.sort(key=lambda item: item.lo)
        assert [item.lo for item in items[1:]] == [item.hi for item in items[:-1]]

    def test_rules_render_in_original_units(self, mixed_dataset):
        result = TranslatorSelect(k=1, minsup=5).fit(mixed_dataset)
        rendered = result.table.render(mixed_dataset)
        assert "bin" not in rendered
        assert "∈ [" in rendered or " = " in rendered
        if "age" in rendered:
            assert "yr" in rendered


class TestViewSchemaPayload:
    def test_payload_roundtrip_byte_equality(self, mixed_dataset):
        for schema in (mixed_dataset.left_schema, mixed_dataset.right_schema):
            payload = schema.to_payload()
            rebuilt = ViewSchema.from_payload(payload)
            assert json.dumps(payload, sort_keys=True) == json.dumps(
                rebuilt.to_payload(), sort_keys=True
            )

    def test_future_version_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            ViewSchema.from_payload({"schema_version": 99, "items": []})

    def test_lint_script_passes(self):
        assert check_schema.schema_roundtrip_failures() == []


class TestTablePayload:
    """Acceptance (c): legacy schema-less payloads load unchanged."""

    def test_schemaless_table_emits_v2_unchanged(self):
        table = TranslationTable([TranslationRule((0,), (1,), "->")])
        payload = table.to_payload()
        assert payload["schema_version"] == 2
        assert "schema" not in payload

    def test_schema_table_roundtrip(self, mixed_dataset):
        table = TranslationTable(
            [TranslationRule((0,), (1,), "->")],
            left_schema=mixed_dataset.left_schema,
            right_schema=mixed_dataset.right_schema,
        )
        payload = table.to_payload()
        assert payload["schema_version"] == 3
        loaded = TranslationTable.from_payload(payload)
        assert loaded == table
        assert loaded.left_schema.to_payload() == mixed_dataset.left_schema.to_payload()

    def test_legacy_v1_list_still_loads(self):
        legacy = [TranslationRule((0,), (1,), "->").to_dict()]
        table = TranslationTable.from_payload(legacy)
        assert len(table) == 1 and table.left_schema is None


class TestArtifactAndSidecar:
    def _artifact(self, dataset: TwoViewDataset) -> ModelArtifact:
        result = TranslatorSelect(k=1, minsup=5).fit(dataset)
        return ModelArtifact.from_result("mixed", dataset, result)

    def test_artifact_carries_schemas(self, mixed_dataset):
        artifact = self._artifact(mixed_dataset)
        rebuilt = ModelArtifact.from_payload(artifact.payload())
        assert rebuilt.left_schema.label(0) == mixed_dataset.left_schema.label(0)

    def test_schemaless_artifact_payload_has_no_schema_key(self, mixed_dataset):
        bare = TwoViewDataset(
            mixed_dataset.left,
            mixed_dataset.right,
            mixed_dataset.left_names,
            mixed_dataset.right_names,
        )
        artifact = self._artifact(bare)
        payload = artifact.payload()
        assert "schema" not in payload
        assert ModelArtifact.from_payload(payload).left_schema is None

    def test_sidecar_schema_block_roundtrip(self, mixed_dataset, tmp_path):
        artifact = self._artifact(mixed_dataset).with_version(1)
        path = tmp_path / "compiled.bin"
        write_compiled(artifact, path)
        with map_artifact(path) as mapped:
            schema = mapped.schema(Side.LEFT)
            assert schema is not None
            assert schema.label(0) == mixed_dataset.left_schema.label(0)

    def test_legacy_sidecar_without_schema_loads(self, mixed_dataset, tmp_path):
        bare = TwoViewDataset(
            mixed_dataset.left,
            mixed_dataset.right,
            mixed_dataset.left_names,
            mixed_dataset.right_names,
        )
        artifact = self._artifact(bare).with_version(1)
        path = tmp_path / "compiled.bin"
        write_compiled(artifact, path)
        with map_artifact(path) as mapped:
            assert mapped.schema(Side.LEFT) is None
            assert mapped.schema(Side.RIGHT) is None


class TestTwoViewIO:
    def test_2v_roundtrip_preserves_schemas(self, mixed_dataset, tmp_path):
        path = tmp_path / "mixed.2v"
        save_dataset(mixed_dataset, path)
        loaded = load_dataset(path)
        assert loaded == mixed_dataset
        assert (
            loaded.left_schema.to_payload()
            == mixed_dataset.left_schema.to_payload()
        )
        assert (
            loaded.right_schema.to_payload()
            == mixed_dataset.right_schema.to_payload()
        )

    def test_legacy_2v_without_schema_lines_loads(self, mixed_dataset, tmp_path):
        path = tmp_path / "mixed.2v"
        save_dataset(mixed_dataset, path)
        stripped = "\n".join(
            line
            for line in path.read_text(encoding="utf-8").splitlines()
            if not line.startswith("#schema-")
        )
        path.write_text(stripped + "\n", encoding="utf-8")
        loaded = load_dataset(path)
        assert loaded == mixed_dataset
        assert loaded.left_schema is None and loaded.right_schema is None


class TestServerRendering:
    def test_predict_render_flag(self, mixed_dataset, tmp_path):
        result = TranslatorSelect(k=1, minsup=5).fit(mixed_dataset)
        artifact = ModelArtifact.from_result("mixed", mixed_dataset, result)
        registry = ModelRegistry(tmp_path)
        registry.publish(artifact)
        service = PredictionService(registry)

        async def scenario():
            request = {"model": "mixed", "rows": [[0, 1], []], "render": True}
            first = await service.predict(request)
            assert len(first["rendered"]) == 2
            for row_labels, row_items in zip(
                first["rendered"], first["predictions"]
            ):
                assert row_labels == [
                    mixed_dataset.right_schema.label(item) for item in row_items
                ]
            # The cache stores the unrendered document; rendering is
            # re-attached on hits and absent without the flag.
            second = await service.predict(request)
            assert second["cached"] and second["rendered"] == first["rendered"]
            plain = await service.predict({"model": "mixed", "rows": [[0, 1], []]})
            assert plain["cached"] and "rendered" not in plain

        asyncio.run(scenario())

    def test_predict_render_must_be_boolean(self, mixed_dataset, tmp_path):
        result = TranslatorSelect(k=1, minsup=5).fit(mixed_dataset)
        registry = ModelRegistry(tmp_path)
        registry.publish(ModelArtifact.from_result("mixed", mixed_dataset, result))
        service = PredictionService(registry)
        with pytest.raises(ValueError, match="render"):
            asyncio.run(
                service.predict({"model": "mixed", "rows": [[0]], "render": "yes"})
            )
