"""Bit-identity of the sharded (``n_jobs > 1``) search and beam paths.

Companion to ``tests/test_search_kernels.py``: where that file pins the
``bool``/``bitset`` kernel equivalence, this one pins the serial /
sharded equivalence.  The contract (see :mod:`repro.core.search`) is
that the *returned rule and gain* — and therefore every fitted model —
are bit-identical to ``n_jobs=1`` on both kernels; pruning statistics
may legitimately differ (shards explore with weaker incumbents), so
they are not compared.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.core.beam import TranslatorBeam
from repro.core.search import ExactRuleSearch
from repro.core.state import CoverState
from repro.core.translator import TranslatorExact
from repro.runtime.executor import ParallelExecutor
from tests.conftest import random_two_view
from tests.test_properties import SETTINGS, datasets

KERNELS = ("bool", "bitset")


def best_rule(state, kernel, **kwargs):
    rule, gain, stats = ExactRuleSearch(state, kernel=kernel, **kwargs).find_best_rule()
    return rule, gain, stats


class TestShardedSearchIdentity:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("seed", range(5))
    def test_random_datasets(self, kernel, seed):
        rng = np.random.default_rng(seed)
        dataset = random_two_view(rng, n=45, n_left=6, n_right=6, density=0.35)
        state = CoverState(dataset)
        serial_rule, serial_gain, __ = best_rule(state, kernel)
        for n_jobs in (2, 3):
            rule, gain, stats = best_rule(state, kernel, n_jobs=n_jobs)
            assert (rule, gain) == (serial_rule, serial_gain)
            assert stats.shards > 1

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_after_rules_added(self, planted_dataset, kernel):
        state = CoverState(planted_dataset)
        for __ in range(3):
            serial_rule, serial_gain, __stats = best_rule(state, kernel)
            rule, gain, __stats = best_rule(state, kernel, n_jobs=4)
            assert (rule, gain) == (serial_rule, serial_gain)
            if serial_rule is None:
                break
            state.add_rule(serial_rule)

    @pytest.mark.parametrize("flags", [
        {"use_rub": False},
        {"use_qub": False},
        {"order_items": False},
        {"seed_pairs": False},
        {"max_rule_size": 2},
        {"max_rule_size": 4},
    ])
    def test_flags(self, flags):
        rng = np.random.default_rng(77)
        dataset = random_two_view(rng, n=40, n_left=5, n_right=5, density=0.4)
        state = CoverState(dataset)
        for kernel in KERNELS:
            serial = best_rule(state, kernel, **flags)[:2]
            sharded = best_rule(state, kernel, n_jobs=3, **flags)[:2]
            assert serial == sharded

    @SETTINGS
    @given(datasets(max_n=15, max_items=4))
    def test_hypothesis_datasets(self, dataset):
        state = CoverState(dataset)
        for kernel in KERNELS:
            serial = best_rule(state, kernel)[:2]
            sharded = best_rule(state, kernel, n_jobs=2)[:2]
            assert serial == sharded

    def test_node_budget_forces_serial(self, planted_dataset):
        state = CoverState(planted_dataset)
        serial = best_rule(state, "bitset", max_nodes=100)
        with pytest.warns(UserWarning, match="n_jobs=4 is ignored"):
            budgeted = best_rule(state, "bitset", max_nodes=100, n_jobs=4)
        # Anytime budgets are order-dependent: the sharded path must
        # refuse to engage, returning the serial outcome exactly,
        # statistics included.
        assert budgeted[:2] == serial[:2]
        assert budgeted[2].shards == 1
        assert budgeted[2].nodes_visited == serial[2].nodes_visited

    def test_explicit_executor_is_used(self, planted_dataset):
        state = CoverState(planted_dataset)
        executor = ParallelExecutor(n_jobs=2, backend="thread", chunk_size=1)
        serial = best_rule(state, "bitset")[:2]
        via_executor = best_rule(state, "bitset", executor=executor)[:2]
        assert via_executor == serial


class TestTranslatorParallelIdentity:
    def test_exact_fit_identical(self, planted_dataset):
        serial = TranslatorExact(max_rule_size=3).fit(planted_dataset)
        sharded = TranslatorExact(max_rule_size=3, n_jobs=4).fit(planted_dataset)
        assert [(r.rule, r.gain) for r in serial.history] == [
            (r.rule, r.gain) for r in sharded.history
        ]
        assert serial.total_bits == sharded.total_bits
        assert all(stats.shards > 1 for stats in sharded.search_stats)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_beam_fit_identical(self, planted_dataset, kernel):
        serial = TranslatorBeam(max_iterations=3, kernel=kernel).fit(planted_dataset)
        for n_jobs in (2, 4):
            parallel = TranslatorBeam(
                max_iterations=3, kernel=kernel, n_jobs=n_jobs
            ).fit(planted_dataset)
            assert list(serial.table) == list(parallel.table)
            assert [r.gain for r in serial.history] == [
                r.gain for r in parallel.history
            ]

    def test_sweep_cells_can_shard_their_fits(self, planted_dataset):
        # n_jobs rides through the sweep engine's params like any other
        # constructor argument.
        from repro.runtime.sweep import SweepTask, run_sweep

        spec = {
            "synthetic": {
                "n_transactions": 80, "n_left": 6, "n_right": 6, "n_rules": 3,
            }
        }
        serial_task = SweepTask(
            dataset=spec, method="exact", params={"max_rule_size": 3}
        )
        sharded_task = SweepTask(
            dataset=spec, method="exact",
            params={"max_rule_size": 3, "n_jobs": 2},
        )
        serial, sharded = run_sweep([serial_task, sharded_task]).results
        assert serial["rules"] == sharded["rules"]
        assert serial["compression_ratio"] == sharded["compression_ratio"]
