"""Tests for rule statistics and ranking (repro.eval.ranking)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorSelect
from repro.data.dataset import Side, TwoViewDataset
from repro.eval.ranking import focus_item_rules, rank_rules, rule_stats


@pytest.fixture
def simple_dataset() -> TwoViewDataset:
    # Items: left {a, b}, right {x, y}.  'a' and 'x' co-occur perfectly in
    # 4 rows; 'b' and 'y' co-occur in 1 of 2 'b' rows.
    return TwoViewDataset.from_transactions(
        [
            ({"a"}, {"x"}),
            ({"a"}, {"x"}),
            ({"a"}, {"x"}),
            ({"a", "b"}, {"x", "y"}),
            ({"b"}, {}),
            ({}, {"y"}),
        ],
        left_names=["a", "b"],
        right_names=["x", "y"],
        name="simple",
    )


def rule_ax(direction=Direction.BOTH) -> TranslationRule:
    return TranslationRule((0,), (0,), direction)


def rule_by(direction=Direction.FORWARD) -> TranslationRule:
    return TranslationRule((1,), (1,), direction)


class TestRuleStats:
    def test_supports(self, simple_dataset):
        stats = rule_stats(simple_dataset, rule_ax())
        assert stats.support_lhs == 4
        assert stats.support_rhs == 4
        assert stats.support_joint == 4

    def test_confidences(self, simple_dataset):
        stats = rule_stats(simple_dataset, rule_ax())
        assert stats.confidence_forward == pytest.approx(1.0)
        assert stats.confidence_backward == pytest.approx(1.0)
        assert stats.max_confidence == pytest.approx(1.0)
        weaker = rule_stats(simple_dataset, rule_by())
        assert weaker.confidence_forward == pytest.approx(0.5)
        assert weaker.max_confidence == pytest.approx(0.5)

    def test_lift(self, simple_dataset):
        stats = rule_stats(simple_dataset, rule_ax())
        # supp 4, expected 4*4/6 -> lift 1.5.
        assert stats.lift == pytest.approx(4 / (4 * 4 / 6))

    def test_lift_zero_when_no_joint_support(self):
        dataset = TwoViewDataset(
            np.array([[True], [False]]), np.array([[False], [True]])
        )
        stats = rule_stats(dataset, TranslationRule((0,), (0,), Direction.FORWARD))
        assert stats.lift == 0.0

    def test_coverage_counts_both_directions(self, simple_dataset):
        bidirectional = rule_stats(simple_dataset, rule_ax(Direction.BOTH))
        forward_only = rule_stats(simple_dataset, rule_ax(Direction.FORWARD))
        assert bidirectional.coverage_cells == 2 * forward_only.coverage_cells

    def test_encoded_bits_positive(self, simple_dataset):
        assert rule_stats(simple_dataset, rule_ax()).encoded_bits > 0

    def test_render_contains_rule_and_stats(self, simple_dataset):
        text = rule_stats(simple_dataset, rule_ax()).render(simple_dataset)
        assert "c+" in text and "{a}" in text


class TestRankRules:
    def make_table(self) -> TranslationTable:
        table = TranslationTable()
        table.add(rule_ax())
        table.add(rule_by())
        return table

    def test_rank_by_confidence(self, simple_dataset):
        ranked = rank_rules(simple_dataset, self.make_table(), by="confidence")
        assert ranked[0].rule == rule_ax()
        assert ranked[0].max_confidence >= ranked[1].max_confidence

    def test_rank_by_support(self, simple_dataset):
        ranked = rank_rules(simple_dataset, self.make_table(), by="support")
        supports = [record.support_joint for record in ranked]
        assert supports == sorted(supports, reverse=True)

    def test_rank_by_gain_fills_gain_bits(self, simple_dataset):
        ranked = rank_rules(simple_dataset, self.make_table(), by="gain")
        assert all(record.gain_bits is not None for record in ranked)
        gains = [record.gain_bits for record in ranked]
        assert gains == sorted(gains, reverse=True)

    def test_gain_matches_total_length_difference(self, simple_dataset):
        """Removal gain must equal the recomputed length difference."""
        from repro.core.encoding import CodeLengthModel
        from repro.core.state import CoverState

        table = self.make_table()
        ranked = rank_rules(simple_dataset, table, by="gain")
        codes = CodeLengthModel(simple_dataset)
        full = CoverState(simple_dataset, codes)
        for rule in table:
            full.add_rule(rule)
        for record in ranked:
            without = CoverState(simple_dataset, codes)
            for rule in table:
                if rule != record.rule:
                    without.add_rule(rule)
            expected = without.total_length() - full.total_length()
            assert record.gain_bits == pytest.approx(expected)

    def test_ascending_order(self, simple_dataset):
        ranked = rank_rules(
            simple_dataset, self.make_table(), by="support", descending=False
        )
        supports = [record.support_joint for record in ranked]
        assert supports == sorted(supports)

    def test_unknown_key_rejected(self, simple_dataset):
        with pytest.raises(ValueError, match="unknown ranking key"):
            rank_rules(simple_dataset, self.make_table(), by="sparkle")

    def test_fitted_table_gain_ranking(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=3).fit(planted_dataset)
        ranked = rank_rules(planted_dataset, result.table, by="gain")
        assert len(ranked) == result.n_rules
        # Every accepted rule earns its keep: removal would cost bits.
        assert all(record.gain_bits > 0 for record in ranked)


class TestFocusItemRules:
    def test_finds_rules_with_item(self, simple_dataset):
        table = TranslationTable()
        table.add(rule_ax())
        table.add(rule_by())
        found = focus_item_rules(table, simple_dataset, "a")
        assert found == [rule_ax()]

    def test_right_side_lookup(self, simple_dataset):
        table = TranslationTable()
        table.add(rule_ax())
        found = focus_item_rules(table, simple_dataset, "x", side=Side.RIGHT)
        assert found == [rule_ax()]

    def test_unknown_item_raises(self, simple_dataset):
        with pytest.raises(KeyError, match="not found"):
            focus_item_rules(TranslationTable(), simple_dataset, "zzz")

    def test_rule_not_duplicated_when_item_in_both_views(self):
        dataset = TwoViewDataset(
            np.ones((2, 1), dtype=bool),
            np.ones((2, 1), dtype=bool),
            left_names=["shared"],
            right_names=["shared"],
        )
        table = TranslationTable()
        table.add(TranslationRule((0,), (0,), Direction.BOTH))
        found = focus_item_rules(table, dataset, "shared")
        assert len(found) == 1
