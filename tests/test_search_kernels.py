"""Kernel-equivalence tests: bool and bitset searches must agree exactly.

The contract of :mod:`repro.core.search` is that the two support kernels
return *identical* rules, gains and statistics — not merely approximately
equal ones (the fixed-point scoring makes every bound an exact integer).
These tests assert ``==`` on everything, across random datasets, the
shared fixtures, partially covered states, ablation flags, anytime
budgets and both mining backends.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.beam import TranslatorBeam
from repro.core.search import ExactRuleSearch, SearchCache
from repro.core.state import CoverState
from repro.core.translator import TranslatorExact, TranslatorGreedy, TranslatorSelect
from repro.mining.closed import closed_itemsets
from repro.mining.eclat import eclat
from repro.mining.twoview import two_view_candidates
from tests.conftest import random_two_view
from tests.test_properties import SETTINGS, datasets

KERNELS = ("bool", "bitset")


def search_outcome(state, kernel, **kwargs):
    rule, gain, stats = ExactRuleSearch(state, kernel=kernel, **kwargs).find_best_rule()
    payload = dataclasses.asdict(stats)
    payload.pop("kernel")
    # The gap bound of a budget-interrupted search is sound on both
    # kernels but kernel-dependent in tightness (the bitset kernel has
    # the per-child frontier bound), so it is not part of the
    # bit-identity contract.  Complete searches must report exactly 0.
    gap_bound = payload.pop("gap_bound")
    assert gap_bound >= 0.0
    if payload["complete"]:
        assert gap_bound == 0.0
    return rule, gain, payload


class TestSearchKernelEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_datasets(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_two_view(rng, n=40, n_left=6, n_right=6, density=0.35)
        state = CoverState(dataset)
        assert search_outcome(state, "bool") == search_outcome(state, "bitset")

    def test_fixture_datasets(self, toy_dataset, planted_dataset):
        for dataset in (toy_dataset, planted_dataset):
            state = CoverState(dataset)
            assert search_outcome(state, "bool") == search_outcome(state, "bitset")

    def test_after_rules_added(self, planted_dataset):
        state = CoverState(planted_dataset)
        for __ in range(3):
            rule, __gain, __stats = ExactRuleSearch(state).find_best_rule()
            if rule is None:
                break
            state.add_rule(rule)
            assert search_outcome(state, "bool") == search_outcome(state, "bitset")

    @pytest.mark.parametrize("flags", [
        {"use_rub": False},
        {"use_qub": False},
        {"order_items": False},
        {"seed_pairs": False},
        {"use_rub": False, "use_qub": False, "order_items": False, "seed_pairs": False},
        {"max_rule_size": 2},
        {"max_rule_size": 3},
        {"max_nodes": 25},
    ])
    def test_flags(self, flags):
        rng = np.random.default_rng(123)
        dataset = random_two_view(rng, n=35, n_left=5, n_right=5, density=0.4)
        state = CoverState(dataset)
        assert search_outcome(state, "bool", **flags) == search_outcome(
            state, "bitset", **flags
        )

    @SETTINGS
    @given(datasets(max_n=15, max_items=4))
    def test_hypothesis_datasets(self, dataset):
        state = CoverState(dataset)
        assert search_outcome(state, "bool") == search_outcome(state, "bitset")

    def test_shared_cache_matches_private_cache(self, planted_dataset):
        state = CoverState(planted_dataset)
        cache = SearchCache(planted_dataset)
        with_cache = ExactRuleSearch(state, kernel="bitset", cache=cache).find_best_rule()
        without = ExactRuleSearch(state, kernel="bitset").find_best_rule()
        assert with_cache == without

    def test_cache_dataset_mismatch_rejected(self, toy_dataset, planted_dataset):
        cache = SearchCache(toy_dataset)
        state = CoverState(planted_dataset)
        with pytest.raises(ValueError):
            ExactRuleSearch(state, cache=cache)

    def test_unknown_kernel_rejected(self, toy_dataset):
        with pytest.raises(ValueError):
            ExactRuleSearch(CoverState(toy_dataset), kernel="simd")


class TestTranslatorKernelEquivalence:
    def test_exact_fit_identical(self, planted_dataset):
        results = {
            kernel: TranslatorExact(kernel=kernel).fit(planted_dataset)
            for kernel in KERNELS
        }
        bool_result, bitset_result = results["bool"], results["bitset"]
        assert [r.rule for r in bool_result.history] == [
            r.rule for r in bitset_result.history
        ]
        assert [r.gain for r in bool_result.history] == [
            r.gain for r in bitset_result.history
        ]
        assert [s.evaluations for s in bool_result.search_stats] == [
            s.evaluations for s in bitset_result.search_stats
        ]
        assert bool_result.search_stats[0].kernel == "bool"
        assert bitset_result.search_stats[0].kernel == "bitset"

    def test_exact_fit_with_budget_identical(self, planted_dataset):
        results = {
            kernel: TranslatorExact(
                max_rule_size=3, max_nodes_per_search=200, kernel=kernel
            ).fit(planted_dataset)
            for kernel in KERNELS
        }
        assert [r.rule for r in results["bool"].history] == [
            r.rule for r in results["bitset"].history
        ]
        assert results["bool"].converged == results["bitset"].converged

    def test_beam_fit_identical(self, planted_dataset):
        results = {
            kernel: TranslatorBeam(max_iterations=3, kernel=kernel).fit(
                planted_dataset
            )
            for kernel in KERNELS
        }
        assert list(results["bool"].table) == list(results["bitset"].table)

    def test_select_fit_identical(self, planted_dataset):
        results = {
            kernel: TranslatorSelect(k=2, minsup=5, kernel=kernel).fit(
                planted_dataset
            )
            for kernel in KERNELS
        }
        assert list(results["bool"].table) == list(results["bitset"].table)

    def test_greedy_fit_identical(self, planted_dataset):
        results = {
            kernel: TranslatorGreedy(minsup=5, kernel=kernel).fit(planted_dataset)
            for kernel in KERNELS
        }
        assert list(results["bool"].table) == list(results["bitset"].table)


class TestMinerKernelEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    def test_eclat_kernels_agree(self, seed, minsup):
        rng = np.random.default_rng(seed)
        matrix = rng.random((67, 7)) < 0.4
        assert eclat(matrix, minsup, kernel="bool") == eclat(
            matrix, minsup, kernel="bitset"
        )

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    def test_closed_kernels_agree(self, seed, minsup):
        rng = np.random.default_rng(100 + seed)
        matrix = rng.random((67, 7)) < 0.4
        assert closed_itemsets(matrix, minsup, kernel="bool") == closed_itemsets(
            matrix, minsup, kernel="bitset"
        )

    def test_eclat_edge_shapes(self):
        for matrix in (
            np.zeros((0, 3), dtype=bool),
            np.zeros((1, 0), dtype=bool),
            np.ones((1, 3), dtype=bool),
            np.ones((65, 2), dtype=bool),
        ):
            assert eclat(matrix, 1, kernel="bool") == eclat(matrix, 1, kernel="bitset")

    def test_two_view_candidates_kernels_agree(self, planted_dataset):
        assert two_view_candidates(
            planted_dataset, 5, kernel="bool"
        ) == two_view_candidates(planted_dataset, 5, kernel="bitset")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            eclat(np.ones((2, 2), dtype=bool), 1, kernel="simd")
        with pytest.raises(ValueError):
            closed_itemsets(np.ones((2, 2), dtype=bool), 1, kernel="simd")
