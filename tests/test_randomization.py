"""Unit tests for the swap-randomization significance test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, generate_planted, random_dataset
from repro.core.translator import TranslatorGreedy
from repro.eval.randomization import (
    permute_pairing,
    randomization_test,
)


class TestPermutePairing:
    def test_preserves_both_views_content(self, planted_dataset):
        randomized = permute_pairing(planted_dataset, rng=0)
        # Left view untouched; right view is a row permutation.
        np.testing.assert_array_equal(randomized.left, planted_dataset.left)
        original_rows = {row.tobytes() for row in planted_dataset.right}
        permuted_rows = {row.tobytes() for row in randomized.right}
        assert original_rows == permuted_rows
        np.testing.assert_array_equal(
            np.sort(randomized.right.sum(axis=1)),
            np.sort(planted_dataset.right.sum(axis=1)),
        )

    def test_preserves_margins_exactly(self, planted_dataset):
        randomized = permute_pairing(planted_dataset, rng=1)
        np.testing.assert_array_equal(
            randomized.right.sum(axis=0), planted_dataset.right.sum(axis=0)
        )

    def test_changes_pairing(self, planted_dataset):
        randomized = permute_pairing(planted_dataset, rng=2)
        assert not np.array_equal(randomized.right, planted_dataset.right)


class TestRandomizationTest:
    def test_structured_data_significant(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=300, n_left=8, n_right=8,
                density_left=0.1, density_right=0.1,
                n_rules=3, confidence=(0.95, 1.0), activation=(0.25, 0.35), seed=23,
            )
        )
        result = randomization_test(
            dataset, TranslatorGreedy(minsup=5), n_permutations=9, rng=0
        )
        # The real pairing compresses better than every permutation.
        assert result.p_value == pytest.approx(1 / 10)
        assert result.observed_ratio < min(result.null_ratios)
        assert result.z_score < 0

    def test_noise_not_significant(self):
        noise = random_dataset(250, 8, 8, 0.15, 0.15, seed=24)
        result = randomization_test(
            noise, TranslatorGreedy(minsup=5), n_permutations=9, rng=0
        )
        assert result.p_value > 0.2

    def test_validation(self, planted_dataset):
        with pytest.raises(ValueError, match="n_permutations"):
            randomization_test(planted_dataset, TranslatorGreedy(minsup=5), 0)

    def test_null_count(self, planted_dataset):
        result = randomization_test(
            planted_dataset, TranslatorGreedy(minsup=8), n_permutations=3, rng=0
        )
        assert len(result.null_ratios) == 3
        assert 0 < result.p_value <= 1
