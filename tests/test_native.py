"""Native fused-popcount backend: build system, primitives, consumers.

Three layers of guarantees:

1. **Primitives** — every backend-dispatched operation in
   :mod:`repro.core.bitset` (fused AND+popcount, fixed-point weighted
   popcounts, subset match, weighted OR/union, AND-reduce) agrees with
   a brute-force formulation on randomized inputs, and the native C
   kernel agrees with the numpy reference bit for bit.
2. **Consumers** — the three wired call sites (exact search child
   metrics, compiled predictor packed strategy, stream buffer tracked
   supports) return bit-identical results under ``backend="numpy"`` and
   ``backend="native"``.
3. **Fallback contract** — ``backend="auto"`` resolves without raising
   whether or not a C toolchain exists, explicit ``"native"`` raises a
   clear error when it does not, and ``REPRO_NATIVE_DISABLE=1`` makes a
   fresh process behave exactly like a compiler-less machine.

Everything native-specific is skipped (not failed) when the toolchain
is unavailable, so the suite passes unchanged on a machine with no C
compiler.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import native
from repro.core import bitset
from repro.core.bitset import (
    BitMatrix,
    and_popcount_rows,
    and_reduce_many_rows,
    and_reduce_rows,
    child_metrics_rows,
    fixed_weight_table,
    fixed_weighted_popcount,
    match_union_rows,
    n_words_for,
    or_union_rows,
    pack_mask,
    resolve_backend,
    subset_match_rows,
    unpack_mask,
)
from repro.core.translator import TranslatorExact
from repro.data.dataset import Side
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.serve.compiled import CompiledPredictor
from repro.stream.buffer import StreamBuffer

NATIVE_AVAILABLE = native.available()
needs_native = pytest.mark.skipif(
    not NATIVE_AVAILABLE, reason=f"no native kernel: {native.native_error()}"
)

BACKENDS = ["numpy"] + (["native"] if NATIVE_AVAILABLE else [])


def _random_packed(rng, n_rows: int, n_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Random Boolean rows and their packed words."""
    bools = rng.random((n_rows, n_bits)) < rng.random()
    words = BitMatrix.from_bool_rows(bools).words
    return bools, words


# ----------------------------------------------------------------------
# Build system
# ----------------------------------------------------------------------
class TestBuild:
    def test_availability_is_consistent(self):
        if NATIVE_AVAILABLE:
            kernel = native.load_kernel()
            assert kernel.abi_version == native.build.ABI_VERSION
            assert Path(kernel.path).is_file()
            assert native.native_error() is None
        else:
            with pytest.raises(native.NativeBuildError):
                native.load_kernel()
            assert native.native_error()

    @needs_native
    def test_build_is_cached_by_content(self):
        from repro.native.build import build_library

        first = build_library()
        second = build_library()
        assert first == second  # same content hash, no recompile

    @needs_native
    def test_build_info_reports_library(self):
        info = native.build_info()
        assert info["available"] is True
        assert info["compiler"]
        assert Path(str(info["library"])).suffix == ".so"

    def test_resolve_backend_validates(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cuda")
        assert resolve_backend("numpy") == "numpy"
        assert resolve_backend("auto") in ("numpy", "native")

    def test_explicit_native_raises_without_toolchain(self, monkeypatch):
        monkeypatch.setattr(bitset, "_native_available", lambda: False)
        assert resolve_backend("auto") == "numpy"
        with pytest.raises(RuntimeError, match="native backend requested"):
            resolve_backend("native")

    def test_env_can_pin_auto_to_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend("auto") == "numpy"

    def test_env_native_preference_still_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "native")
        monkeypatch.setattr(bitset, "_native_available", lambda: True)
        assert resolve_backend("auto") == "native"
        monkeypatch.setattr(bitset, "_native_available", lambda: False)
        assert resolve_backend("auto") == "numpy"  # never raises for auto

    def test_env_typo_is_rejected_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpyy")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend("auto")

    def test_disable_env_simulates_no_compiler(self, tmp_path):
        # A fresh process with REPRO_NATIVE_DISABLE=1 must behave exactly
        # like a machine without a C toolchain: auto falls back to numpy
        # and fitting still works.
        env = dict(os.environ)
        env["REPRO_NATIVE_DISABLE"] = "1"
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        script = (
            "from repro.core.bitset import resolve_backend\n"
            "from repro import native\n"
            "assert not native.available(), 'disable env ignored'\n"
            "assert resolve_backend('auto') == 'numpy'\n"
            "from repro.core.translator import TranslatorExact\n"
            "from repro.data.synthetic import SyntheticSpec, generate_planted\n"
            "ds, _ = generate_planted(SyntheticSpec(n_transactions=60))\n"
            "result = TranslatorExact(max_iterations=1, max_rule_size=2).fit(ds)\n"
            "print('OK', result.search_stats[0].backend)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip().endswith("OK numpy")


# ----------------------------------------------------------------------
# Primitives: numpy reference vs brute force, native vs numpy
# ----------------------------------------------------------------------
class TestPrimitives:
    @pytest.mark.parametrize("seed", range(8))
    def test_primitives_match_brute_force_and_each_other(self, seed):
        rng = np.random.default_rng(seed)
        n_bits = int(rng.integers(0, 300))
        n_rows = int(rng.integers(0, 10))
        bools, rows = _random_packed(rng, n_rows, n_bits)
        mask_bool = rng.random(n_bits) < 0.5
        mask = pack_mask(mask_bool)
        other_bool = rng.random(n_bits) < 0.5
        other = pack_mask(other_bool)
        weights = rng.integers(-(2**20), 2**20, n_bits)
        gain_tab = fixed_weight_table(weights)
        wsum_tab = fixed_weight_table(rng.integers(0, 2**20, n_bits))

        brute_counts = (bools & mask_bool).sum(axis=1)
        brute_weighted = int(weights[mask_bool].sum())
        for backend in BACKENDS:
            counts = and_popcount_rows(rows, mask, backend=backend)
            assert np.array_equal(counts, brute_counts)
            assert (
                fixed_weighted_popcount(mask, gain_tab, backend=backend)
                == brute_weighted
            )
            wsums, gains, cm_counts, joints = child_metrics_rows(
                rows, mask, other, gain_tab, wsum_tab, backend=backend
            )
            new = bools & mask_bool
            assert np.array_equal(cm_counts, new.sum(axis=1))
            assert np.array_equal(joints, (new & other_bool).sum(axis=1))
            assert np.array_equal(gains, new.astype(np.int64) @ weights)
            assert wsums is not None
            no_wsum = child_metrics_rows(
                rows, mask, other, gain_tab, backend=backend
            )
            assert no_wsum[0] is None
            assert np.array_equal(no_wsum[1], gains)

    @pytest.mark.parametrize("seed", range(8))
    def test_subset_union_primitives(self, seed):
        rng = np.random.default_rng(100 + seed)
        n_bits = int(rng.integers(0, 200))
        n_rows = int(rng.integers(0, 9))
        n_sets = int(rng.integers(0, 7))
        bools, rows = _random_packed(rng, n_rows, n_bits)
        set_bools = rng.random((n_sets, n_bits)) < 0.2
        sets = BitMatrix.from_bool_rows(set_bools).words
        n_tgt = int(rng.integers(0, 150))
        cons_bools = rng.random((n_sets, n_tgt)) < 0.3
        cons = BitMatrix.from_bool_rows(cons_bools).words

        brute_fired = np.array(
            [
                [bool((~row & s).sum() == 0) for s in set_bools]
                for row in bools
            ],
            dtype=bool,
        ).reshape(n_rows, n_sets)
        for backend in BACKENDS:
            fired = subset_match_rows(rows, sets, backend=backend)
            assert np.array_equal(fired, brute_fired)
            union = or_union_rows(fired, cons, backend=backend)
            fused = match_union_rows(rows, sets, cons, backend=backend)
            assert np.array_equal(union, fused)
            for i in range(n_rows):
                expected = np.zeros(n_tgt, dtype=bool)
                for r in range(n_sets):
                    if brute_fired[i, r]:
                        expected |= cons_bools[r]
                assert np.array_equal(unpack_mask(union[i], n_tgt), expected)

    @pytest.mark.parametrize("seed", range(6))
    def test_and_reduce(self, seed):
        rng = np.random.default_rng(200 + seed)
        n_bits = int(rng.integers(1, 300))
        n_rows = int(rng.integers(1, 8))
        bools, rows = _random_packed(rng, n_rows, n_bits)
        expected = np.logical_and.reduce(bools, axis=0)
        for backend in BACKENDS:
            region, count = and_reduce_rows(rows, backend=backend)
            assert count == int(expected.sum())
            assert np.array_equal(unpack_mask(region, n_bits), expected)
        with pytest.raises(ValueError):
            and_reduce_rows(np.zeros((0, 2), dtype=np.uint64), backend="numpy")

    @pytest.mark.parametrize("seed", range(6))
    def test_and_reduce_many(self, seed):
        rng = np.random.default_rng(300 + seed)
        n_bits = int(rng.integers(0, 300))
        sizes = [int(rng.integers(1, 5)) for __ in range(int(rng.integers(0, 6)))]
        bools, rows = _random_packed(rng, sum(sizes), n_bits)
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        for backend in BACKENDS:
            regions, counts = and_reduce_many_rows(rows, offsets, backend=backend)
            assert regions.shape[0] == len(sizes)
            for g, (lo, hi) in enumerate(zip(offsets[:-1], offsets[1:])):
                expected = (
                    np.logical_and.reduce(bools[lo:hi], axis=0)
                    if n_bits
                    else np.zeros(0, dtype=bool)
                )
                assert counts[g] == int(expected.sum())
                assert np.array_equal(unpack_mask(regions[g], n_bits), expected)
        with pytest.raises(ValueError, match="non-empty"):
            and_reduce_many_rows(
                rows, np.array([0, 0, rows.shape[0]]), backend="numpy"
            )
        with pytest.raises(ValueError, match="offsets"):
            and_reduce_many_rows(rows, np.array([1]), backend="numpy")

    @needs_native
    def test_fixed_weight_table_layout(self):
        weights = np.arange(70, dtype=np.float64)
        table = fixed_weight_table(weights)
        assert table.shape == (n_words_for(70) * 64,)
        assert np.array_equal(table[:70], np.arange(70))
        assert not table[70:].any()


# ----------------------------------------------------------------------
# Consumer 1: the exact search
# ----------------------------------------------------------------------
class TestSearchBackends:
    def _fingerprint(self, result):
        return (
            tuple((record.rule, record.gain) for record in result.history),
            tuple(
                (
                    stats.nodes_visited,
                    stats.nodes_pruned_rub,
                    stats.evaluations,
                    stats.evaluations_skipped_qub,
                    stats.complete,
                )
                for stats in result.search_stats
            ),
        )

    @needs_native
    @pytest.mark.parametrize("seed", range(4))
    def test_search_backends_bit_identical(self, seed):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=int(80 + 60 * seed),
                n_left=10,
                n_right=11,
                density_left=0.25 + 0.1 * (seed % 3),
                density_right=0.35,
                n_rules=4,
                seed=seed,
            )
        )
        results = {
            backend: TranslatorExact(
                max_iterations=3, max_rule_size=3, backend=backend
            ).fit(dataset)
            for backend in ("numpy", "native")
        }
        assert self._fingerprint(results["numpy"]) == self._fingerprint(
            results["native"]
        )
        assert results["native"].search_stats[0].backend == "native"

    @needs_native
    def test_sharded_native_search_matches_serial(self):
        dataset, __ = generate_planted(
            SyntheticSpec(n_transactions=220, n_left=12, n_right=12, seed=5)
        )
        serial = TranslatorExact(
            max_iterations=2, max_rule_size=3, backend="native"
        ).fit(dataset)
        sharded = TranslatorExact(
            max_iterations=2, max_rule_size=3, backend="native", n_jobs=3
        ).fit(dataset)
        assert [(r.rule, r.gain) for r in serial.history] == [
            (r.rule, r.gain) for r in sharded.history
        ]

    @needs_native
    def test_unbounded_rule_size_and_budget(self):
        dataset, __ = generate_planted(
            SyntheticSpec(n_transactions=90, n_left=8, n_right=8, seed=9)
        )
        for kwargs in (
            {"max_rule_size": None, "max_iterations": 2},
            {"max_rule_size": 4, "max_iterations": 2, "max_nodes_per_search": 200},
        ):
            fits = {
                backend: TranslatorExact(backend=backend, **kwargs).fit(dataset)
                for backend in ("numpy", "native")
            }
            assert self._fingerprint(fits["numpy"]) == self._fingerprint(
                fits["native"]
            )


# ----------------------------------------------------------------------
# Consumer 2: the compiled predictor's packed strategy
# ----------------------------------------------------------------------
class TestCompiledBackends:
    def _compiled(self, seed, backend):
        rng = np.random.default_rng(seed)
        from repro.core.rules import TranslationRule

        n_src, n_tgt = 17, 13
        rules = []
        for __ in range(9):
            lhs = tuple(
                sorted(rng.choice(n_src, size=rng.integers(1, 4), replace=False))
            )
            rhs = tuple(
                sorted(rng.choice(n_tgt, size=rng.integers(1, 3), replace=False))
            )
            rules.append(
                TranslationRule(lhs, rhs, rng.choice(["->", "<-", "<->"]))
            )
        return (
            CompiledPredictor(Side.RIGHT, n_src, n_tgt, rules, backend=backend),
            rng.random((33, n_src)) < 0.4,
        )

    @needs_native
    @pytest.mark.parametrize("seed", range(4))
    def test_packed_backends_bit_identical(self, seed):
        numpy_pred, matrix = self._compiled(seed, "numpy")
        native_pred, __ = self._compiled(seed, "native")
        assert numpy_pred.backend == "numpy"
        assert native_pred.backend == "native"
        blas = numpy_pred.predict(matrix, strategy="blas")
        for strategy_owner in (numpy_pred, native_pred):
            packed = strategy_owner.predict(matrix, strategy="packed")
            assert np.array_equal(packed, blas)
            fired = strategy_owner.matches(matrix, strategy="packed")
            assert np.array_equal(
                fired, numpy_pred.matches(matrix, strategy="blas")
            )

    def test_blas_guard_dispatches_auto_to_packed(self, monkeypatch):
        import repro.serve.compiled as compiled_module

        monkeypatch.setattr(compiled_module, "_FLOAT32_EXACT_MAX", 8)
        with pytest.warns(UserWarning, match="dispatch to 'packed'"):
            predictor, matrix = self._compiled(0, "numpy")
        assert not predictor.blas_exact
        # auto now silently routes to the packed strategy...
        auto = predictor.predict(matrix, strategy="auto")
        packed = predictor.predict(matrix, strategy="packed")
        assert np.array_equal(auto, packed)
        # ...and an explicit blas request refuses to return wrong answers.
        with pytest.raises(ValueError, match="float32 exact-integer bound"):
            predictor.predict(matrix, strategy="blas")
        with pytest.raises(ValueError, match="float32 exact-integer bound"):
            predictor.matches(matrix, strategy="blas")

    def test_blas_guard_is_quiet_within_bounds(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            predictor, matrix = self._compiled(1, "numpy")
        assert predictor.blas_exact
        assert np.array_equal(
            predictor.predict(matrix, strategy="auto"),
            predictor.predict(matrix, strategy="blas"),
        )

    def test_unknown_strategy_rejected(self):
        predictor, matrix = self._compiled(2, "numpy")
        with pytest.raises(ValueError, match="unknown strategy"):
            predictor.predict(matrix, strategy="gpu")

    @needs_native
    def test_auto_dispatches_to_native_packed_where_it_wins(self):
        # A numpy-backed predictor's auto stays on blas; a native-backed
        # one routes wide models (any batch) and bulk batches (any
        # model) to the fused packed path.  Narrow model + small batch
        # stays on blas even with the native backend.
        numpy_pred, __ = self._compiled(0, "numpy")
        native_pred, __ = self._compiled(0, "native")
        assert numpy_pred._resolve_strategy("auto", n_rows=4096) == "blas"
        assert native_pred._resolve_strategy("auto", n_rows=8) == "blas"
        assert native_pred._resolve_strategy("auto", n_rows=4096) == "packed"
        import repro.serve.compiled as compiled_module

        wide_words = compiled_module._NATIVE_PACKED_MIN_RULE_WORDS
        assert (
            native_pred.n_rules * native_pred.antecedents.n_words < wide_words
        ), "fixture model unexpectedly counts as wide"
        rng = np.random.default_rng(0)
        from repro.core.rules import TranslationRule

        n_src = 64 * (wide_words // 16)  # 16 rules x enough words
        rules = [
            TranslationRule((int(rng.integers(n_src)),), (0,), "->")
            for __ in range(16)
        ]
        wide = CompiledPredictor(Side.RIGHT, n_src, 4, rules, backend="native")
        assert wide._resolve_strategy("auto", n_rows=1) == "packed"


# ----------------------------------------------------------------------
# Consumer 3: the stream buffer's tracked supports
# ----------------------------------------------------------------------
class TestStreamBackends:
    @needs_native
    @pytest.mark.parametrize("seed", range(4))
    def test_tracked_supports_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        buffers = {
            backend: StreamBuffer(n_left=7, n_right=6, backend=backend)
            for backend in ("numpy", "native")
        }
        trackers = {
            backend: [
                buffer.track(Side.LEFT, (0, 2)),
                buffer.track(Side.RIGHT, (1,)),
            ]
            for backend, buffer in buffers.items()
        }
        for step in range(60):
            k = int(rng.integers(0, 5))
            left = rng.random((k, 7)) < 0.4
            right = rng.random((k, 6)) < 0.5
            for buffer in buffers.values():
                buffer.append(left, right)
            if rng.random() < 0.4 and len(buffers["numpy"]):
                evict = int(rng.integers(0, len(buffers["numpy"]) + 1))
                for buffer in buffers.values():
                    buffer.evict(evict)
            for numpy_tracker, native_tracker in zip(
                trackers["numpy"], trackers["native"]
            ):
                assert numpy_tracker.count == native_tracker.count, f"step {step}"
                assert np.array_equal(numpy_tracker.words, native_tracker.words)
        # Counts also agree with a from-scratch recount of the window.
        window = buffers["numpy"].window_dataset()
        expected = (window.left[:, 0] & window.left[:, 2]).sum()
        assert trackers["numpy"][0].count == expected

    @needs_native
    def test_refit_context_native_matches_batch_fit(self):
        rng = np.random.default_rng(11)
        buffer = StreamBuffer(n_left=9, n_right=9, backend="native")
        buffer.append(rng.random((140, 9)) < 0.4, rng.random((140, 9)) < 0.4)
        buffer.evict(30)
        dataset, cache = buffer.refit_context()
        incremental = TranslatorExact(
            max_iterations=2, max_rule_size=3, backend="native"
        ).fit(dataset, cache=cache)
        batch = TranslatorExact(
            max_iterations=2, max_rule_size=3, backend="numpy"
        ).fit(buffer.window_dataset())
        assert [(r.rule, r.gain) for r in incremental.history] == [
            (r.rule, r.gain) for r in batch.history
        ]
