"""Binary mmap artifact tests (``pytest -m serve_smoke``).

Property/fuzz coverage of :mod:`repro.serve.binfmt`, mirroring the
strict-decode discipline of the packed-frame codec tests: the
``write -> mmap -> CompiledPredictor`` path must be **bit-identical**
to the JSON ``artifact -> from_table`` path on randomized tables (both
directions, both strategies), the mapped views must be genuinely
zero-copy, and every corruption mode — bad magic, truncated tail,
flipped bit anywhere, garbage header, trailing bytes — must raise
:class:`~repro.serve.ArtifactCorruptError`, never mis-decode.

Also holds the registry/sidecar regression tests: ``quarantine`` moves
the binary sidecar together with the JSON (satellite of ISSUE 7), and
``LATEST`` healing verifies survivor sidecar hashes before re-pointing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predict import predict_view
from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.data.dataset import Side, TwoViewDataset
from repro.serve import (
    ArtifactCorruptError,
    ArtifactError,
    CompiledPredictor,
    ModelArtifact,
    ModelRegistry,
    map_artifact,
    verify_sidecar,
    write_compiled,
)
from repro.serve.binfmt import _PRELUDE, BINFMT_MAGIC

pytestmark = pytest.mark.serve_smoke


def random_table(rng, n_left, n_right, n_rules=12) -> TranslationTable:
    rules = set()
    while len(rules) < n_rules:
        lhs = tuple(
            sorted(rng.choice(n_left, size=int(rng.integers(1, 4)), replace=False))
        )
        rhs = tuple(
            sorted(rng.choice(n_right, size=int(rng.integers(1, 4)), replace=False))
        )
        direction = ("->", "<-", "<->")[int(rng.integers(0, 3))]
        rules.add((lhs, rhs, direction))
    return TranslationTable(
        TranslationRule(lhs, rhs, direction) for lhs, rhs, direction in sorted(rules)
    )


def make_artifact(rng, n_left=17, n_right=13, n_rules=12) -> ModelArtifact:
    table = random_table(rng, n_left, n_right, n_rules)
    dataset = TwoViewDataset(
        rng.random((8, n_left)) < 0.4,
        rng.random((8, n_right)) < 0.4,
        name="binfmt-test",
    )

    class _Result:
        def __init__(self):
            self.table = table

        def summary(self):
            return {"n_rules": len(table)}

    return ModelArtifact.from_result("binfmt-test", dataset, _Result(), {})


@pytest.fixture()
def sidecar(tmp_path):
    """One written sidecar + its artifact: ``(artifact, path)``."""
    rng = np.random.default_rng(7)
    artifact = make_artifact(rng)
    path = tmp_path / "compiled.bin"
    write_compiled(artifact, path)
    return artifact, path


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("target", [Side.RIGHT, Side.LEFT])
    def test_bit_identical_to_json_path_on_random_tables(
        self, tmp_path, seed, target
    ):
        rng = np.random.default_rng(seed)
        n_left = int(rng.integers(3, 40))
        n_right = int(rng.integers(3, 40))
        n_rules = int(rng.integers(1, 20))
        artifact = make_artifact(rng, n_left, n_right, n_rules)
        path = tmp_path / "compiled.bin"
        write_compiled(artifact, path)
        mapped = map_artifact(path)
        n_source = n_left if target is Side.RIGHT else n_right
        n_target = n_right if target is Side.RIGHT else n_left
        from_map = CompiledPredictor.from_mapped(mapped, target)
        from_json = CompiledPredictor.from_table(
            artifact.table, target, n_source, n_target
        )
        assert np.array_equal(
            from_map.antecedents.words, from_json.antecedents.words
        )
        assert np.array_equal(
            from_map.consequents.words, from_json.consequents.words
        )
        batch = rng.random((31, n_source)) < 0.35
        loop = predict_view(batch, artifact.table, target, n_target, engine="loop")
        for strategy in ("blas", "packed"):
            assert np.array_equal(from_map.predict(batch, strategy=strategy), loop)

    def test_mapped_views_are_zero_copy(self, sidecar):
        __, path = sidecar
        mapped = map_artifact(path)
        raw = np.frombuffer(mapped.buffer, dtype=np.uint8)
        for target in (Side.RIGHT, Side.LEFT):
            predictor = CompiledPredictor.from_mapped(mapped, target)
            assert np.shares_memory(predictor.antecedents.words, raw)
            assert np.shares_memory(predictor.consequents.words, raw)

    def test_mapped_views_are_read_only(self, sidecar):
        __, path = sidecar
        mapped = map_artifact(path)
        words = mapped.section("R.ant_words")
        with pytest.raises((ValueError, TypeError)):
            words[0, 0] = 1

    def test_header_identity_fields(self, sidecar):
        artifact, path = sidecar
        mapped = map_artifact(path)
        assert mapped.model == artifact.name
        assert mapped.artifact_hash == artifact.content_hash
        assert mapped.n_left == artifact.n_left
        assert mapped.n_right == artifact.n_right

    def test_write_is_deterministic(self, tmp_path):
        rng = np.random.default_rng(9)
        artifact = make_artifact(rng)
        first = tmp_path / "a.bin"
        second = tmp_path / "b.bin"
        assert write_compiled(artifact, first) == write_compiled(artifact, second)
        assert first.read_bytes() == second.read_bytes()

    def test_verify_sidecar_returns_prelude_hash(self, sidecar):
        __, path = sidecar
        assert verify_sidecar(path) == map_artifact(path).content_hash

    def test_unknown_section_is_artifact_error(self, sidecar):
        __, path = sidecar
        with pytest.raises(ArtifactError, match="no section"):
            map_artifact(path).section("R.nonsense")

    def test_close_refuses_while_views_live(self, sidecar):
        __, path = sidecar
        mapped = map_artifact(path)
        view = mapped.section("R.ant_words")
        with pytest.raises(BufferError):
            mapped.close()
        del view


class TestCorruption:
    """Every damaged byte pattern must raise ArtifactCorruptError."""

    def test_missing_file_is_plain_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError) as excinfo:
            map_artifact(tmp_path / "nope.bin")
        assert not isinstance(excinfo.value, ArtifactCorruptError)

    @pytest.mark.parametrize("size", [0, 1, 16, _PRELUDE.size - 1])
    def test_short_prelude(self, tmp_path, size):
        path = tmp_path / "short.bin"
        path.write_bytes(b"\x00" * size)
        with pytest.raises(ArtifactCorruptError):
            map_artifact(path)

    def test_bad_magic(self, sidecar):
        __, path = sidecar
        blob = bytearray(path.read_bytes())
        blob[:8] = b"NOTMAGIC"
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactCorruptError, match="magic"):
            map_artifact(path)

    def test_future_format_version_is_not_corruption(self, sidecar):
        __, path = sidecar
        blob = bytearray(path.read_bytes())
        blob[8:12] = (99).to_bytes(4, "little")
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError) as excinfo:
            map_artifact(path)
        assert not isinstance(excinfo.value, ArtifactCorruptError)

    @pytest.mark.parametrize("drop", [1, 7, 64, 4096])
    def test_truncated_tail(self, sidecar, drop):
        __, path = sidecar
        blob = path.read_bytes()
        if drop >= len(blob):
            pytest.skip("file smaller than the truncation")
        path.write_bytes(blob[:-drop])
        with pytest.raises(ArtifactCorruptError):
            map_artifact(path)

    def test_trailing_bytes(self, sidecar):
        __, path = sidecar
        path.write_bytes(path.read_bytes() + b"\x00" * 9)
        with pytest.raises(ArtifactCorruptError, match="trailing"):
            map_artifact(path)

    @pytest.mark.parametrize("seed", range(8))
    def test_flipped_bit_anywhere_is_rejected(self, sidecar, seed):
        """Fuzz: one random bit flipped past the prelude never decodes.

        (A flip inside the stored digest itself is also caught — the
        recomputed hash then disagrees with the stored one.)
        """
        __, path = sidecar
        rng = np.random.default_rng(seed)
        blob = bytearray(path.read_bytes())
        position = int(rng.integers(8, len(blob)))  # past the magic
        blob[position] ^= 1 << int(rng.integers(0, 8))
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactCorruptError):
            map_artifact(path)

    def test_garbage_header_json(self, sidecar):
        __, path = sidecar
        blob = bytearray(path.read_bytes())
        start = _PRELUDE.size
        blob[start : start + 4] = b"!!!!"
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactCorruptError):
            map_artifact(path)

    def test_unverified_map_still_rejects_structure_damage(self, sidecar):
        """verify=False skips the hash, not the structural validation."""
        __, path = sidecar
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ArtifactCorruptError):
            map_artifact(path, verify=False)

    def test_tampered_section_table_is_rejected(self, tmp_path):
        """A forged header (valid hash!) with absurd shapes is refused.

        Rebuilds the file around a modified header and a recomputed
        digest — simulating an attacker or a buggy writer, not bit rot
        — so the shape/bounds cross-checks are what must catch it.
        """
        import hashlib
        import json as jsonlib

        rng = np.random.default_rng(3)
        artifact = make_artifact(rng)
        path = tmp_path / "forged.bin"
        write_compiled(artifact, path)
        blob = bytearray(path.read_bytes())
        magic, version, header_len, __ = _PRELUDE.unpack(blob[: _PRELUDE.size])
        meta = jsonlib.loads(blob[_PRELUDE.size : _PRELUDE.size + header_len])
        meta["sections"][0]["offset"] = 0  # before the payload region
        forged = jsonlib.dumps(meta, sort_keys=True).encode("utf-8")
        body = bytearray(blob[_PRELUDE.size :])
        if len(forged) > header_len:
            pytest.skip("forged header does not fit in place")
        body[: len(forged)] = forged
        body[len(forged) : header_len] = b" " * (header_len - len(forged))
        digest = hashlib.sha256(bytes(body)).digest()
        path.write_bytes(
            _PRELUDE.pack(magic, version, header_len, digest) + bytes(body)
        )
        with pytest.raises(ArtifactCorruptError):
            map_artifact(path)


class TestRegistrySidecar:
    """Regressions: quarantine moves the sidecar; healing verifies it."""

    @pytest.fixture()
    def registry(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        rng = np.random.default_rng(21)
        for __ in range(3):
            registry.publish(make_artifact(rng))
        return registry

    def test_publish_writes_verified_sidecar(self, registry):
        path = registry.sidecar_path("binfmt-test", 1)
        assert path.is_file()
        verify_sidecar(path)

    def test_publish_can_skip_sidecar(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        rng = np.random.default_rng(2)
        published = registry.publish(make_artifact(rng), sidecar=False)
        assert not registry.sidecar_path(published.name, 1).exists()
        # The service then falls back to the JSON path transparently.
        assert registry.load(published.name, 1).content_hash == published.content_hash

    def test_quarantine_moves_sidecar_with_the_version(self, registry):
        sidecar_bytes = registry.sidecar_path("binfmt-test", 3).read_bytes()
        destination = registry.quarantine("binfmt-test", 3)
        assert not registry.sidecar_path("binfmt-test", 3).exists()
        moved = destination / "compiled.bin"
        assert moved.is_file() and moved.read_bytes() == sidecar_bytes
        assert registry.latest_version("binfmt-test") == 2

    def test_healing_skips_survivor_with_corrupt_sidecar(self, registry):
        """LATEST never heals onto a version whose sidecar is damaged."""
        survivor_sidecar = registry.sidecar_path("binfmt-test", 2)
        blob = bytearray(survivor_sidecar.read_bytes())
        blob[-1] ^= 0xFF
        survivor_sidecar.write_bytes(bytes(blob))
        registry.quarantine("binfmt-test", 3)
        # v3 quarantined (requested), v2 quarantined (failed sidecar
        # verification during healing) -> LATEST lands on v1.
        assert registry.latest_version("binfmt-test") == 1
        assert registry.versions("binfmt-test") == [1]
        assert len(registry.quarantined("binfmt-test")) == 2

    def test_healing_unlinks_pointer_when_nothing_survives(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        rng = np.random.default_rng(5)
        registry.publish(make_artifact(rng))
        registry.quarantine("binfmt-test", 1)
        assert registry.versions("binfmt-test") == []
        assert not (registry.model_dir("binfmt-test") / "LATEST").exists()

    def test_load_of_corrupt_json_quarantines_sidecar_too(self, registry):
        artifact_path = registry.artifact_path("binfmt-test", 3)
        artifact_path.write_text(
            artifact_path.read_text(encoding="utf-8").replace(
                "binfmt-test", "binfmt-tamp"
            ),
            encoding="utf-8",
        )
        with pytest.raises(ArtifactCorruptError):
            registry.load("binfmt-test", 3)
        assert not registry.sidecar_path("binfmt-test", 3).exists()
        assert registry.latest_version("binfmt-test") == 2
