"""Unit tests for ECLAT frequent itemset mining."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.mining.eclat import eclat, frequent_items


def brute_force_frequent(matrix: np.ndarray, minsup: int, max_size=None):
    """Reference implementation: enumerate all itemsets."""
    n_items = matrix.shape[1]
    results = {}
    limit = n_items if max_size is None else min(max_size, n_items)
    for size in range(1, limit + 1):
        for itemset in itertools.combinations(range(n_items), size):
            support = int(matrix[:, itemset].all(axis=1).sum())
            if support >= minsup:
                results[itemset] = support
    return results


class TestAgainstBruteForce:
    @pytest.mark.parametrize("minsup", [1, 2, 5, 10])
    def test_matches_brute_force(self, rng, minsup):
        matrix = rng.random((40, 7)) < 0.4
        expected = brute_force_frequent(matrix, minsup)
        mined = dict(eclat(matrix, minsup))
        assert mined == expected

    def test_max_size(self, rng):
        matrix = rng.random((30, 6)) < 0.5
        expected = brute_force_frequent(matrix, 2, max_size=2)
        mined = dict(eclat(matrix, 2, max_size=2))
        assert mined == expected

    def test_restricted_universe(self, rng):
        matrix = rng.random((30, 6)) < 0.5
        mined = eclat(matrix, 1, items=[1, 3])
        used = {item for itemset, __ in mined for item in itemset}
        assert used <= {1, 3}


class TestProperties:
    def test_supports_decrease_with_size(self, rng):
        matrix = rng.random((50, 6)) < 0.4
        supports = dict(eclat(matrix, 1))
        for itemset, support in supports.items():
            for drop in range(len(itemset)):
                subset = itemset[:drop] + itemset[drop + 1 :]
                if subset:
                    assert supports[subset] >= support

    def test_minsup_monotone(self, rng):
        matrix = rng.random((50, 6)) < 0.4
        low = set(itemset for itemset, __ in eclat(matrix, 2))
        high = set(itemset for itemset, __ in eclat(matrix, 10))
        assert high <= low

    def test_empty_matrix(self):
        assert eclat(np.zeros((5, 3), dtype=bool), 1) == []

    def test_no_transactions(self):
        assert eclat(np.zeros((0, 3), dtype=bool), 1) == []

    def test_minsup_validation(self, rng):
        matrix = rng.random((5, 3)) < 0.5
        with pytest.raises(ValueError, match="minsup"):
            eclat(matrix, 0)

    def test_budget_guard(self):
        matrix = np.ones((5, 10), dtype=bool)
        with pytest.raises(RuntimeError, match="max_itemsets"):
            eclat(matrix, 1, max_itemsets=10)

    def test_frequent_items(self, rng):
        matrix = rng.random((50, 5)) < 0.3
        singles = dict(frequent_items(matrix, 3))
        counts = matrix.sum(axis=0)
        expected = {item: int(count) for item, count in enumerate(counts) if count >= 3}
        assert singles == expected
