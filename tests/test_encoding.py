"""Unit tests for the MDL encoding (paper, Section 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data.dataset import Side, TwoViewDataset
from repro.core.encoding import CodeLengthModel
from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable


@pytest.fixture
def codes(toy_dataset) -> CodeLengthModel:
    return CodeLengthModel(toy_dataset)


class TestItemCodes:
    def test_code_length_matches_probability(self, toy_dataset, codes):
        # Item 'a' occurs in 3 of 5 transactions.
        a = toy_dataset.item_index(Side.LEFT, "a")
        assert codes.item_length(Side.LEFT, a) == pytest.approx(-math.log2(3 / 5))

    def test_rare_items_cost_more(self, toy_dataset, codes):
        a = toy_dataset.item_index(Side.LEFT, "a")  # support 3
        d = toy_dataset.item_index(Side.LEFT, "d")  # support 2
        assert codes.item_length(Side.LEFT, d) > codes.item_length(Side.LEFT, a)

    def test_zero_support_item_is_infinite(self):
        data = TwoViewDataset([[1, 0]], [[1]])
        codes = CodeLengthModel(data)
        assert math.isinf(codes.item_length(Side.LEFT, 1))

    def test_full_support_item_is_free(self):
        data = TwoViewDataset([[1], [1]], [[1], [0]])
        codes = CodeLengthModel(data)
        assert codes.item_length(Side.LEFT, 0) == 0.0

    def test_empty_dataset_rejected(self):
        data = TwoViewDataset(np.zeros((0, 2), bool), np.zeros((0, 1), bool))
        with pytest.raises(ValueError, match="empty"):
            CodeLengthModel(data)


class TestItemsetAndRuleLengths:
    def test_itemset_length_additive(self, toy_dataset, codes):
        a = toy_dataset.item_index(Side.LEFT, "a")
        b = toy_dataset.item_index(Side.LEFT, "b")
        total = codes.itemset_length(Side.LEFT, [a, b])
        assert total == pytest.approx(
            codes.item_length(Side.LEFT, a) + codes.item_length(Side.LEFT, b)
        )

    def test_empty_itemset_free(self, codes):
        assert codes.itemset_length(Side.LEFT, []) == 0.0

    def test_direction_length(self, codes):
        assert codes.direction_length(Direction.BOTH) == 1.0
        assert codes.direction_length(Direction.FORWARD) == 2.0

    def test_rule_length(self, toy_dataset, codes):
        rule = TranslationRule((0,), (3,), Direction.BOTH)
        expected = (
            codes.itemset_length(Side.LEFT, (0,))
            + 1.0
            + codes.itemset_length(Side.RIGHT, (3,))
        )
        assert codes.rule_length(rule) == pytest.approx(expected)

    def test_bidirectional_cheaper_than_unidirectional(self, codes):
        rule = TranslationRule((0,), (3,), Direction.BOTH)
        assert codes.rule_length(rule) < codes.rule_length(
            rule.with_direction(Direction.FORWARD)
        )

    def test_table_length_sums_rules(self, codes):
        rules = [
            TranslationRule((0,), (3,), Direction.BOTH),
            TranslationRule((1,), (2,), Direction.FORWARD),
        ]
        table = TranslationTable(rules)
        assert codes.table_length(table) == pytest.approx(
            sum(codes.rule_length(rule) for rule in rules)
        )

    def test_empty_table_free(self, codes):
        assert codes.table_length(TranslationTable()) == 0.0


class TestCorrectionLengths:
    def test_correction_length_counts_cells(self, toy_dataset, codes):
        correction = np.zeros_like(toy_dataset.right)
        u = toy_dataset.item_index(Side.RIGHT, "u")
        correction[0, u] = True
        correction[3, u] = True
        expected = 2 * codes.item_length(Side.RIGHT, u)
        assert codes.correction_length(Side.RIGHT, correction) == pytest.approx(expected)

    def test_empty_correction_is_free(self, toy_dataset, codes):
        correction = np.zeros_like(toy_dataset.left)
        assert codes.correction_length(Side.LEFT, correction) == 0.0

    def test_shape_mismatch_rejected(self, toy_dataset, codes):
        with pytest.raises(ValueError, match="shape"):
            codes.correction_length(Side.LEFT, np.zeros((1, 1), bool))

    def test_baseline_length(self, toy_dataset, codes):
        # L(D, empty) = encoding of the data itself in both directions.
        expected = codes.correction_length(
            Side.LEFT, toy_dataset.left
        ) + codes.correction_length(Side.RIGHT, toy_dataset.right)
        assert codes.baseline_length() == pytest.approx(expected)
        assert codes.baseline_length() > 0

    def test_zero_support_correction_infinite(self):
        data = TwoViewDataset([[1, 0]], [[1]])
        codes = CodeLengthModel(data)
        correction = np.array([[1, 1]], dtype=bool)
        assert math.isinf(codes.correction_length(Side.LEFT, correction))
