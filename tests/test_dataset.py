"""Unit tests for the two-view data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Side, TwoViewDataset


class TestConstruction:
    def test_from_matrices(self):
        left = np.array([[1, 0], [0, 1]], dtype=bool)
        right = np.array([[1], [0]], dtype=bool)
        data = TwoViewDataset(left, right)
        assert data.n_transactions == 2
        assert data.n_left == 2
        assert data.n_right == 1

    def test_accepts_int_matrices(self):
        data = TwoViewDataset([[1, 0]], [[0, 1]])
        assert data.left.dtype == bool
        assert data.right.dtype == bool

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="Boolean"):
            TwoViewDataset([[2, 0]], [[0, 1]])

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ValueError, match="same number of transactions"):
            TwoViewDataset([[1], [0]], [[1]])

    def test_rejects_bad_name_lengths(self):
        with pytest.raises(ValueError, match="left_names"):
            TwoViewDataset([[1, 0]], [[1]], left_names=["a"])
        with pytest.raises(ValueError, match="right_names"):
            TwoViewDataset([[1, 0]], [[1]], right_names=["x", "y"])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            TwoViewDataset([[1, 0]], [[1]], left_names=["a", "a"])

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            TwoViewDataset([1, 0], [[1]])

    def test_default_names(self):
        data = TwoViewDataset([[1, 0]], [[1]])
        assert data.left_names == ["L0", "L1"]
        assert data.right_names == ["R0"]

    def test_from_transactions_infers_vocabulary(self):
        data = TwoViewDataset.from_transactions(
            [({"a"}, {"x"}), ({"b"}, {"x", "y"})]
        )
        assert set(data.left_names) == {"a", "b"}
        assert set(data.right_names) == {"x", "y"}
        assert data.n_transactions == 2

    def test_from_transactions_rejects_unknown_item(self):
        with pytest.raises(ValueError, match="unknown left item"):
            TwoViewDataset.from_transactions(
                [({"a"}, {"x"})], left_names=["b"], right_names=["x"]
            )

    def test_from_transactions_respects_given_order(self):
        data = TwoViewDataset.from_transactions(
            [({"b"}, {"y"})], left_names=["a", "b"], right_names=["x", "y"]
        )
        assert data.left_names == ["a", "b"]
        assert bool(data.left[0, 1]) is True
        assert bool(data.left[0, 0]) is False


class TestProperties:
    def test_densities(self, toy_dataset):
        expected_left = toy_dataset.left.sum() / toy_dataset.left.size
        assert toy_dataset.density_left == pytest.approx(expected_left)
        expected_right = toy_dataset.right.sum() / toy_dataset.right.size
        assert toy_dataset.density_right == pytest.approx(expected_right)

    def test_len(self, toy_dataset):
        assert len(toy_dataset) == 5

    def test_view_and_names(self, toy_dataset):
        assert toy_dataset.view(Side.LEFT) is toy_dataset.left
        assert toy_dataset.view(Side.RIGHT) is toy_dataset.right
        assert toy_dataset.names(Side.LEFT) == ["a", "b", "c", "d"]
        assert toy_dataset.n_side(Side.RIGHT) == 4

    def test_side_opposite(self):
        assert Side.LEFT.opposite is Side.RIGHT
        assert Side.RIGHT.opposite is Side.LEFT

    def test_summary(self, toy_dataset):
        summary = toy_dataset.summary()
        assert summary["name"] == "toy"
        assert summary["n_transactions"] == 5

    def test_repr(self, toy_dataset):
        text = repr(toy_dataset)
        assert "toy" in text
        assert "n=5" in text

    def test_item_counts(self, toy_dataset):
        counts = toy_dataset.item_counts(Side.LEFT)
        assert counts[toy_dataset.item_index(Side.LEFT, "a")] == 3

    def test_item_index_unknown(self, toy_dataset):
        with pytest.raises(KeyError, match="unknown"):
            toy_dataset.item_index(Side.LEFT, "zzz")


class TestSupport:
    def test_support_mask_single(self, toy_dataset):
        a = toy_dataset.item_index(Side.LEFT, "a")
        mask = toy_dataset.support_mask(Side.LEFT, [a])
        assert mask.tolist() == [True, False, False, True, True]

    def test_support_mask_itemset(self, toy_dataset):
        a = toy_dataset.item_index(Side.LEFT, "a")
        d = toy_dataset.item_index(Side.LEFT, "d")
        mask = toy_dataset.support_mask(Side.LEFT, [a, d])
        assert mask.tolist() == [False, False, False, True, False]

    def test_empty_itemset_supported_everywhere(self, toy_dataset):
        assert toy_dataset.support_mask(Side.LEFT, []).all()

    def test_support_count(self, toy_dataset):
        c = toy_dataset.item_index(Side.LEFT, "c")
        assert toy_dataset.support_count(Side.LEFT, [c]) == 2

    def test_joint_support(self, toy_dataset):
        a = toy_dataset.item_index(Side.LEFT, "a")
        u = toy_dataset.item_index(Side.RIGHT, "u")
        mask = toy_dataset.joint_support_mask([a], [u])
        assert mask.tolist() == [True, False, False, True, True]


class TestTransactions:
    def test_transaction(self, toy_dataset):
        left, right = toy_dataset.transaction(1)
        c = toy_dataset.item_index(Side.LEFT, "c")
        d = toy_dataset.item_index(Side.LEFT, "d")
        s = toy_dataset.item_index(Side.RIGHT, "s")
        assert left == {c, d}
        assert right == {s}

    def test_transaction_names(self, toy_dataset):
        left, right = toy_dataset.transaction_names(0)
        assert left == {"a", "b"}
        assert right == {"u", "p"}

    def test_iter_transactions(self, toy_dataset):
        transactions = list(toy_dataset.iter_transactions())
        assert len(transactions) == 5
        assert all(isinstance(pair, tuple) for pair in transactions)


class TestDerived:
    def test_subset(self, toy_dataset):
        sub = toy_dataset.subset([0, 2])
        assert sub.n_transactions == 2
        assert sub.left_names == toy_dataset.left_names
        np.testing.assert_array_equal(sub.left[1], toy_dataset.left[2])

    def test_sample(self, toy_dataset):
        sample = toy_dataset.sample(3, rng=0)
        assert sample.n_transactions == 3

    def test_sample_too_large(self, toy_dataset):
        with pytest.raises(ValueError, match="sample"):
            toy_dataset.sample(99)

    def test_split(self, toy_dataset):
        first, second = toy_dataset.split(0.6, rng=0)
        assert first.n_transactions + second.n_transactions == 5
        assert first.n_transactions >= 1
        assert second.n_transactions >= 1

    def test_split_bad_fraction(self, toy_dataset):
        with pytest.raises(ValueError, match="fraction"):
            toy_dataset.split(1.5)

    def test_swapped(self, toy_dataset):
        swapped = toy_dataset.swapped()
        assert swapped.n_left == toy_dataset.n_right
        np.testing.assert_array_equal(swapped.left, toy_dataset.right)
        assert swapped.left_names == toy_dataset.right_names

    def test_swapped_twice_is_identity(self, toy_dataset):
        double = toy_dataset.swapped().swapped()
        assert double == toy_dataset

    def test_joined(self, toy_dataset):
        joint, names = toy_dataset.joined()
        assert joint.shape == (5, 8)
        assert names[0] == "L:a"
        assert names[4] == "R:p"
        np.testing.assert_array_equal(joint[:, :4], toy_dataset.left)

    def test_equality(self, toy_dataset):
        same = TwoViewDataset(
            toy_dataset.left.copy(),
            toy_dataset.right.copy(),
            toy_dataset.left_names,
            toy_dataset.right_names,
            name="other-name",
        )
        assert same == toy_dataset  # name not part of equality
        assert toy_dataset != "not a dataset"
