"""Tests for two-view pattern sampling (repro.mining.sampling)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.mining.sampling import _transaction_weights, sample_candidates, sample_pattern
from repro.mining.twoview import TwoViewCandidate, two_view_candidates


@pytest.fixture
def structured_dataset() -> TwoViewDataset:
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=200,
            n_left=12,
            n_right=12,
            n_rules=3,
            density_left=0.15, density_right=0.15,
            seed=7,
        )
    )
    return dataset


class TestTransactionWeights:
    def test_empty_side_gives_zero_weight(self):
        left = np.array([[True, False], [False, False]])
        right = np.array([[True], [True]])
        dataset = TwoViewDataset(left, right)
        weights = _transaction_weights(dataset)
        assert weights[0] > 0
        assert weights[1] == 0.0

    def test_weight_counts_spanning_subpatterns(self):
        # 2 left items, 1 right item -> (2^2 - 1) * (2^1 - 1) = 3.
        left = np.array([[True, True]])
        right = np.array([[True]])
        dataset = TwoViewDataset(left, right)
        assert _transaction_weights(dataset)[0] == pytest.approx(3.0)

    def test_weights_are_finite_for_wide_transactions(self):
        left = np.ones((1, 200), dtype=bool)
        right = np.ones((1, 200), dtype=bool)
        dataset = TwoViewDataset(left, right)
        assert np.isfinite(_transaction_weights(dataset)).all()


class TestSamplePattern:
    def test_pattern_occurs_in_data(self, structured_dataset):
        rng = np.random.default_rng(0)
        for __ in range(50):
            pattern = sample_pattern(structured_dataset, rng)
            assert pattern is not None
            lhs, rhs = pattern
            assert structured_dataset.joint_support_mask(lhs, rhs).any()

    def test_pattern_spans_both_views(self, structured_dataset):
        rng = np.random.default_rng(1)
        for __ in range(50):
            lhs, rhs = sample_pattern(structured_dataset, rng)
            assert lhs and rhs

    def test_all_empty_dataset_returns_none(self):
        dataset = TwoViewDataset(
            np.zeros((4, 3), dtype=bool), np.zeros((4, 2), dtype=bool)
        )
        rng = np.random.default_rng(2)
        assert sample_pattern(dataset, rng) is None

    def test_generalise_false_stays_within_seed(self, structured_dataset):
        rng = np.random.default_rng(3)
        pattern = sample_pattern(structured_dataset, rng, generalise=False)
        assert pattern is not None


class TestSampleCandidates:
    def test_returns_two_view_candidates(self, structured_dataset):
        candidates = sample_candidates(structured_dataset, 100, rng=0)
        assert candidates
        assert all(isinstance(candidate, TwoViewCandidate) for candidate in candidates)

    def test_supports_are_exact(self, structured_dataset):
        for candidate in sample_candidates(structured_dataset, 100, rng=1):
            mask = structured_dataset.joint_support_mask(candidate.lhs, candidate.rhs)
            assert candidate.support == int(mask.sum())

    def test_candidates_are_distinct(self, structured_dataset):
        candidates = sample_candidates(structured_dataset, 300, rng=2)
        keys = {(candidate.lhs, candidate.rhs) for candidate in candidates}
        assert len(keys) == len(candidates)

    def test_sorted_by_support_descending(self, structured_dataset):
        candidates = sample_candidates(structured_dataset, 200, rng=3)
        supports = [candidate.support for candidate in candidates]
        assert supports == sorted(supports, reverse=True)

    def test_min_support_filter(self, structured_dataset):
        candidates = sample_candidates(structured_dataset, 200, rng=4, min_support=5)
        assert all(candidate.support >= 5 for candidate in candidates)

    def test_reproducible_with_seed(self, structured_dataset):
        first = sample_candidates(structured_dataset, 100, rng=42)
        second = sample_candidates(structured_dataset, 100, rng=42)
        assert first == second

    def test_zero_samples(self, structured_dataset):
        assert sample_candidates(structured_dataset, 0, rng=0) == []

    def test_negative_samples_rejected(self, structured_dataset):
        with pytest.raises(ValueError, match="non-negative"):
            sample_candidates(structured_dataset, -1)

    def test_bad_min_support_rejected(self, structured_dataset):
        with pytest.raises(ValueError, match="at least 1"):
            sample_candidates(structured_dataset, 10, min_support=0)

    def test_sampled_patterns_are_subset_of_mined_space(self, structured_dataset):
        """Every sampled candidate must be a frequent two-view itemset at minsup=1."""
        sampled = sample_candidates(structured_dataset, 150, rng=5)
        mined = two_view_candidates(structured_dataset, minsup=1, closed=False, max_size=4)
        mined_keys = {(candidate.lhs, candidate.rhs) for candidate in mined}
        small = [candidate for candidate in sampled if candidate.size <= 4]
        assert small, "expected some small sampled candidates"
        for candidate in small:
            assert (candidate.lhs, candidate.rhs) in mined_keys

    def test_planted_rules_are_discovered(self):
        """Sampling should hit the high-area planted patterns quickly."""
        dataset, planted = generate_planted(
            SyntheticSpec(
                n_transactions=300,
                n_left=10,
                n_right=10,
                n_rules=2,
                density_left=0.12, density_right=0.12,
                seed=11,
            )
        )
        candidates = sample_candidates(dataset, 500, rng=6)
        keys = {(candidate.lhs, candidate.rhs) for candidate in candidates}
        hits = sum(
            1
            for rule in planted
            if (tuple(sorted(rule.lhs)), tuple(sorted(rule.rhs))) in keys
        )
        assert hits >= 1


class TestSamplingProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_any_seed_yields_valid_candidates(self, seed):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=60,
                n_left=8,
                n_right=8,
                n_rules=2,
                density_left=0.2, density_right=0.2,
                seed=5,
            )
        )
        for candidate in sample_candidates(dataset, 30, rng=seed):
            assert candidate.lhs and candidate.rhs
            assert 1 <= candidate.support <= dataset.n_transactions
            assert all(0 <= item < dataset.n_left for item in candidate.lhs)
            assert all(0 <= item < dataset.n_right for item in candidate.rhs)
