"""Unit tests for the exact best-rule search (Section 5.2).

The reference implementation enumerates *all* co-occurring cross-view
itemset pairs by brute force and evaluates all three directions with the
cover state's gain function; the DFS search must return a rule achieving
the same maximum gain.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.data.dataset import Side, TwoViewDataset
from repro.core.rules import Direction, TranslationRule
from repro.core.search import ExactRuleSearch
from repro.core.state import CoverState
from tests.conftest import random_two_view


def brute_force_best(state: CoverState, max_size: int | None = None):
    """Enumerate every co-occurring (X, Y) pair and maximise the gain."""
    dataset = state.dataset
    best_gain = 0.0
    best_rule = None
    left_sets = []
    for size in range(1, dataset.n_left + 1):
        for items in itertools.combinations(range(dataset.n_left), size):
            if dataset.support_count(Side.LEFT, items) > 0:
                left_sets.append(items)
    right_sets = []
    for size in range(1, dataset.n_right + 1):
        for items in itertools.combinations(range(dataset.n_right), size):
            if dataset.support_count(Side.RIGHT, items) > 0:
                right_sets.append(items)
    for lhs in left_sets:
        for rhs in right_sets:
            if max_size is not None and len(lhs) + len(rhs) > max_size:
                continue
            if not dataset.joint_support_mask(lhs, rhs).any():
                continue
            for direction in Direction:
                rule = TranslationRule(lhs, rhs, direction)
                gain = state.gain(rule)
                if gain > best_gain:
                    best_gain = gain
                    best_rule = rule
    return best_rule, best_gain


class TestExactnessSmall:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force_empty_table(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_two_view(rng, n=25, n_left=5, n_right=5, density=0.35)
        state = CoverState(dataset)
        rule, gain, stats = ExactRuleSearch(state).find_best_rule()
        __, expected_gain = brute_force_best(state)
        assert gain == pytest.approx(expected_gain, abs=1e-9)
        if expected_gain > 0:
            assert rule is not None
            assert state.gain(rule) == pytest.approx(expected_gain, abs=1e-9)

    @pytest.mark.parametrize("seed", [10, 11])
    def test_matches_brute_force_after_rules(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_two_view(rng, n=25, n_left=5, n_right=5, density=0.4)
        state = CoverState(dataset)
        # Add the first two exact rules, then compare the third search.
        for __ in range(2):
            rule, gain, stats = ExactRuleSearch(state).find_best_rule()
            if rule is None:
                break
            state.add_rule(rule)
        rule, gain, __ = ExactRuleSearch(state).find_best_rule()
        __, expected_gain = brute_force_best(state)
        assert gain == pytest.approx(expected_gain, abs=1e-9)

    def test_structured_data_finds_planted_pattern(self, toy_dataset):
        state = CoverState(toy_dataset)
        rule, gain, __ = ExactRuleSearch(state).find_best_rule()
        assert rule is not None
        assert gain > 0
        # The dominant structure is {a,b} <-> {u}.
        a = toy_dataset.item_index(Side.LEFT, "a")
        b = toy_dataset.item_index(Side.LEFT, "b")
        u = toy_dataset.item_index(Side.RIGHT, "u")
        assert set(rule.lhs) <= {a, b}
        assert u in rule.rhs


class TestPruning:
    def test_ablations_do_not_change_result(self):
        rng = np.random.default_rng(5)
        dataset = random_two_view(rng, n=30, n_left=5, n_right=5, density=0.35)
        state = CoverState(dataset)
        reference_rule, reference_gain, __ = ExactRuleSearch(state).find_best_rule()
        for use_rub, use_qub, order_items in itertools.product((True, False), repeat=3):
            rule, gain, __ = ExactRuleSearch(
                state, use_rub=use_rub, use_qub=use_qub, order_items=order_items
            ).find_best_rule()
            assert gain == pytest.approx(reference_gain, abs=1e-9)

    def test_pruning_reduces_nodes(self):
        rng = np.random.default_rng(6)
        dataset = random_two_view(rng, n=40, n_left=7, n_right=7, density=0.3)
        state = CoverState(dataset)
        __, __, with_pruning = ExactRuleSearch(state).find_best_rule()
        __, __, without_pruning = ExactRuleSearch(
            state, use_rub=False
        ).find_best_rule()
        assert with_pruning.nodes_visited <= without_pruning.nodes_visited

    def test_max_rule_size(self):
        rng = np.random.default_rng(7)
        dataset = random_two_view(rng, n=30, n_left=6, n_right=6, density=0.4)
        state = CoverState(dataset)
        rule, gain, __ = ExactRuleSearch(state, max_rule_size=2).find_best_rule()
        if rule is not None:
            assert rule.size <= 2
        __, expected = brute_force_best(state, max_size=2)
        assert gain == pytest.approx(expected, abs=1e-9)

    def test_node_budget_anytime(self):
        rng = np.random.default_rng(8)
        dataset = random_two_view(rng, n=40, n_left=8, n_right=8, density=0.4)
        state = CoverState(dataset)
        rule, gain, stats = ExactRuleSearch(state, max_nodes=20).find_best_rule()
        assert stats.nodes_visited <= 21
        assert not stats.complete
        # Whatever was returned must be a real gain.
        if rule is not None:
            assert state.gain(rule) == pytest.approx(gain, abs=1e-9)

    def test_no_rule_on_tiny_noise(self):
        # A dataset with no repeated co-occurrences should yield no rule
        # with positive gain once rule costs are charged.
        dataset = TwoViewDataset(
            np.eye(4, dtype=bool), np.eye(4, dtype=bool)[:, ::-1]
        )
        state = CoverState(dataset)
        rule, gain, __ = ExactRuleSearch(state).find_best_rule()
        __, expected = brute_force_best(state)
        assert gain == pytest.approx(expected, abs=1e-9)


class TestStatsReporting:
    def test_stats_counters(self):
        rng = np.random.default_rng(9)
        dataset = random_two_view(rng, n=30, n_left=6, n_right=6, density=0.35)
        state = CoverState(dataset)
        __, __, stats = ExactRuleSearch(state).find_best_rule()
        assert stats.nodes_visited > 0
        assert stats.complete
        assert stats.evaluations + stats.evaluations_skipped_qub > 0
