"""Unit tests for redundancy/coverage analysis and FIMI loading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Side, TwoViewDataset
from repro.data.io import load_fimi, load_fimi_pair
from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorSelect
from repro.baselines.assoc import mine_crossview_rules
from repro.baselines.convert import rules_to_translation_table
from repro.eval.redundancy import (
    item_coverage,
    redundancy_report,
    redundancy_score,
    rule_overlap,
)


class TestRuleOverlap:
    def test_identical_rules_full_overlap(self, toy_dataset):
        rule = TranslationRule((0, 1), (3,), Direction.BOTH)
        assert rule_overlap(toy_dataset, rule, rule) == pytest.approx(1.0)

    def test_disjoint_rules_zero_overlap(self, toy_dataset):
        a_rule = TranslationRule((0,), (3,), Direction.FORWARD)  # fires on a-rows
        c_rule = TranslationRule((2,), (2,), Direction.FORWARD)  # fires on c-rows
        assert rule_overlap(toy_dataset, a_rule, c_rule) == 0.0

    def test_overlap_by_hand(self, toy_dataset):
        # a fires on rows {0,3,4}; d fires on rows {1,3}: overlap 1/4.
        a_rule = TranslationRule((0,), (3,), Direction.FORWARD)
        d_rule = TranslationRule((3,), (3,), Direction.FORWARD)
        assert rule_overlap(toy_dataset, a_rule, d_rule) == pytest.approx(0.25)

    def test_bidirectional_uses_both_sides(self, toy_dataset):
        # Backward direction makes the rule fire wherever rhs occurs too.
        rule = TranslationRule((2,), (3,), Direction.BOTH)
        forward_only = rule.with_direction(Direction.FORWARD)
        other = TranslationRule((0,), (1,), Direction.FORWARD)
        assert rule_overlap(toy_dataset, rule, other) >= rule_overlap(
            toy_dataset, forward_only, other
        )


class TestRedundancyScore:
    def test_single_rule_zero(self, toy_dataset):
        table = TranslationTable([TranslationRule((0,), (3,), Direction.BOTH)])
        assert redundancy_score(toy_dataset, table) == 0.0

    def test_translator_less_redundant_than_assoc_rules(self, planted_dataset):
        translator = TranslatorSelect(k=1, minsup=3).fit(planted_dataset)
        assoc = mine_crossview_rules(planted_dataset, minsup=3, minconf=0.6, max_size=4)
        assoc_table = rules_to_translation_table(assoc[:50])
        translator_score = redundancy_score(planted_dataset, translator.table)
        assoc_score = redundancy_score(planted_dataset, assoc_table)
        assert translator_score < assoc_score

    def test_max_pairs_cap(self, planted_dataset):
        assoc = mine_crossview_rules(planted_dataset, minsup=3, minconf=0.5, max_size=4)
        table = rules_to_translation_table(assoc[:40])
        capped = redundancy_score(planted_dataset, table, max_pairs=10)
        assert 0.0 <= capped <= 1.0


class TestItemCoverage:
    def test_empty_table(self, toy_dataset):
        coverage = item_coverage(toy_dataset, [])
        assert coverage["items_used_left"] == 0.0
        assert coverage["ones_covered_left"] == 0.0
        assert coverage["errors_introduced"] == 0

    def test_full_fit_covers_ones(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        coverage = item_coverage(planted_dataset, result.table)
        assert 0.0 < coverage["ones_covered_right"] <= 1.0
        expected_uncovered = int(result.state.uncovered_right.sum())
        ones = int(planted_dataset.right.sum())
        assert coverage["ones_covered_right"] == pytest.approx(
            (ones - expected_uncovered) / ones
        )

    def test_report_rows(self, planted_dataset):
        result = TranslatorSelect(k=1, minsup=2).fit(planted_dataset)
        rows = redundancy_report(
            planted_dataset, {"translator": result.table, "empty": []}
        )
        assert len(rows) == 2
        assert rows[0]["method"] == "translator"
        assert rows[1]["n_rules"] == 0


class TestFimiLoading:
    def test_load_fimi_split(self, tmp_path):
        path = tmp_path / "data.dat"
        path.write_text("0 2 5\n1 4\n# comment\n0 1 5\n")
        data = load_fimi(path, n_left=3)
        assert data.n_transactions == 3
        assert data.n_left == 3
        assert data.n_right == 3  # items 3..5
        left, right = data.transaction(0)
        assert left == {0, 2}
        assert right == {2}  # item 5 -> right column 2

    def test_load_fimi_explicit_items(self, tmp_path):
        path = tmp_path / "data.dat"
        path.write_text("0 1\n")
        data = load_fimi(path, n_left=2, n_items=6)
        assert data.n_right == 4

    def test_load_fimi_bad_item(self, tmp_path):
        path = tmp_path / "data.dat"
        path.write_text("0 9\n")
        with pytest.raises(ValueError, match="exceeds"):
            load_fimi(path, n_left=2, n_items=5)

    def test_load_fimi_bad_n_left(self, tmp_path):
        path = tmp_path / "data.dat"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="n_left"):
            load_fimi(path, n_left=10, n_items=5)

    def test_load_fimi_pair(self, tmp_path):
        left_path = tmp_path / "left.dat"
        right_path = tmp_path / "right.dat"
        left_path.write_text("0 1\n2\n")
        right_path.write_text("1\n0 1\n")
        data = load_fimi_pair(left_path, right_path)
        assert data.n_transactions == 2
        assert data.n_left == 3
        assert data.n_right == 2
        assert bool(data.right[0, 1]) is True

    def test_load_fimi_pair_mismatch(self, tmp_path):
        left_path = tmp_path / "left.dat"
        right_path = tmp_path / "right.dat"
        left_path.write_text("0\n1\n")
        right_path.write_text("0\n")
        with pytest.raises(ValueError, match="different transaction counts"):
            load_fimi_pair(left_path, right_path)
