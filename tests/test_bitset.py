"""Unit and property tests for the packed-bitset kernel primitives.

Every operation of :mod:`repro.core.bitset` is compared against its naive
Boolean-array equivalent on random masks, including the edge shapes the
packing must survive: zero items, zero transactions, a single transaction,
and universe sizes that are not multiples of 64 (so padding bits exist and
must stay zero).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bitset import (
    WORD_BITS,
    BitMatrix,
    n_words_for,
    pack_mask,
    popcount,
    popcount_rows,
    unpack_mask,
    weight_table,
    weighted_popcount,
)

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

EDGE_SIZES = [0, 1, 2, 63, 64, 65, 127, 128, 129, 200]


@st.composite
def masks(draw, max_bits=200):
    n = draw(st.integers(min_value=0, max_value=max_bits))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    density = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = np.random.default_rng(seed)
    return rng.random(n) < density


class TestPackRoundtrip:
    @SETTINGS
    @given(masks())
    def test_pack_unpack_roundtrip(self, mask):
        words = pack_mask(mask)
        assert words.dtype == np.uint64
        assert words.size == n_words_for(mask.size)
        np.testing.assert_array_equal(unpack_mask(words, mask.size), mask)

    @pytest.mark.parametrize("n", EDGE_SIZES)
    def test_padding_bits_are_zero(self, n):
        mask = np.ones(n, dtype=bool)
        words = pack_mask(mask)
        # All bits beyond n must be zero: total popcount equals n exactly.
        assert popcount(words) == n
        padded = np.unpackbits(words.view(np.uint8), bitorder="little")
        assert padded.size == n_words_for(n) * WORD_BITS
        assert int(padded[n:].sum()) == 0

    def test_pack_rejects_2d(self):
        with pytest.raises(ValueError):
            pack_mask(np.zeros((2, 2), dtype=bool))


class TestPopcounts:
    @SETTINGS
    @given(masks())
    def test_popcount_equals_bool_sum(self, mask):
        assert popcount(pack_mask(mask)) == int(mask.sum())

    @SETTINGS
    @given(masks(), masks())
    def test_and_popcount_equals_intersection(self, a, b):
        n = min(a.size, b.size)
        a, b = a[:n], b[:n]
        words = pack_mask(a) & pack_mask(b)
        assert popcount(words) == int((a & b).sum())

    @pytest.mark.parametrize("n", EDGE_SIZES)
    def test_popcount_rows(self, n):
        rng = np.random.default_rng(n)
        matrix = rng.random((5, n)) < 0.4
        bits = BitMatrix.from_bool_rows(matrix)
        np.testing.assert_array_equal(popcount_rows(bits.words), matrix.sum(axis=1))


class TestWeightedPopcount:
    @SETTINGS
    @given(masks())
    def test_weighted_popcount_matches_dot(self, mask):
        rng = np.random.default_rng(mask.size)
        weights = rng.random(mask.size) * 10.0
        table = weight_table(weights)
        expected = float(weights[mask].sum())
        assert weighted_popcount(pack_mask(mask), table) == pytest.approx(
            expected, rel=1e-12, abs=1e-12
        )

    def test_empty_universe(self):
        assert weighted_popcount(pack_mask(np.zeros(0, dtype=bool)), weight_table(np.zeros(0))) == 0.0

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_popcount(pack_mask(np.ones(65, dtype=bool)), weight_table(np.ones(64)))


class TestBitMatrix:
    @pytest.mark.parametrize("n,items", [(0, 0), (0, 3), (1, 1), (1, 4), (63, 2), (64, 2), (65, 2), (130, 5)])
    def test_roundtrip_columns(self, n, items):
        rng = np.random.default_rng(n * 31 + items)
        matrix = rng.random((n, items)) < 0.5
        bits = BitMatrix.from_bool_columns(matrix)
        assert bits.n_items == items
        assert bits.n_bits == n
        assert len(bits) == items
        np.testing.assert_array_equal(bits.to_bool_columns(), matrix)

    def test_row_iteration(self):
        matrix = np.array([[1, 0], [1, 1], [0, 1]], dtype=bool)
        bits = BitMatrix.from_bool_columns(matrix)
        rows = list(bits)
        assert len(rows) == 2
        np.testing.assert_array_equal(rows[0], bits.row(0))

    @SETTINGS
    @given(masks(max_bits=100))
    def test_set_algebra_matches_bool(self, mask):
        n = mask.size
        rng = np.random.default_rng(n + 7)
        matrix = rng.random((n, 4)) < 0.4
        bits = BitMatrix.from_bool_columns(matrix)
        mask_words = pack_mask(mask)
        for item in range(4):
            column = matrix[:, item]
            np.testing.assert_array_equal(
                unpack_mask(bits.and_mask(mask_words)[item], n), column & mask
            )
            np.testing.assert_array_equal(
                unpack_mask(bits.or_mask(mask_words)[item], n), column | mask
            )
            np.testing.assert_array_equal(
                unpack_mask(bits.andnot_mask(mask_words)[item], n), column & ~mask
            )

    def test_support_and_counts(self):
        rng = np.random.default_rng(11)
        matrix = rng.random((70, 5)) < 0.5
        bits = BitMatrix.from_bool_columns(matrix)
        np.testing.assert_array_equal(bits.counts(), matrix.sum(axis=0))
        # AND-reduction over an itemset equals the row-wise all().
        support = bits.support([0, 2, 3])
        np.testing.assert_array_equal(
            unpack_mask(support, 70), matrix[:, [0, 2, 3]].all(axis=1)
        )
        # The empty itemset is the full universe.
        assert popcount(bits.support([])) == 70

    def test_single_item_support_is_a_copy(self):
        matrix = np.ones((10, 1), dtype=bool)
        bits = BitMatrix.from_bool_columns(matrix)
        support = bits.support([0])
        support[:] = 0
        assert popcount(bits.row(0)) == 10
