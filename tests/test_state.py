"""Unit tests for the incremental cover state (Section 5.1).

The central invariant: the incrementally maintained state (translated
views, U/E tables, encoded lengths, gains) must always agree with a
from-scratch recomputation via :func:`repro.core.translate.corrections`
and :class:`repro.core.encoding.CodeLengthModel`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Side
from repro.core.encoding import CodeLengthModel
from repro.core.rules import Direction, TranslationRule
from repro.core.state import CoverState
from repro.core.translate import corrections


def random_rules(dataset, rng, count=8):
    rules = []
    while len(rules) < count:
        lhs_size = int(rng.integers(1, 3))
        rhs_size = int(rng.integers(1, 3))
        lhs = tuple(rng.choice(dataset.n_left, size=lhs_size, replace=False))
        rhs = tuple(rng.choice(dataset.n_right, size=rhs_size, replace=False))
        direction = [Direction.FORWARD, Direction.BACKWARD, Direction.BOTH][
            int(rng.integers(3))
        ]
        rule = TranslationRule(lhs, rhs, direction)
        if rule not in rules:
            rules.append(rule)
    return rules


class TestInitialState:
    def test_everything_uncovered(self, toy_dataset):
        state = CoverState(toy_dataset)
        np.testing.assert_array_equal(state.uncovered_left, toy_dataset.left)
        np.testing.assert_array_equal(state.uncovered_right, toy_dataset.right)
        assert not state.errors_left.any()
        assert not state.errors_right.any()
        assert state.table_bits == 0.0

    def test_baseline_matches_codes(self, toy_dataset):
        state = CoverState(toy_dataset)
        codes = CodeLengthModel(toy_dataset)
        assert state.total_length() == pytest.approx(codes.baseline_length())
        assert state.compression_ratio() == pytest.approx(1.0)

    def test_correction_fraction_initial(self, toy_dataset):
        state = CoverState(toy_dataset)
        ones = toy_dataset.left.sum() + toy_dataset.right.sum()
        cells = toy_dataset.n_items * toy_dataset.n_transactions
        assert state.correction_fraction() == pytest.approx(ones / cells)


class TestConsistencyAfterRules:
    def test_matches_batch_corrections(self, planted_dataset, rng):
        state = CoverState(planted_dataset)
        rules = random_rules(planted_dataset, rng)
        for rule in rules:
            state.add_rule(rule)
        batch = corrections(planted_dataset, state.table)
        np.testing.assert_array_equal(state.translated_right, batch.translated_right)
        np.testing.assert_array_equal(state.translated_left, batch.translated_left)
        np.testing.assert_array_equal(state.uncovered_right, batch.uncovered_right)
        np.testing.assert_array_equal(state.errors_right, batch.errors_right)
        np.testing.assert_array_equal(state.uncovered_left, batch.uncovered_left)
        np.testing.assert_array_equal(state.errors_left, batch.errors_left)

    def test_lengths_match_recomputation(self, planted_dataset, rng):
        state = CoverState(planted_dataset)
        codes = state.codes
        for rule in random_rules(planted_dataset, rng):
            state.add_rule(rule)
        batch = corrections(planted_dataset, state.table)
        expected_left = codes.correction_length(Side.LEFT, batch.correction_left)
        expected_right = codes.correction_length(Side.RIGHT, batch.correction_right)
        assert state.correction_bits_left == pytest.approx(expected_left)
        assert state.correction_bits_right == pytest.approx(expected_right)
        assert state.table_bits == pytest.approx(codes.table_length(state.table))

    def test_u_and_e_disjoint_invariant(self, planted_dataset, rng):
        state = CoverState(planted_dataset)
        for rule in random_rules(planted_dataset, rng):
            state.add_rule(rule)
            assert not (state.uncovered_right & state.errors_right).any()
            assert not (state.uncovered_left & state.errors_left).any()

    def test_errors_never_removed(self, planted_dataset, rng):
        # Once an error is inserted into E it cannot be removed (Section 5.1).
        state = CoverState(planted_dataset)
        previous_errors = state.errors_right.copy()
        for rule in random_rules(planted_dataset, rng):
            state.add_rule(rule)
            assert (state.errors_right | ~previous_errors).all() or not (
                previous_errors & ~state.errors_right
            ).any()
            previous_errors = state.errors_right.copy()

    def test_uncovered_monotone_shrinking(self, planted_dataset, rng):
        state = CoverState(planted_dataset)
        previous = state.uncovered_right.copy()
        for rule in random_rules(planted_dataset, rng):
            state.add_rule(rule)
            assert not (state.uncovered_right & ~previous).any()
            previous = state.uncovered_right.copy()


class TestGain:
    def test_gain_equals_length_difference(self, planted_dataset, rng):
        """state.gain(r) must equal L(D,T) - L(D,T + r) exactly (Eq. 1)."""
        state = CoverState(planted_dataset)
        for rule in random_rules(planted_dataset, rng, count=12):
            before = state.total_length()
            predicted = state.gain(rule)
            state.add_rule(rule)
            actual = before - state.total_length()
            assert predicted == pytest.approx(actual, abs=1e-9)

    def test_bidirectional_delta_is_sum(self, planted_dataset, rng):
        state = CoverState(planted_dataset)
        lhs = (0, 1)
        rhs = (2,)
        forward = state.delta_forward(lhs, rhs)
        backward = state.delta_backward(lhs, rhs)
        both_rule = TranslationRule(lhs, rhs, Direction.BOTH)
        base = state.codes.itemset_length(Side.LEFT, lhs) + state.codes.itemset_length(
            Side.RIGHT, rhs
        )
        assert state.gain(both_rule) == pytest.approx(forward + backward - base - 1.0)

    def test_best_direction_consistent_with_gain(self, planted_dataset):
        state = CoverState(planted_dataset)
        rule, gain = state.best_direction((0,), (0,))
        assert gain == pytest.approx(state.gain(rule))
        for direction in Direction:
            other = TranslationRule((0,), (0,), direction)
            assert state.gain(other) <= gain + 1e-9

    def test_gain_of_nonoccurring_antecedent(self, toy_dataset):
        state = CoverState(toy_dataset)
        # {a, c} never co-occur on the left side of the toy dataset.
        a = toy_dataset.item_index(Side.LEFT, "a")
        c = toy_dataset.item_index(Side.LEFT, "c")
        rule = TranslationRule((a, c), (0,), Direction.FORWARD)
        # Delta is zero, so the gain is minus the rule length.
        assert state.gain(rule) == pytest.approx(-state.codes.rule_length(rule))


class TestSnapshot:
    def test_snapshot_keys(self, toy_dataset):
        state = CoverState(toy_dataset)
        snapshot = state.snapshot()
        for key in (
            "n_rules",
            "uncovered_left",
            "uncovered_right",
            "errors_left",
            "errors_right",
            "table_bits",
            "total_bits",
            "compression_ratio",
        ):
            assert key in snapshot

    def test_transaction_upper_bounds(self, toy_dataset):
        state = CoverState(toy_dataset)
        tub = state.transaction_upper_bounds(Side.RIGHT)
        assert tub.shape == (toy_dataset.n_transactions,)
        # Initially, tub is the encoded size of each full right transaction.
        weights = state._weights_right
        expected = toy_dataset.right @ weights
        np.testing.assert_allclose(tub, expected)

    def test_tub_decreases_after_rule(self, planted_dataset, rng):
        state = CoverState(planted_dataset)
        before = state.transaction_upper_bounds(Side.RIGHT).sum()
        for rule in random_rules(planted_dataset, rng, count=5):
            state.add_rule(rule)
        after = state.transaction_upper_bounds(Side.RIGHT).sum()
        assert after <= before + 1e-9
