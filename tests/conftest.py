"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted


@pytest.fixture
def toy_dataset() -> TwoViewDataset:
    """A small handcrafted dataset in the spirit of the paper's Fig. 1.

    Five transactions over left items {a, b, c, d} and right items
    {p, q, s, u}; transactions 0, 3, 4 share the pattern {a, b} on the
    left and {u} on the right, transactions 1, 2 share {c} -> {s}.
    """
    return TwoViewDataset.from_transactions(
        [
            ({"a", "b"}, {"u", "p"}),
            ({"c", "d"}, {"s"}),
            ({"c"}, {"s", "q"}),
            ({"a", "b", "d"}, {"u"}),
            ({"a", "b"}, {"u", "q"}),
        ],
        left_names=["a", "b", "c", "d"],
        right_names=["p", "q", "s", "u"],
        name="toy",
    )


@pytest.fixture
def planted_dataset() -> TwoViewDataset:
    """A small planted dataset with clear cross-view structure."""
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=150,
            n_left=10,
            n_right=10,
            density_left=0.15,
            density_right=0.15,
            n_rules=3,
            seed=42,
        )
    )
    return dataset


@pytest.fixture
def planted_with_truth() -> tuple[TwoViewDataset, list]:
    """Planted dataset together with its ground-truth rules."""
    return generate_planted(
        SyntheticSpec(
            n_transactions=250,
            n_left=12,
            n_right=12,
            density_left=0.12,
            density_right=0.12,
            n_rules=4,
            confidence=(0.95, 1.0),
            activation=(0.15, 0.3),
            seed=7,
        )
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded random generator for deterministic tests."""
    return np.random.default_rng(12345)


def random_two_view(
    rng: np.random.Generator,
    n: int = 30,
    n_left: int = 6,
    n_right: int = 6,
    density: float = 0.3,
) -> TwoViewDataset:
    """Helper: a random (unstructured) dataset for brute-force checks."""
    left = rng.random((n, n_left)) < density
    right = rng.random((n, n_right)) < density
    # Guarantee every item occurs at least once so code lengths are finite.
    for column in range(n_left):
        if not left[:, column].any():
            left[int(rng.integers(n)), column] = True
    for column in range(n_right):
        if not right[:, column].any():
            right[int(rng.integers(n)), column] = True
    return TwoViewDataset(left, right, name="random")
