"""Replica-router tests (``pytest -m cluster_smoke``).

The deterministic half covers routing mechanics — least-loaded
selection, JSON and packed ``/predict`` fan-out, ``/statz``
aggregation, the registry-driven rolling swap.  The chaos half (also
``chaos_smoke``) injects scripted faults through
:mod:`repro.resilience.faults` and asserts the pool-level promises: a
replica killed mid-batch loses its connections but **zero requests**
(everything reroutes), drain-and-swap under sustained load never
publishes a torn response, and ``/readyz`` walks
ready -> degraded -> ready as a replica is ejected and re-admitted.

All replicas are in-process asyncio servers (one core is enough); the
process-spawning factory is exercised by ``benchmarks/bench_cluster.py``
and the CLI.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.data.dataset import TwoViewDataset
from repro.resilience import FaultInjector
from repro.resilience.policy import CircuitBreaker
from repro.serve import ModelArtifact, ModelRegistry, ReplicaRouter
from repro.serve.router import local_replica_factory
from repro.stream.codec import encode_packed_rows

pytestmark = pytest.mark.cluster_smoke

N_LEFT, N_RIGHT = 14, 11


def make_artifact(seed: int = 4, n_rules: int = 10) -> ModelArtifact:
    rng = np.random.default_rng(seed)
    rules = set()
    while len(rules) < n_rules:
        lhs = tuple(
            sorted(rng.choice(N_LEFT, size=int(rng.integers(1, 4)), replace=False))
        )
        rhs = tuple(
            sorted(rng.choice(N_RIGHT, size=int(rng.integers(1, 4)), replace=False))
        )
        direction = ("->", "<-", "<->")[int(rng.integers(0, 3))]
        rules.add((lhs, rhs, direction))
    table = TranslationTable(
        TranslationRule(lhs, rhs, direction)
        for lhs, rhs, direction in sorted(rules)
    )
    dataset = TwoViewDataset(
        rng.random((8, N_LEFT)) < 0.4,
        rng.random((8, N_RIGHT)) < 0.4,
        name="router-test",
    )

    class _Result:
        def __init__(self):
            self.table = table

        def summary(self):
            return {"n_rules": len(table)}

    return ModelArtifact.from_result("router-test", dataset, _Result(), {})


@pytest.fixture()
def registry(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(make_artifact())
    return registry


def fast_breaker() -> CircuitBreaker:
    """Eject after 2 failures, re-probe after 50ms (test-speed backoff)."""
    return CircuitBreaker(failure_threshold=2, reset_timeout=0.05)


def make_router(registry, workers=2, **kwargs) -> ReplicaRouter:
    kwargs.setdefault("probe_interval", 0)  # probes driven explicitly
    kwargs.setdefault("breaker_factory", fast_breaker)
    factory = local_replica_factory(registry)

    async def breaker_factory_wrapper(name):
        replica = await factory(name)
        replica.breaker = kwargs["breaker_factory"]()
        return replica

    return ReplicaRouter(
        breaker_factory_wrapper,
        workers=workers,
        registry=registry,
        **kwargs,
    )


async def http(host, port, method, path, body=b""):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode()
        + body
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, sep, payload = raw.partition(b"\r\n\r\n")
    assert sep, f"torn response: {raw!r}"
    status = int(head.split()[1])
    return status, json.loads(payload.decode("utf-8"))


def json_body(rows=((0, 1), (2,))) -> bytes:
    return json.dumps(
        {"model": "router-test", "target": "R", "rows": [list(r) for r in rows]}
    ).encode("utf-8")


def packed_body(seed=0, n_rows=4) -> bytes:
    rng = np.random.default_rng(seed)
    matrix = rng.random((n_rows, N_LEFT)) < 0.4
    return encode_packed_rows(
        matrix, meta={"model": "router-test", "target": "R"}
    )


class TestRouting:
    def test_fans_out_json_and_packed_bodies(self, registry):
        async def scenario():
            router = make_router(registry, workers=2)
            await router.start()
            try:
                status, payload = await http(
                    router.host, router.port, "POST", "/predict", json_body()
                )
                assert status == 200 and len(payload["predictions"]) == 2
                status, payload = await http(
                    router.host, router.port, "POST", "/predict", packed_body()
                )
                assert status == 200 and len(payload["predictions"]) == 4
            finally:
                await router.stop()

        asyncio.run(scenario())

    def test_router_and_bare_server_answers_are_identical(self, registry):
        from repro.serve import PredictionServer, PredictionService

        async def scenario():
            server = PredictionServer(PredictionService(registry), port=0)
            await server.start()
            router = make_router(registry, workers=2)
            await router.start()
            try:
                for body in (json_body(), packed_body(3)):
                    __, direct = await http(
                        server.host, server.port, "POST", "/predict", body
                    )
                    __, routed = await http(
                        router.host, router.port, "POST", "/predict", body
                    )
                    assert direct["predictions"] == routed["predictions"]
            finally:
                await router.stop()
                await server.stop()

        asyncio.run(scenario())

    def test_least_loaded_pick_prefers_idle_replica(self, registry):
        async def scenario():
            router = make_router(registry, workers=3)
            await router.start()
            try:
                first, second, third = router.replicas
                first.inflight = 5
                second.inflight = 1
                third.inflight = 3
                assert router.pick() is second
                second.draining = True
                assert router.pick() is third
                assert router.pick({third}) is first
            finally:
                await router.stop()

        asyncio.run(scenario())

    def test_statz_aggregates_model_stats_across_replicas(self, registry):
        async def scenario():
            router = make_router(registry, workers=2)
            await router.start()
            try:
                # Distinct bodies so replica response caches don't merge
                # them; concurrency spreads them across the pool.
                await asyncio.gather(
                    *(
                        http(
                            router.host,
                            router.port,
                            "POST",
                            "/predict",
                            packed_body(seed),
                        )
                        for seed in range(6)
                    )
                )
                status, stats = await http(
                    router.host, router.port, "GET", "/statz"
                )
                assert status == 200
                assert stats["models"]["router-test"]["requests"] == 6
                assert {r["name"] for r in stats["replicas"]} == {"w1", "w2"}
                assert stats["router"]["rejected"] == 0
            finally:
                await router.stop()

        asyncio.run(scenario())

    def test_models_endpoint_is_forwarded(self, registry):
        async def scenario():
            router = make_router(registry, workers=1)
            await router.start()
            try:
                status, payload = await http(
                    router.host, router.port, "GET", "/models"
                )
                assert status == 200
                assert payload["models"][0]["name"] == "router-test"
            finally:
                await router.stop()

        asyncio.run(scenario())

    def test_unroutable_path_is_404_and_no_pool_is_503(self, registry):
        async def scenario():
            router = make_router(registry, workers=1)
            await router.start()
            try:
                status, __ = await http(router.host, router.port, "GET", "/nope")
                assert status == 404
                for replica in router.replicas:
                    replica.draining = True
                status, payload = await http(
                    router.host, router.port, "POST", "/predict", json_body()
                )
                assert status == 503 and payload["router"]
            finally:
                await router.stop()

        asyncio.run(scenario())

    def test_registry_publish_triggers_rolling_swap(self, registry):
        async def scenario():
            router = make_router(registry, workers=2)
            await router.start()
            try:
                assert not await router.check_rollout()  # nothing moved
                before = {r.name for r in router.replicas}
                registry.publish(make_artifact(seed=9))
                assert await router.check_rollout()
                after = {r.name for r in router.replicas}
                assert before.isdisjoint(after) and len(after) == 2
                status, payload = await http(
                    router.host, router.port, "POST", "/predict", json_body()
                )
                assert status == 200 and payload["version"] == 2
            finally:
                await router.stop()

        asyncio.run(scenario())


@pytest.mark.chaos_smoke
class TestChaos:
    def test_replica_killed_mid_batch_drops_zero_requests(self, registry):
        """Crash w1 under a concurrent burst: every request still 200."""

        async def scenario():
            router = make_router(registry, workers=2)
            await router.start()
            try:
                # Route one request so w1 is the warm, least-recently
                # loaded target, then crash it on its next request.
                await http(
                    router.host, router.port, "POST", "/predict", json_body()
                )
                injector = FaultInjector().plan(
                    "serve.w1.request", kind="crash", nth=1
                )
                with injector.active():
                    results = await asyncio.gather(
                        *(
                            http(
                                router.host,
                                router.port,
                                "POST",
                                "/predict",
                                packed_body(seed),
                            )
                            for seed in range(8)
                        )
                    )
                assert injector.fired, "the crash never triggered"
                assert [status for status, __ in results] == [200] * 8
                assert router.rerouted >= 1
                w1 = next(r for r in router.replicas if r.name == "w1")
                assert w1.server.crashed  # type: ignore[attr-defined]
            finally:
                await router.stop()

        asyncio.run(scenario())

    def test_readyz_degrades_and_recovers_with_ejection(self, registry):
        """ready -> degraded (breaker open) -> ready (re-admitted)."""

        async def scenario():
            router = make_router(registry, workers=2)
            await router.start()
            try:
                status, payload = await http(
                    router.host, router.port, "GET", "/readyz"
                )
                assert (status, payload["status"]) == (200, "ready")

                injector = FaultInjector().plan(
                    "serve.w2.request", kind="crash", nth=1
                )
                with injector.active():
                    await asyncio.gather(
                        *(
                            http(
                                router.host,
                                router.port,
                                "POST",
                                "/predict",
                                packed_body(seed),
                            )
                            for seed in range(6)
                        )
                    )
                assert injector.fired
                w2 = next(r for r in router.replicas if r.name == "w2")
                # Probes against the dead listener open the breaker.
                while w2.breaker.state != CircuitBreaker.OPEN:
                    await router.probe(w2)
                    await asyncio.sleep(0.01)
                status, payload = await http(
                    router.host, router.port, "GET", "/readyz"
                )
                assert (status, payload["status"]) == (200, "degraded")
                assert payload["ejected"] == ["w2"]

                # Operator (or supervisor) restarts the worker on its
                # old port; after the backoff the health probe re-admits.
                await w2.server.start()  # type: ignore[attr-defined]
                await asyncio.sleep(0.06)  # breaker reset_timeout
                assert await router.probe(w2)
                status, payload = await http(
                    router.host, router.port, "GET", "/readyz"
                )
                assert (status, payload["status"]) == (200, "ready")
            finally:
                await router.stop()

        asyncio.run(scenario())

    def test_all_replicas_dead_is_unavailable_readyz(self, registry):
        async def scenario():
            router = make_router(registry, workers=2)
            await router.start()
            try:
                for replica in router.replicas:
                    await replica.server.stop()  # type: ignore[attr-defined]
                    while replica.breaker.state == CircuitBreaker.CLOSED:
                        await router.probe(replica)
                status, payload = await http(
                    router.host, router.port, "GET", "/readyz"
                )
                assert (status, payload["status"]) == (503, "unavailable")
            finally:
                await router.stop()

        asyncio.run(scenario())

    def test_drain_and_swap_under_load_serves_every_request(self, registry):
        """A rolling swap mid-traffic: no torn responses, no errors.

        The load task hammers ``/predict`` while the pool is replaced
        replica-by-replica; every response must parse as a complete
        JSON prediction document with status 200 (the ``http`` helper
        asserts the framing, so a torn body would fail loudly).
        """

        async def scenario():
            router = make_router(registry, workers=2)
            await router.start()
            statuses: list[int] = []
            stop = asyncio.Event()

            async def load():
                seed = 0
                while not stop.is_set():
                    status, payload = await http(
                        router.host,
                        router.port,
                        "POST",
                        "/predict",
                        packed_body(seed % 5),
                    )
                    statuses.append(status)
                    assert "predictions" in payload or "error" in payload
                    seed += 1

            try:
                load_task = asyncio.ensure_future(load())
                await asyncio.sleep(0.05)
                before = {r.name for r in router.replicas}
                swapped = await router.rolling_swap(drain_timeout=2.0)
                await asyncio.sleep(0.05)
                stop.set()
                await load_task
                assert swapped == 2
                assert {r.name for r in router.replicas}.isdisjoint(before)
                assert len(statuses) > 5
                assert statuses == [200] * len(statuses)
            finally:
                await router.stop()

        asyncio.run(scenario())
