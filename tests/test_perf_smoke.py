"""Fast kernel-benchmark smoke test (``pytest -m perf_smoke``).

Runs the search-kernel microbenchmark in tiny mode (seconds, not minutes)
so tier-1 catches kernel regressions — a result mismatch between the bool
and bitset kernels, or a benchmark harness break — without paying for a
full grid run.  The speedup itself is only asserted in the full run
(``python benchmarks/bench_search_kernel.py``), since tiny inputs are
dominated by fixed overheads.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench_module(stem: str = "bench_search_kernel"):
    spec = importlib.util.spec_from_file_location(stem, _BENCHMARKS / f"{stem}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault(stem, module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.perf_smoke
def test_kernel_benchmark_tiny_mode(tmp_path):
    bench = _load_bench_module()
    report = bench.run_grid(tiny=True)
    assert report["mode"] == "tiny"
    assert report["grid"], "tiny grid must not be empty"
    for row in report["grid"]:
        assert row["identical_results"], f"kernels disagreed on {row}"
        assert row["bool_seconds"] > 0 and row["bitset_seconds"] > 0
    assert report["all_identical"]
    # The JSON entry point must work end to end.
    output = tmp_path / "BENCH_search.json"
    exit_code = bench.main(["--tiny", "--output", str(output)])
    assert exit_code == 0
    assert output.exists()


@pytest.mark.perf_smoke
def test_stream_benchmark_tiny_mode(tmp_path):
    bench = _load_bench_module("bench_stream")
    report = bench.run_grid(tiny=True)
    assert report["mode"] == "tiny"
    workload = report["workload"]
    assert workload["buffer_bit_identical"], "incremental buffer diverged"
    assert workload["windowed_refit_bit_identical"], "windowed refit diverged"
    assert workload["incremental_seconds"] > 0 and workload["full_seconds"] > 0
    assert report["all_identical"]
    # The JSON entry point must work end to end.
    output = tmp_path / "BENCH_stream.json"
    exit_code = bench.main(["--tiny", "--output", str(output)])
    assert exit_code == 0
    assert output.exists()


@pytest.mark.perf_smoke
def test_native_benchmark_tiny_mode(tmp_path):
    # Asserts numpy<->native bit-equivalence on every cell that could
    # run; on a machine with no C compiler the native cells are skipped
    # gracefully and the fallback probe still proves auto -> numpy.
    bench = _load_bench_module("bench_native")
    report = bench.run_grid(tiny=True)
    assert report["mode"] == "tiny"
    assert report["all_identical"], "backends disagreed"
    for row in report["search"]:
        if report["native_available"]:
            assert row["identical_results"], f"search cell diverged: {row}"
        else:
            assert row["skipped"]
    if report["native_available"]:
        assert report["bulk_predict"]["identical_results"]
        assert report["stream"]["identical_results"]
    fallback = report["fallback"]
    assert fallback["identical_results"]
    assert fallback["subprocess_auto_resolves_to"] == "numpy"
    assert fallback["subprocess_native_available"] is False
    # The JSON entry point must work end to end.
    output = tmp_path / "BENCH_native.json"
    exit_code = bench.main(["--tiny", "--output", str(output)])
    assert exit_code == 0
    assert output.exists()


@pytest.mark.perf_smoke
def test_serve_benchmark_tiny_mode(tmp_path):
    bench = _load_bench_module("bench_serve")
    report = bench.run_grid(tiny=True)
    assert report["mode"] == "tiny"
    assert report["grid"], "tiny serving grid must not be empty"
    for cell in report["grid"]:
        assert cell["identical_results"], f"engines disagreed on {cell}"
        assert cell["loop_seconds"] > 0 and cell["compiled_seconds"] > 0
    assert report["all_identical"]
    assert report["cache"]["warm_cached"], "second identical request must hit the cache"
    # The JSON entry point must work end to end.
    output = tmp_path / "BENCH_serve.json"
    exit_code = bench.main(["--tiny", "--output", str(output)])
    assert exit_code == 0
    assert output.exists()
