"""Fast kernel-benchmark smoke test (``pytest -m perf_smoke``).

Runs the search-kernel microbenchmark in tiny mode (seconds, not minutes)
so tier-1 catches kernel regressions — a result mismatch between the bool
and bitset kernels, or a benchmark harness break — without paying for a
full grid run.  The speedup itself is only asserted in the full run
(``python benchmarks/bench_search_kernel.py``), since tiny inputs are
dominated by fixed overheads.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench_module(stem: str = "bench_search_kernel"):
    spec = importlib.util.spec_from_file_location(stem, _BENCHMARKS / f"{stem}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault(stem, module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.perf_smoke
def test_kernel_benchmark_tiny_mode(tmp_path):
    bench = _load_bench_module()
    report = bench.run_grid(tiny=True)
    assert report["mode"] == "tiny"
    assert report["grid"], "tiny grid must not be empty"
    for row in report["grid"]:
        assert row["identical_results"], f"kernels disagreed on {row}"
        assert row["bool_seconds"] > 0 and row["bitset_seconds"] > 0
    assert report["all_identical"]
    # The JSON entry point must work end to end.
    output = tmp_path / "BENCH_search.json"
    exit_code = bench.main(["--tiny", "--output", str(output)])
    assert exit_code == 0
    assert output.exists()


@pytest.mark.perf_smoke
def test_stream_benchmark_tiny_mode(tmp_path):
    bench = _load_bench_module("bench_stream")
    report = bench.run_grid(tiny=True)
    assert report["mode"] == "tiny"
    workload = report["workload"]
    assert workload["buffer_bit_identical"], "incremental buffer diverged"
    assert workload["windowed_refit_bit_identical"], "windowed refit diverged"
    assert workload["incremental_seconds"] > 0 and workload["full_seconds"] > 0
    assert report["all_identical"]
    # The JSON entry point must work end to end.
    output = tmp_path / "BENCH_stream.json"
    exit_code = bench.main(["--tiny", "--output", str(output)])
    assert exit_code == 0
    assert output.exists()


@pytest.mark.perf_smoke
def test_native_benchmark_tiny_mode(tmp_path):
    # Asserts numpy<->native bit-equivalence on every cell that could
    # run; on a machine with no C compiler the native cells are skipped
    # gracefully and the fallback probe still proves auto -> numpy.
    bench = _load_bench_module("bench_native")
    report = bench.run_grid(tiny=True)
    assert report["mode"] == "tiny"
    assert report["all_identical"], "backends disagreed"
    for row in report["search"]:
        if report["native_available"]:
            assert row["identical_results"], f"search cell diverged: {row}"
        else:
            assert row["skipped"]
    if report["native_available"]:
        assert report["bulk_predict"]["identical_results"]
        assert report["stream"]["identical_results"]
    fallback = report["fallback"]
    assert fallback["identical_results"]
    assert fallback["subprocess_auto_resolves_to"] == "numpy"
    assert fallback["subprocess_native_available"] is False
    # The JSON entry point must work end to end.
    output = tmp_path / "BENCH_native.json"
    exit_code = bench.main(["--tiny", "--output", str(output)])
    assert exit_code == 0
    assert output.exists()


@pytest.mark.perf_smoke
def test_mapped_cold_start_does_not_copy(tmp_path):
    # The whole point of the binary sidecar is that loading it is a
    # header read plus views into the mapping — prove no bytes were
    # copied by checking every predictor array shares memory with the
    # raw mmap buffer, and that the views still answer bit-identically.
    import numpy as np

    from repro.data.dataset import Side
    from repro.serve import CompiledPredictor, ModelRegistry, map_artifact

    bench = _load_bench_module("bench_cluster")
    registry = ModelRegistry(tmp_path / "registry")
    artifact = bench._publish_model(registry, bench.TINY_SETTINGS)
    mapped = map_artifact(registry.sidecar_path("bench", 1))
    predictor = CompiledPredictor.from_mapped(mapped, Side.RIGHT)
    raw = np.frombuffer(mapped.buffer, dtype=np.uint8)
    assert np.shares_memory(predictor.antecedents.words, raw)
    assert np.shares_memory(predictor.consequents.words, raw)
    reference = CompiledPredictor.from_table(
        artifact.table, Side.RIGHT, artifact.n_left, artifact.n_right
    )
    rng = np.random.default_rng(3)
    batch = rng.random((16, artifact.n_left)) < 0.3
    assert np.array_equal(predictor.predict(batch), reference.predict(batch))


@pytest.mark.perf_smoke
def test_cluster_benchmark_tiny_mode(tmp_path):
    # Asserts correctness properties only (zero-copy, bit-identity,
    # zero dropped requests) — never throughput scaling, which the
    # hardware may not be able to produce (see scaling_expected).
    bench = _load_bench_module("bench_cluster")
    report = bench.run_grid(tiny=True)
    assert report["mode"] == "tiny"
    cold = report["cold_start"]
    assert cold["zero_copy"], "mapped predictor copied its matrices"
    assert cold["identical_results"], "mapped and JSON predictors disagreed"
    assert cold["json_seconds"] > 0 and cold["mapped_seconds"] > 0
    assert report["grid"], "tiny cluster grid must not be empty"
    assert report["zero_errors"], "requests failed under load"
    assert report["router_overhead_workers1"] is not None
    assert report["floor"]["requests_per_second"] > 0
    # The JSON entry point must work end to end.
    output = tmp_path / "BENCH_cluster.json"
    exit_code = bench.main(["--tiny", "--output", str(output)])
    assert exit_code == 0
    assert output.exists()


@pytest.mark.perf_smoke
def test_serve_benchmark_tiny_mode(tmp_path):
    bench = _load_bench_module("bench_serve")
    report = bench.run_grid(tiny=True)
    assert report["mode"] == "tiny"
    assert report["grid"], "tiny serving grid must not be empty"
    for cell in report["grid"]:
        assert cell["identical_results"], f"engines disagreed on {cell}"
        assert cell["loop_seconds"] > 0 and cell["compiled_seconds"] > 0
    assert report["all_identical"]
    assert report["cache"]["warm_cached"], "second identical request must hit the cache"
    # The JSON entry point must work end to end.
    output = tmp_path / "BENCH_serve.json"
    exit_code = bench.main(["--tiny", "--output", str(output)])
    assert exit_code == 0
    assert output.exists()


@pytest.mark.perf_smoke
@pytest.mark.corpus_smoke
def test_corpus_benchmark_tiny_mode(tmp_path):
    bench = _load_bench_module("bench_corpus")
    report = bench.run_grid(tiny=True, work_dir=tmp_path)
    assert report["mode"] == "tiny"
    out_of_core = report["out_of_core"]
    assert out_of_core["ingest_seconds"] > 0 and out_of_core["query_seconds"] > 0
    # rss_bounded is only asserted in the full run: on a tiny payload the
    # fixed interpreter overheads dominate, so the ratio is meaningless.
    prune = report["sketch_prune"]
    assert prune["identical_results"], "pruned top-k diverged from the full scan"
    assert prune["pruned_pairs_scanned"] <= prune["full_pairs_scanned"]
    honesty = report["honesty"]
    assert honesty["topk_bit_identical"], "store top-k diverged from the dense path"
    assert honesty["top1_matches_exact_engine"]
    assert honesty["anytime_gap_bound_sound"]
    assert report["all_identical"]
    # The JSON entry point must work end to end.
    output = tmp_path / "BENCH_corpus.json"
    exit_code = bench.main(["--tiny", "--output", str(output)])
    assert exit_code == 0
    assert output.exists()
