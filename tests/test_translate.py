"""Unit tests for the TRANSLATE scheme and correction tables (Section 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Side
from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.core.translate import (
    corrections,
    reconstruct,
    translate_transaction,
    translate_view,
)


@pytest.fixture
def table(toy_dataset) -> TranslationTable:
    a = toy_dataset.item_index(Side.LEFT, "a")
    b = toy_dataset.item_index(Side.LEFT, "b")
    c = toy_dataset.item_index(Side.LEFT, "c")
    s = toy_dataset.item_index(Side.RIGHT, "s")
    u = toy_dataset.item_index(Side.RIGHT, "u")
    return TranslationTable(
        [
            TranslationRule((a, b), (u,), Direction.BOTH),
            TranslationRule((c,), (s,), Direction.FORWARD),
        ]
    )


class TestTranslateView:
    def test_forward_translation(self, toy_dataset, table):
        translated = translate_view(toy_dataset, table, Side.RIGHT)
        u = toy_dataset.item_index(Side.RIGHT, "u")
        s = toy_dataset.item_index(Side.RIGHT, "s")
        # {a,b} occurs in transactions 0, 3, 4 -> u set there.
        assert translated[:, u].tolist() == [True, False, False, True, True]
        # {c} occurs in transactions 1, 2 -> s set there.
        assert translated[:, s].tolist() == [False, True, True, False, False]

    def test_backward_ignores_unidirectional(self, toy_dataset, table):
        translated = translate_view(toy_dataset, table, Side.LEFT)
        a = toy_dataset.item_index(Side.LEFT, "a")
        c = toy_dataset.item_index(Side.LEFT, "c")
        # Only the bidirectional rule fires backwards: u occurs in 0, 3, 4.
        assert translated[:, a].tolist() == [True, False, False, True, True]
        # The forward-only rule must not fire backwards.
        assert not translated[:, c].any()

    def test_empty_table_translates_to_nothing(self, toy_dataset):
        translated = translate_view(toy_dataset, TranslationTable(), Side.RIGHT)
        assert not translated.any()

    def test_rule_order_irrelevant(self, toy_dataset, table):
        reversed_table = TranslationTable(reversed(list(table)))
        np.testing.assert_array_equal(
            translate_view(toy_dataset, table, Side.RIGHT),
            translate_view(toy_dataset, reversed_table, Side.RIGHT),
        )


class TestTranslateTransaction:
    def test_matches_vectorised(self, toy_dataset, table):
        translated = translate_view(toy_dataset, table, Side.RIGHT)
        for row in range(toy_dataset.n_transactions):
            left_items, __ = toy_dataset.transaction(row)
            expected = frozenset(np.flatnonzero(translated[row]).tolist())
            assert translate_transaction(left_items, table, Side.RIGHT) == expected

    def test_matches_vectorised_backward(self, toy_dataset, table):
        translated = translate_view(toy_dataset, table, Side.LEFT)
        for row in range(toy_dataset.n_transactions):
            __, right_items = toy_dataset.transaction(row)
            expected = frozenset(np.flatnonzero(translated[row]).tolist())
            assert translate_transaction(right_items, table, Side.LEFT) == expected

    def test_subset_matching(self):
        rule = TranslationRule((0, 1), (0,), Direction.FORWARD)
        assert translate_transaction({0, 1, 2}, [rule]) == {0}
        assert translate_transaction({0}, [rule]) == frozenset()


class TestCorrections:
    def test_partition(self, toy_dataset, table):
        tables = corrections(toy_dataset, table)
        # U and E are disjoint and their union is the XOR correction.
        assert not (tables.uncovered_right & tables.errors_right).any()
        np.testing.assert_array_equal(
            tables.correction_right,
            tables.translated_right ^ toy_dataset.right,
        )
        np.testing.assert_array_equal(
            tables.correction_left,
            tables.translated_left ^ toy_dataset.left,
        )

    def test_uncovered_within_data(self, toy_dataset, table):
        tables = corrections(toy_dataset, table)
        assert not (tables.uncovered_right & ~toy_dataset.right).any()

    def test_errors_outside_data(self, toy_dataset, table):
        tables = corrections(toy_dataset, table)
        assert not (tables.errors_right & toy_dataset.right).any()

    def test_n_correction_cells(self, toy_dataset, table):
        tables = corrections(toy_dataset, table)
        expected = int(tables.correction_left.sum() + tables.correction_right.sum())
        assert tables.n_correction_cells == expected

    def test_correction_side_accessor(self, toy_dataset, table):
        tables = corrections(toy_dataset, table)
        np.testing.assert_array_equal(
            tables.correction(Side.LEFT), tables.correction_left
        )


class TestLosslessness:
    def test_reconstruct_right(self, toy_dataset, table):
        np.testing.assert_array_equal(
            reconstruct(toy_dataset, table, Side.RIGHT), toy_dataset.right
        )

    def test_reconstruct_left(self, toy_dataset, table):
        np.testing.assert_array_equal(
            reconstruct(toy_dataset, table, Side.LEFT), toy_dataset.left
        )

    def test_reconstruct_with_stored_correction(self, toy_dataset, table):
        tables = corrections(toy_dataset, table)
        result = reconstruct(
            toy_dataset, table, Side.RIGHT, correction=tables.correction_right
        )
        np.testing.assert_array_equal(result, toy_dataset.right)

    def test_lossless_for_random_tables(self, planted_dataset, rng):
        # Any table, however bad, must stay lossless with its correction.
        rules = []
        for __ in range(10):
            lhs = tuple(rng.choice(planted_dataset.n_left, size=2, replace=False))
            rhs = tuple(rng.choice(planted_dataset.n_right, size=2, replace=False))
            direction = rng.choice([Direction.FORWARD, Direction.BACKWARD, Direction.BOTH])
            rule = TranslationRule(lhs, rhs, direction)
            if rule not in rules:
                rules.append(rule)
        np.testing.assert_array_equal(
            reconstruct(planted_dataset, rules, Side.RIGHT), planted_dataset.right
        )
        np.testing.assert_array_equal(
            reconstruct(planted_dataset, rules, Side.LEFT), planted_dataset.left
        )
