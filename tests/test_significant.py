"""Unit tests for significant rule discovery (MAGNUM OPUS stand-in)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted, random_dataset
from repro.core.rules import Direction
from repro.baselines.significant import SignificantRule, SignificantRuleMiner, _fisher_p


class TestFisher:
    def test_perfect_association_small_p(self):
        antecedent = np.array([True] * 10 + [False] * 10)
        consequent = antecedent.copy()
        assert _fisher_p(antecedent, consequent) < 0.001

    def test_independence_large_p(self):
        rng = np.random.default_rng(0)
        antecedent = rng.random(200) < 0.5
        consequent = rng.random(200) < 0.5
        assert _fisher_p(antecedent, consequent) > 0.01

    def test_negative_association_large_p(self):
        antecedent = np.array([True] * 10 + [False] * 10)
        consequent = ~antecedent
        # One-sided test for positive association.
        assert _fisher_p(antecedent, consequent) > 0.9


class TestMiner:
    def test_finds_planted_rules(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=400, n_left=10, n_right=10,
                density_left=0.08, density_right=0.08,
                n_rules=3, confidence=(0.95, 1.0), activation=(0.2, 0.3), seed=1,
            )
        )
        rules = SignificantRuleMiner(minsup=5).mine(dataset)
        assert rules
        assert all(rule.p_value < 0.05 for rule in rules)

    def test_noise_yields_few_rules(self):
        noise = random_dataset(300, 10, 10, 0.15, 0.15, seed=2)
        rules = SignificantRuleMiner(minsup=5).mine(noise)
        # Bonferroni control: the family-wise error is below alpha, so
        # typically zero (a handful would still be acceptable).
        assert len(rules) <= 3

    def test_merge_creates_bidirectional(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=400, n_left=8, n_right=8,
                density_left=0.05, density_right=0.05,
                n_rules=2, confidence=(1.0, 1.0), activation=(0.3, 0.4),
                bidirectional_fraction=1.0, seed=3,
            )
        )
        rules = SignificantRuleMiner(minsup=5).mine(dataset)
        assert any(rule.direction is Direction.BOTH for rule in rules)

    def test_holdout_is_stricter(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=500, n_left=10, n_right=10,
                density_left=0.1, density_right=0.1,
                n_rules=3, seed=4,
            )
        )
        plain = SignificantRuleMiner(minsup=5, holdout=False).mine(dataset)
        strict = SignificantRuleMiner(minsup=5, holdout=True, seed=0).mine(dataset)
        assert len(strict) <= len(plain) + 2  # holdout prunes, modulo split noise

    def test_min_confidence_filter(self):
        dataset, __ = generate_planted(SyntheticSpec(seed=5))
        rules = SignificantRuleMiner(minsup=3, min_confidence=0.9).mine(dataset)
        assert all(rule.confidence >= 0.9 for rule in rules)

    def test_alpha_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            SignificantRuleMiner(alpha=1.5)

    def test_to_translation_rule(self):
        rule = SignificantRule((0,), (1,), Direction.FORWARD, 5, 0.9, 0.001)
        assert rule.to_translation_rule().direction is Direction.FORWARD

    def test_productivity_prunes_redundant_specialisations(self):
        # Column 0 left perfectly implies column 0 right; adding an
        # unrelated left item cannot raise the (already perfect)
        # confidence, so {0, other} -> 0 must be pruned.
        rng = np.random.default_rng(6)
        left = rng.random((300, 4)) < 0.3
        right = rng.random((300, 2)) < 0.1
        right[:, 0] = left[:, 0]
        dataset = TwoViewDataset(left, right)
        rules = SignificantRuleMiner(minsup=5).mine(dataset)
        forward = [
            rule
            for rule in rules
            if rule.rhs == (0,) and rule.direction in (Direction.FORWARD, Direction.BOTH)
        ]
        assert forward
        assert all(len(rule.lhs) == 1 for rule in forward)
