"""Tests for bootstrap stability analysis (repro.eval.stability)."""

from __future__ import annotations

import pytest

from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorSelect
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.eval.stability import (
    RuleRecovery,
    StabilityReport,
    bootstrap_stability,
    rule_overlap_score,
    soft_match_score,
)


def rule(lhs, rhs, direction=Direction.FORWARD) -> TranslationRule:
    return TranslationRule(tuple(lhs), tuple(rhs), direction)


class TestRuleOverlapScore:
    def test_identical_rules_score_one(self):
        first = rule([0, 1], [2])
        assert rule_overlap_score(first, first) == pytest.approx(1.0)

    def test_disjoint_itemsets_score_zero(self):
        assert rule_overlap_score(rule([0], [1]), rule([2], [3])) == pytest.approx(0.0)

    def test_partial_overlap(self):
        # lhs Jaccard = 1/2, rhs Jaccard = 1 -> mean 0.75.
        first = rule([0, 1], [5])
        second = rule([0], [5])
        assert rule_overlap_score(first, second) == pytest.approx(0.75)

    def test_opposite_unidirectional_rules_incompatible(self):
        forward = rule([0], [1], Direction.FORWARD)
        backward = rule([0], [1], Direction.BACKWARD)
        assert rule_overlap_score(forward, backward) == 0.0

    def test_bidirectional_compatible_with_unidirectional_at_half_weight(self):
        both = rule([0], [1], Direction.BOTH)
        forward = rule([0], [1], Direction.FORWARD)
        assert rule_overlap_score(both, forward) == pytest.approx(0.5)

    def test_symmetry(self):
        first = rule([0, 1], [2, 3])
        second = rule([1], [3])
        assert rule_overlap_score(first, second) == pytest.approx(
            rule_overlap_score(second, first)
        )


class TestSoftMatchScore:
    def test_identical_sets_score_one(self):
        rules = [rule([0], [1]), rule([2], [3], Direction.BOTH)]
        assert soft_match_score(rules, rules) == pytest.approx(1.0)

    def test_both_empty_score_one(self):
        assert soft_match_score([], []) == 1.0

    def test_one_empty_scores_zero(self):
        assert soft_match_score([rule([0], [1])], []) == 0.0
        assert soft_match_score([], [rule([0], [1])]) == 0.0

    def test_surplus_rules_dilute(self):
        reference = [rule([0], [1])]
        other = [rule([0], [1]), rule([5], [6])]
        assert soft_match_score(reference, other) == pytest.approx(0.5)

    def test_greedy_matching_is_one_to_one(self):
        # Two identical reference rules cannot both match the single other.
        reference = [rule([0], [1]), rule([0], [1])]
        other = [rule([0], [1])]
        assert soft_match_score(reference, other) == pytest.approx(0.5)

    def test_bounded_in_unit_interval(self):
        reference = [rule([0, 1], [2]), rule([3], [4], Direction.BOTH)]
        other = [rule([1], [2]), rule([3], [5])]
        score = soft_match_score(reference, other)
        assert 0.0 <= score <= 1.0


class TestBootstrapStability:
    @pytest.fixture(scope="class")
    def planted(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=250,
                n_left=10,
                n_right=10,
                density_left=0.12,
                density_right=0.12,
                n_rules=2,
                confidence=(0.95, 1.0),
                seed=3,
            )
        )
        return dataset

    def test_report_shape(self, planted):
        report = bootstrap_stability(
            planted, TranslatorSelect(k=1), n_resamples=5, rng=0
        )
        assert isinstance(report, StabilityReport)
        assert report.n_resamples == 5
        assert len(report.exact_jaccard) == 5
        assert len(report.soft_scores) == 5
        assert len(report.n_rules_per_resample) == 5
        assert len(report.rule_recoveries) == len(report.reference_rules)

    def test_scores_in_unit_interval(self, planted):
        report = bootstrap_stability(
            planted, TranslatorSelect(k=1), n_resamples=5, rng=1
        )
        for score in report.exact_jaccard + report.soft_scores:
            assert 0.0 <= score <= 1.0
        for recovery in report.rule_recoveries:
            assert 0.0 <= recovery.exact_rate <= recovery.soft_rate <= 1.0

    def test_planted_structure_is_stable(self, planted):
        """Strong planted rules should be recovered in most resamples."""
        report = bootstrap_stability(
            planted, TranslatorSelect(k=1), n_resamples=8, rng=2
        )
        # Noise-derived reference rules churn across resamples, dragging the
        # aggregate down; the planted associations themselves must be robust.
        assert report.mean_soft_score >= 0.35
        stable = report.stable_rules(threshold=0.75)
        assert stable
        assert any(recovery.exact_rate == 1.0 for recovery in stable)

    def test_reproducible_with_seed(self, planted):
        first = bootstrap_stability(planted, TranslatorSelect(k=1), n_resamples=4, rng=7)
        second = bootstrap_stability(planted, TranslatorSelect(k=1), n_resamples=4, rng=7)
        assert first.exact_jaccard == second.exact_jaccard
        assert first.soft_scores == second.soft_scores

    def test_explicit_reference_table(self, planted):
        reference = TranslationTable()
        reference.add(rule([0], [0], Direction.BOTH))
        report = bootstrap_stability(
            planted,
            TranslatorSelect(k=1),
            n_resamples=3,
            reference=reference,
            rng=4,
        )
        assert report.reference_rules == (rule([0], [0], Direction.BOTH),)

    def test_subsampling_without_replacement(self, planted):
        report = bootstrap_stability(
            planted,
            TranslatorSelect(k=1),
            n_resamples=3,
            sample_fraction=0.6,
            replace=False,
            rng=5,
        )
        assert report.n_resamples == 3

    def test_invalid_parameters(self, planted):
        with pytest.raises(ValueError, match="n_resamples"):
            bootstrap_stability(planted, TranslatorSelect(k=1), n_resamples=0)
        with pytest.raises(ValueError, match="sample_fraction"):
            bootstrap_stability(planted, TranslatorSelect(k=1), sample_fraction=0.0)
        with pytest.raises(ValueError, match="without replacement"):
            bootstrap_stability(
                planted, TranslatorSelect(k=1), replace=False, sample_fraction=1.0
            )

    def test_render_mentions_every_reference_rule(self, planted):
        report = bootstrap_stability(
            planted, TranslatorSelect(k=1), n_resamples=3, rng=6
        )
        text = report.render(planted)
        assert "mean exact rule-set Jaccard" in text
        assert text.count("[exact") == len(report.reference_rules)

    def test_rule_count_spread(self, planted):
        report = bootstrap_stability(
            planted, TranslatorSelect(k=1), n_resamples=4, rng=8
        )
        low, high = report.rule_count_spread
        assert 0 <= low <= high


class TestRuleRecoveryRender:
    def test_render_without_dataset(self):
        recovery = RuleRecovery(rule([0], [1]), exact_rate=0.5, soft_rate=0.75)
        text = recovery.render()
        assert "exact 50%" in text and "soft 75%" in text
