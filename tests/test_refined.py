"""Tests for the refined ("optimal") encoding (repro.core.refined)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.refined import plugin_codelength, refined_lengths
from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorSelect
from repro.data.dataset import TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted


class TestPluginCodelength:
    def test_empty_multiset_costs_nothing(self):
        assert plugin_codelength([]) == 0.0
        assert plugin_codelength([0, 0]) == 0.0

    def test_single_symbol_costs_nothing(self):
        # A deterministic distribution has zero entropy.
        assert plugin_codelength([7]) == 0.0

    def test_uniform_two_symbols(self):
        # N=2 symbols, each once: 2 * -log2(1/2) = 2 bits.
        assert plugin_codelength([1, 1]) == pytest.approx(2.0)

    def test_matches_entropy_formula(self):
        counts = [3, 5, 2]
        total = sum(counts)
        expected = sum(count * -math.log2(count / total) for count in counts)
        assert plugin_codelength(counts) == pytest.approx(expected)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=10))
    def test_non_negative_and_bounded(self, counts):
        bits = plugin_codelength(counts)
        assert bits >= 0.0
        total = sum(count for count in counts if count > 0)
        n_symbols = sum(1 for count in counts if count > 0)
        if total and n_symbols:
            # Entropy is at most log2(#symbols) per occurrence.
            assert bits <= total * math.log2(max(n_symbols, 2)) + 1e-9


class TestRefinedLengths:
    @pytest.fixture(scope="class")
    def fitted(self):
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=200,
                n_left=10,
                n_right=10,
                density_left=0.15,
                density_right=0.15,
                n_rules=3,
                seed=9,
            )
        )
        result = TranslatorSelect(k=1).fit(dataset)
        return dataset, result

    def test_paper_lengths_match_cover_state(self, fitted):
        dataset, result = fitted
        report = refined_lengths(dataset, result.table)
        assert report.total_bits == pytest.approx(result.state.total_length(), rel=1e-9)
        assert report.baseline_bits == pytest.approx(result.state.baseline_bits, rel=1e-9)
        assert report.compression_ratio == pytest.approx(
            result.compression_ratio, rel=1e-9
        )

    def test_refined_optimal_among_normalized_codes(self, fitted):
        """Gibbs: the plug-in code beats any normalized item distribution.

        Encode the right-side correction items with the *normalized*
        global item frequencies of the right view; the refined (plug-in)
        length must not exceed that cross-entropy length.
        """
        dataset, result = fitted
        report = refined_lengths(dataset, result.table)
        from repro.core.translate import corrections

        correction = corrections(dataset, result.table).correction_right
        counts = correction.sum(axis=0).astype(float)
        global_counts = dataset.right.sum(axis=0).astype(float)
        probabilities = global_counts / global_counts.sum()
        used = counts > 0
        cross_entropy_bits = float(
            np.sum(counts[used] * -np.log2(probabilities[used]))
        )
        assert report.correction_bits_right_refined <= cross_entropy_bits + 1e-6

    def test_empty_table_report(self, fitted):
        dataset, __ = fitted
        report = refined_lengths(dataset, TranslationTable())
        assert report.table_bits == 0.0
        assert report.table_bits_refined == 0.0
        assert report.total_bits == pytest.approx(report.baseline_bits)
        assert report.compression_ratio == pytest.approx(1.0)

    def test_paper_claim_small_difference(self, fitted):
        """Section 4.1: the optimal encoding hardly changes the results."""
        dataset, result = fitted
        report = refined_lengths(dataset, result.table)
        assert abs(report.ratio_difference) < 10.0

    def test_summary_keys(self, fitted):
        dataset, result = fitted
        summary = refined_lengths(dataset, result.table).summary()
        assert set(summary) == {
            "L(T)",
            "L(T) refined",
            "L(C) total",
            "L(C) refined",
            "L% paper",
            "L% refined",
            "diff (pp)",
        }

    def test_accepts_rule_iterable(self, fitted):
        dataset, result = fitted
        from_table = refined_lengths(dataset, result.table)
        from_list = refined_lengths(dataset, list(result.table))
        assert from_table == from_list


class TestTableBitsRefined:
    def test_direction_bits_preserved(self):
        left = np.eye(3, dtype=bool)
        right = np.eye(3, dtype=bool)
        dataset = TwoViewDataset(left, right)
        table = TranslationTable()
        table.add(TranslationRule((0,), (0,), Direction.BOTH))
        table.add(TranslationRule((1,), (1,), Direction.FORWARD))
        report = refined_lengths(dataset, table)
        # Each side has two items used once each: 2 bits per side; plus
        # directions 1 (<->) + 2 (->) = 3 bits.
        assert report.table_bits_refined == pytest.approx(2.0 + 2.0 + 3.0)

    def test_repeated_items_compress_in_refined_table(self):
        left = np.ones((4, 2), dtype=bool)
        right = np.ones((4, 2), dtype=bool)
        dataset = TwoViewDataset(left, right)
        skewed = TranslationTable()
        # Left item 0 used three times, item 1 once: entropy < 1 bit/use.
        skewed.add(TranslationRule((0,), (0,), Direction.FORWARD))
        skewed.add(TranslationRule((0,), (1,), Direction.FORWARD))
        skewed.add(TranslationRule((0, 1), (0, 1), Direction.FORWARD))
        report = refined_lengths(dataset, skewed)
        uniform_cost = 4.0  # 4 left-item slots at 1 bit each if uniform
        left_refined = report.table_bits_refined
        # Total refined = left itemsets + right itemsets + directions (6).
        assert left_refined < uniform_cost * 2 + 6.0
