"""End-to-end sweep-runtime benchmark (``BENCH_parallel.json``).

Times one experiment grid — synthetic datasets x {SELECT, GREEDY} x
seeds, the shape of the paper's Table 2/3 sweeps — through
:func:`repro.runtime.sweep.run_sweep` under three regimes:

1. **serial cold** — ``n_jobs=1``, no cache (the pre-runtime baseline:
   what the one-off benchmark scripts used to do);
2. **4-worker cold** — ``n_jobs=4`` process backend against an empty
   content-hashed cache (pure parallel speedup; bounded by the
   machine's core count, which the report records);
3. **4-worker warm** — the same sweep re-run against the now-populated
   cache (every cell served from disk — the steady state of iterating
   on an experiment grid).

Every regime must produce identical models (rules, rule counts,
compression ratios) — the report refuses to claim a speedup otherwise.
The headline ``speedup_end_to_end`` compares regime 1 to regime 3: the
wall-clock improvement the runtime subsystem delivers on a repeated
4-worker sweep.  ``speedup_workers_cold`` isolates the parallel-only
gain and is meaningful only when ``cpu_count > 1``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--tiny] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime.sweep import SweepTask, run_sweep  # noqa: E402

N_JOBS = 4

FULL_SETTINGS = {
    "n_transactions": 400,
    "n_items_per_view": 14,
    "densities": (0.20, 0.30),
    "seeds": (0, 1),
    "max_candidates": 5_000,
}
TINY_SETTINGS = {
    "n_transactions": 120,
    "n_items_per_view": 8,
    "densities": (0.25,),
    "seeds": (0,),
    "max_candidates": 1_000,
}


def build_grid(settings: dict) -> list[SweepTask]:
    """The benchmark grid: datasets x {select, greedy} x seeds."""
    tasks = []
    for density in settings["densities"]:
        spec = {
            "synthetic": {
                "n_transactions": settings["n_transactions"],
                "n_left": settings["n_items_per_view"],
                "n_right": settings["n_items_per_view"],
                "density_left": density,
                "density_right": density,
                "n_rules": 6,
            }
        }
        for seed in settings["seeds"]:
            for method, params in (
                ("select", {"k": 1, "minsup": 4,
                            "max_candidates": settings["max_candidates"]}),
                ("greedy", {"minsup": 4,
                            "max_candidates": settings["max_candidates"]}),
            ):
                tasks.append(
                    SweepTask(
                        dataset=spec, method=method, params=params, seed=seed,
                        tag=f"d={density},seed={seed},{method}",
                    )
                )
    return tasks


def _model_fingerprint(report) -> list[tuple]:
    """Everything that must agree across execution regimes."""
    return [
        (row["tag"], row["n_rules"], row["compression_ratio"], tuple(row["rules"]))
        for row in report.results
    ]


def run_benchmark(tiny: bool = False) -> dict:
    """Time the three regimes and assemble the report dictionary."""
    settings = TINY_SETTINGS if tiny else FULL_SETTINGS
    tasks = build_grid(settings)
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-parallel-"))
    try:
        start = time.perf_counter()
        serial = run_sweep(tasks, n_jobs=1)
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cold = run_sweep(tasks, n_jobs=N_JOBS, backend="process",
                         cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = run_sweep(tasks, n_jobs=N_JOBS, backend="process",
                         cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    identical = (
        _model_fingerprint(serial)
        == _model_fingerprint(cold)
        == _model_fingerprint(warm)
    )
    return {
        "benchmark": "parallel sharded sweep runtime",
        "mode": "tiny" if tiny else "full",
        "cpu_count": os.cpu_count(),
        "n_jobs": N_JOBS,
        "n_tasks": len(tasks),
        "settings": {key: list(value) if isinstance(value, tuple) else value
                     for key, value in settings.items()},
        "serial_cold_seconds": serial_seconds,
        "workers_cold_seconds": cold_seconds,
        "workers_warm_seconds": warm_seconds,
        "warm_cache_hits": warm.cache_hits,
        "speedup_workers_cold": serial_seconds / cold_seconds,
        "speedup_end_to_end": serial_seconds / warm_seconds,
        "identical_results": identical,
        "grid": [
            {
                "tag": row["tag"],
                "method": row["method"],
                "n_rules": row["n_rules"],
                "compression_ratio": row["compression_ratio"],
                "serial_task_seconds": row["task_seconds"],
            }
            for row in serial.results
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="seconds-scale smoke grid")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_parallel.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(tiny=args.tiny)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(
        f"{report['n_tasks']} tasks on {report['n_jobs']} workers "
        f"(cpu_count={report['cpu_count']})\n"
        f"  serial cold:   {report['serial_cold_seconds']:.2f}s\n"
        f"  4-worker cold: {report['workers_cold_seconds']:.2f}s "
        f"({report['speedup_workers_cold']:.2f}x)\n"
        f"  4-worker warm: {report['workers_warm_seconds']:.2f}s "
        f"({report['speedup_end_to_end']:.2f}x, "
        f"{report['warm_cache_hits']} cache hits)\n"
        f"  identical results: {report['identical_results']}"
    )
    print(f"report written to {args.output}")
    if not report["identical_results"]:
        print("ERROR: execution regimes disagreed", file=sys.stderr)
        return 1
    if report["speedup_end_to_end"] < 2.0:
        print("ERROR: end-to-end speedup below 2x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
