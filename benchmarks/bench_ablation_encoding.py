"""A9 — Ablation: the paper's encoding versus the refined "optimal" one.

Section 4.1 fixes per-item code lengths to the complete dataset's
empirical distribution and claims that "using the optimal encoding would
hardly change the results in practice".  This benchmark fits
TRANSLATOR-SELECT(1) on several registry stand-ins, then re-scores the
fitted model under the refined plug-in encoding of
:mod:`repro.core.refined` and reports both compression ratios.

Expected shape: the difference between the two ratios stays within a few
percentage points everywhere — confirming that the paper's simpler,
search-friendly encoding does not distort model selection.
"""

from __future__ import annotations

from repro.core.refined import refined_lengths
from repro.core.translator import TranslatorSelect
from repro.data.registry import make_dataset
from repro.eval.tables import format_table

DATASETS = ("house", "wine", "yeast", "tictactoe")
SCALES = {"house": 0.5, "wine": 1.0, "yeast": 0.2, "tictactoe": 0.3}


def run_ablation():
    rows = []
    for name in DATASETS:
        dataset = make_dataset(name, scale=SCALES[name])
        result = TranslatorSelect(k=1).fit(dataset)
        report = refined_lengths(dataset, result.table)
        row = {"dataset": name, "|T|": result.n_rules}
        row.update(report.summary())
        rows.append(row)
    return rows


def test_ablation_encoding(benchmark, report):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report(
        "A9 — paper encoding vs refined (optimal) encoding, SELECT(1)",
        format_table(rows),
    )
    for row in rows:
        # The Section 4.1 claim: model selection is not distorted — the
        # two encodings agree on the compression ratio within a few
        # percentage points.
        assert abs(float(row["diff (pp)"])) < 12.0, row
