"""E7-E9 — Figs. 4-7: qualitative example rules.

* Fig. 4: top-3 rules per method on House.
* Fig. 5: top-3 rules per method on Mammals.
* Fig. 6: all rules containing one focus item on CAL500 ('Genre:Rock').
* Fig. 7: TRANSLATOR rules on Elections.

These figures are inherently qualitative — the paper prints the rules and
discusses their interpretability.  The benchmark renders the same
artefacts from the stand-ins (which carry the same item names) and checks
the structural observations: TRANSLATOR rules "tend to be longer and less
redundant than those found by the other methods", and Elections yields
both bidirectional and unidirectional party-views associations.
"""

from __future__ import annotations

import pytest

from repro.baselines.redescription import ReremiMiner
from repro.baselines.significant import SignificantRuleMiner
from repro.core.translator import TranslatorSelect
from repro.data.dataset import Side
from repro.data.registry import make_dataset, paper_stats
from repro.eval.metrics import max_confidence

MIN_TRANSACTIONS = 150


def scaled_dataset(name: str, bench_scale: float):
    stats = paper_stats(name)
    scale = max(bench_scale, min(1.0, MIN_TRANSACTIONS / stats.n_transactions))
    return make_dataset(name, scale=scale)


def top_rules_block(dataset, minsup: int) -> tuple[str, dict[str, list]]:
    translator = TranslatorSelect(k=1, minsup=minsup, max_candidates=5_000).fit(dataset)
    significant = SignificantRuleMiner(minsup=minsup).mine(dataset)
    redescriptions = ReremiMiner(min_support=minsup).mine(dataset)
    sections = {
        "TRANSLATOR-SELECT(1)": [record.rule for record in translator.history[:3]],
        "significant (MO-like)": [rule.to_translation_rule() for rule in significant[:3]],
        "redescriptions (ReReMi-like)": [
            redescription.to_translation_rule() for redescription in redescriptions[:3]
        ],
    }
    lines = []
    for method, rules in sections.items():
        lines.append(f"{method}:")
        for rule in rules:
            lines.append(
                f"  [c+ {max_confidence(dataset, rule):.2f}] {rule.render(dataset)}"
            )
        if not rules:
            lines.append("  (no rules)")
    return "\n".join(lines), sections


@pytest.mark.parametrize("name", ["house", "mammals"])
def test_fig4_5_example_rules(benchmark, report, bench_scale, name):
    dataset = scaled_dataset(name, bench_scale)
    minsup = max(3, int(0.02 * dataset.n_transactions))
    text, sections = benchmark.pedantic(
        top_rules_block, args=(dataset, minsup), rounds=1, iterations=1
    )
    figure = "Fig. 4" if name == "house" else "Fig. 5"
    report(f"E7 / {figure} — example rules on {name}", text)
    translator_rules = sections["TRANSLATOR-SELECT(1)"]
    assert translator_rules, "TRANSLATOR must find rules on planted data"
    # Paper: translator rules tend to be longer than the other methods'.
    other_rules = sections["significant (MO-like)"] + sections[
        "redescriptions (ReReMi-like)"
    ]
    if other_rules:
        translator_avg = sum(rule.size for rule in translator_rules) / len(translator_rules)
        other_avg = sum(rule.size for rule in other_rules) / len(other_rules)
        assert translator_avg >= other_avg - 1.5


def test_fig6_focus_item_cal500(benchmark, report, bench_scale):
    dataset = scaled_dataset("cal500", bench_scale)
    minsup = max(3, int(0.02 * dataset.n_transactions))
    focus = "Genre:Rock"
    focus_index = dataset.item_index(Side.RIGHT, focus)

    def run():
        translator = TranslatorSelect(k=1, minsup=minsup, max_candidates=5_000).fit(dataset)
        significant = SignificantRuleMiner(minsup=minsup).mine(dataset)
        redescriptions = ReremiMiner(min_support=minsup).mine(dataset)
        return {
            "TRANSLATOR-SELECT(1)": translator.table.rules_with_item(
                focus_index, left=False
            ),
            "significant (MO-like)": [
                rule.to_translation_rule()
                for rule in significant
                if focus_index in rule.rhs
            ],
            "redescriptions (ReReMi-like)": [
                redescription.to_translation_rule()
                for redescription in redescriptions
                if focus_index in redescription.rhs
            ],
        }

    sections = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for method, rules in sections.items():
        lines.append(f"{method}: {len(rules)} rule(s) mentioning {focus}")
        for rule in rules[:5]:
            lines.append(f"  {rule.render(dataset)}")
    report("E8 / Fig. 6 — rules mentioning 'Genre:Rock' on cal500", "\n".join(lines))
    # The focus item exists; whether rules mention it depends on the
    # random planted structure, so only the harness mechanics are asserted.
    assert focus in dataset.right_names


def test_fig7_elections_rules(benchmark, report, bench_scale):
    dataset = scaled_dataset("elections", bench_scale)
    minsup = max(3, int(0.01 * dataset.n_transactions))

    def run():
        return TranslatorSelect(k=1, minsup=minsup, max_candidates=5_000).fit(dataset)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"[c+ {max_confidence(dataset, record.rule):.2f}] {record.rule.render(dataset)}"
        for record in result.history[:6]
    ]
    report(
        "E9 / Fig. 7 — rules on elections (party profiles vs political views)",
        "\n".join(lines) if lines else "(no rules found)",
    )
    assert result.n_rules > 0
    # The paper highlights that both rule kinds occur and are useful.
    directions = {rule.direction.value for rule in result.table}
    assert directions, "at least one direction present"
