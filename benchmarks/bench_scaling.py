"""A3 — Scaling: runtime vs dataset size and vocabulary size.

The paper reports wall-clock runtimes per dataset but no controlled
scaling study; this benchmark adds one on the planted generator, fixing
the structure and sweeping (a) the number of transactions and (b) the
vocabulary size, for TRANSLATOR-SELECT(1) and TRANSLATOR-GREEDY.

The grid runs through the sweep engine
(:func:`repro.runtime.sweep.run_sweep`): each (dataset, method) cell is
a declarative :class:`~repro.runtime.sweep.SweepTask`, executed serially
here so the per-fit timings stay comparable — pass ``n_jobs`` to
``run_sweep`` to shard the same grid across workers.

Checked shape: runtime grows no worse than mildly super-linearly in the
number of transactions (the cover state is vectorised per column), and
GREEDY is consistently faster than SELECT.
"""

from __future__ import annotations

from repro.eval.tables import format_table
from repro.runtime.sweep import SweepTask, run_sweep

TRANSACTION_SWEEP = (200, 400, 800)
ITEM_SWEEP = (10, 16, 24)


def _spec(n: int, items: int, seed: int) -> dict:
    return {
        "synthetic": {
            "n_transactions": n,
            "n_left": items,
            "n_right": items,
            "density_left": 0.15,
            "density_right": 0.15,
            "n_rules": 5,
            "seed": seed,
        }
    }


def build_grid() -> list[tuple[str, int, int, SweepTask, SweepTask]]:
    """(sweep axis, n, total items, select task, greedy task) per cell."""
    cells = []
    for n in TRANSACTION_SWEEP:
        spec = _spec(n, 12, seed=55)
        minsup = max(2, n // 50)
        cells.append(
            (
                "transactions", n, 24,
                SweepTask(dataset=spec, method="select",
                          params={"k": 1, "minsup": minsup, "max_candidates": 5_000}),
                SweepTask(dataset=spec, method="greedy",
                          params={"minsup": minsup, "max_candidates": 5_000}),
            )
        )
    for items in ITEM_SWEEP:
        spec = _spec(400, items, seed=56)
        cells.append(
            (
                "items", 400, 2 * items,
                SweepTask(dataset=spec, method="select",
                          params={"k": 1, "minsup": 8, "max_candidates": 5_000}),
                SweepTask(dataset=spec, method="greedy",
                          params={"minsup": 8, "max_candidates": 5_000}),
            )
        )
    return cells


def run_sweep_grid():
    cells = build_grid()
    tasks = [task for cell in cells for task in (cell[3], cell[4])]
    report = run_sweep(tasks, n_jobs=1)
    rows = []
    for index, (axis, n, items, __select, __greedy) in enumerate(cells):
        select_row = report.results[2 * index]
        greedy_row = report.results[2 * index + 1]
        rows.append(
            {
                "sweep": axis,
                "n": n,
                "items": items,
                "select_s": round(float(select_row["runtime_seconds"]), 2),
                "greedy_s": round(float(greedy_row["runtime_seconds"]), 2),
                "select L%": round(100 * float(select_row["compression_ratio"]), 1),
                "greedy L%": round(100 * float(greedy_row["compression_ratio"]), 1),
            }
        )
    return rows


def test_scaling(benchmark, report):
    rows = benchmark.pedantic(run_sweep_grid, rounds=1, iterations=1)
    report("A3 — runtime scaling of SELECT(1) and GREEDY", format_table(rows))
    transaction_rows = [row for row in rows if row["sweep"] == "transactions"]
    # GREEDY is at most as slow as SELECT on every configuration.
    for row in rows:
        assert row["greedy_s"] <= row["select_s"] + 0.5
    # Mild growth: 4x transactions must not cost more than ~40x runtime
    # (generous bound: candidate counts also grow with n).
    first, last = transaction_rows[0], transaction_rows[-1]
    if first["select_s"] > 0.05:
        assert last["select_s"] / first["select_s"] < 40.0
