"""A3 — Scaling: runtime vs dataset size and vocabulary size.

The paper reports wall-clock runtimes per dataset but no controlled
scaling study; this benchmark adds one on the planted generator, fixing
the structure and sweeping (a) the number of transactions and (b) the
vocabulary size, for TRANSLATOR-SELECT(1) and TRANSLATOR-GREEDY.

Checked shape: runtime grows no worse than mildly super-linearly in the
number of transactions (the cover state is vectorised per column), and
GREEDY is consistently faster than SELECT.
"""

from __future__ import annotations

from repro.core.translator import TranslatorGreedy, TranslatorSelect
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.eval.tables import format_table

TRANSACTION_SWEEP = (200, 400, 800)
ITEM_SWEEP = (10, 16, 24)


def run_sweep():
    rows = []
    for n in TRANSACTION_SWEEP:
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=n, n_left=12, n_right=12,
                density_left=0.15, density_right=0.15, n_rules=5, seed=55,
            )
        )
        minsup = max(2, n // 50)
        select = TranslatorSelect(k=1, minsup=minsup, max_candidates=5_000).fit(dataset)
        greedy = TranslatorGreedy(minsup=minsup, max_candidates=5_000).fit(dataset)
        rows.append(
            {
                "sweep": "transactions",
                "n": n,
                "items": 24,
                "select_s": round(select.runtime_seconds, 2),
                "greedy_s": round(greedy.runtime_seconds, 2),
                "select L%": round(100 * select.compression_ratio, 1),
                "greedy L%": round(100 * greedy.compression_ratio, 1),
            }
        )
    for items in ITEM_SWEEP:
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=400, n_left=items, n_right=items,
                density_left=0.15, density_right=0.15, n_rules=5, seed=56,
            )
        )
        select = TranslatorSelect(k=1, minsup=8, max_candidates=5_000).fit(dataset)
        greedy = TranslatorGreedy(minsup=8, max_candidates=5_000).fit(dataset)
        rows.append(
            {
                "sweep": "items",
                "n": 400,
                "items": 2 * items,
                "select_s": round(select.runtime_seconds, 2),
                "greedy_s": round(greedy.runtime_seconds, 2),
                "select L%": round(100 * select.compression_ratio, 1),
                "greedy L%": round(100 * greedy.compression_ratio, 1),
            }
        )
    return rows


def test_scaling(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("A3 — runtime scaling of SELECT(1) and GREEDY", format_table(rows))
    transaction_rows = [row for row in rows if row["sweep"] == "transactions"]
    # GREEDY is at most as slow as SELECT on every configuration.
    for row in rows:
        assert row["greedy_s"] <= row["select_s"] + 0.5
    # Mild growth: 4x transactions must not cost more than ~40x runtime
    # (generous bound: candidate counts also grow with n).
    first, last = transaction_rows[0], transaction_rows[-1]
    if first["select_s"] > 0.05:
        assert last["select_s"] / first["select_s"] < 40.0
