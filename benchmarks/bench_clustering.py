"""A10 — Extension: compression-based clustering of two-view data.

Section 2.3 of the paper notes that compression-based models can serve
"other tasks, such as clustering" (citing *Identifying the components*).
This benchmark validates the transplanted k-translation-tables scheme on
two regimes:

* **conflicting components** — the same antecedent implies different
  consequents in the two halves; a single table must pay errors
  everywhere, so the partition is MDL-identifiable.  Expect: k=2 clearly
  beats k=1 in total bits and recovers the generating partition.
* **homogeneous noise** — i.i.d. data with identical marginals; there
  is nothing to separate, so the per-component parameter cost must make
  k=1 the preferred model.  Expect: k=2 total >= k=1 total.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import cluster_two_view
from repro.core.translator import TranslatorSelect
from repro.data.dataset import TwoViewDataset

from repro.eval.tables import format_table

N_PER_COMPONENT = 150


def conflicting_dataset() -> tuple[TwoViewDataset, np.ndarray]:
    def component(consequents, seed):
        rng = np.random.default_rng(seed)
        left = rng.random((N_PER_COMPONENT, 10)) < 0.04
        right = rng.random((N_PER_COMPONENT, 10)) < 0.04
        fire = rng.random(N_PER_COMPONENT) < 0.95
        left[fire, 0] = True
        left[fire, 1] = True
        for column in consequents:
            right[fire, column] = True
        return left, right

    left_a, right_a = component([0, 1, 2], 1)
    left_b, right_b = component([4, 5, 6], 2)
    merged = TwoViewDataset(
        np.concatenate([left_a, left_b]),
        np.concatenate([right_a, right_b]),
        name="conflicting",
    )
    truth = np.concatenate(
        [np.zeros(N_PER_COMPONENT, dtype=int), np.ones(N_PER_COMPONENT, dtype=int)]
    )
    return merged, truth


def noise_dataset() -> TwoViewDataset:
    rng = np.random.default_rng(7)
    return TwoViewDataset(
        rng.random((2 * N_PER_COMPONENT, 10)) < 0.15,
        rng.random((2 * N_PER_COMPONENT, 10)) < 0.15,
        name="noise",
    )


def pair_agreement(labels: np.ndarray, truth: np.ndarray) -> float:
    same_pred = labels[:, None] == labels[None, :]
    same_true = truth[:, None] == truth[None, :]
    mask = ~np.eye(len(labels), dtype=bool)
    return float((same_pred == same_true)[mask].mean())


def run_clustering():
    factory = lambda: TranslatorSelect(k=1)  # noqa: E731
    rows = []
    conflict, truth = conflicting_dataset()
    results = {}
    for name, dataset in (("conflicting", conflict), ("noise", noise_dataset())):
        single = cluster_two_view(dataset, k=1, translator_factory=factory, rng=0)
        double = cluster_two_view(
            dataset, k=2, translator_factory=factory, n_restarts=2, rng=0
        )
        agreement = pair_agreement(double.labels, truth) if name == "conflicting" else None
        results[name] = (single, double)
        rows.append(
            {
                "regime": name,
                "k=1 bits": round(single.total_bits, 1),
                "k=2 bits": round(double.total_bits, 1),
                "ratio": round(double.total_bits / single.total_bits, 3),
                "pair agreement": "-" if agreement is None else round(agreement, 3),
                "k=2 sizes": str(double.sizes()),
            }
        )
    return rows, results


def test_clustering(benchmark, report):
    rows, results = benchmark.pedantic(run_clustering, rounds=1, iterations=1)
    report("A10 — compression-based clustering of two-view data", format_table(rows))
    conflict_row = next(row for row in rows if row["regime"] == "conflicting")
    noise_row = next(row for row in rows if row["regime"] == "noise")
    # Conflicting structure: splitting pays and the partition is found.
    assert float(conflict_row["ratio"]) < 0.9
    assert float(conflict_row["pair agreement"]) >= 0.8
    # Homogeneous noise: the parameter cost forbids hallucinated splits.
    assert float(noise_row["ratio"]) >= 0.999
