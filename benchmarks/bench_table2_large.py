"""E3 — Table 2 (bottom half): larger datasets, tuned minsup.

Runs TRANSLATOR-SELECT(1), TRANSLATOR-SELECT(25) and TRANSLATOR-GREEDY on
the seven "large" datasets (no EXACT — the paper could not run it either).
The paper fixes per-dataset minsup values so the candidate count stays
between 10K and 200K; we scale those thresholds with the dataset
(``paper_minsup * n_scaled / n_paper``) and cap the candidate budget for
Python-scale runtimes.

Expected shape, as in the paper: SELECT(25) compresses almost exactly as
well as SELECT(1) while being faster per iteration batch; GREEDY is the
fastest but can lose substantially (the paper calls out House: 71.45% vs
49.26%).
"""

from __future__ import annotations

import pytest

from repro.core.translator import TranslatorGreedy, TranslatorSelect
from repro.data.registry import make_dataset, paper_stats
from repro.eval.tables import format_table
from benchmarks.paper_reference import TABLE2_LARGE

DATASETS = sorted(TABLE2_LARGE)
MIN_TRANSACTIONS = 150


def scaled_setup(name: str, bench_scale: float):
    stats = paper_stats(name)
    scale = max(bench_scale, min(1.0, MIN_TRANSACTIONS / stats.n_transactions))
    dataset = make_dataset(name, scale=scale)
    paper_minsup, paper_rows = TABLE2_LARGE[name]
    minsup = max(2, int(round(paper_minsup * dataset.n_transactions / stats.n_transactions)))
    # The stand-ins plant rules with activation <= ~0.3, so a relative
    # threshold above ~8% of |D| (the paper uses 30% on Mammals, tuned to
    # the real data's support distribution) would miss all planted
    # structure; cap it accordingly.
    minsup = min(minsup, max(2, int(0.08 * dataset.n_transactions)))
    return dataset, minsup, paper_rows, scale


def run_dataset(name: str, bench_scale: float) -> list[dict[str, object]]:
    dataset, minsup, paper_rows, __ = scaled_setup(name, bench_scale)
    # Scaled-down thresholds can undershoot on dense stand-ins; double
    # until candidate mining fits the budget (reported via the minsup
    # column).
    while True:
        try:
            candidates = TranslatorSelect(
                minsup=minsup, max_candidates=5_000
            )._get_candidates(dataset)
            break
        except RuntimeError:
            minsup *= 2
    methods = {
        "select1": TranslatorSelect(k=1, candidates=candidates),
        "select25": TranslatorSelect(k=25, candidates=candidates),
        "greedy": TranslatorGreedy(candidates=candidates),
    }
    rows = []
    for key, translator in methods.items():
        result = translator.fit(dataset)
        paper_t, paper_l, paper_runtime = paper_rows[key]
        rows.append(
            {
                "dataset": name,
                "method": key,
                "minsup": minsup,
                "|T|": result.n_rules,
                "L%": round(100 * result.compression_ratio, 2),
                "runtime_s": round(result.runtime_seconds, 2),
                "paper |T|": paper_t,
                "paper L%": paper_l,
                "paper runtime": paper_runtime,
            }
        )
    return rows


@pytest.mark.parametrize("name", DATASETS)
def test_table2_large(benchmark, report, bench_scale, name):
    rows = benchmark.pedantic(run_dataset, args=(name, bench_scale), rounds=1, iterations=1)
    __, __, __, scale = scaled_setup(name, bench_scale)
    report(
        f"E3 / Table 2 (bottom) — search strategies on {name} (scale={scale:.2f})",
        format_table(rows),
    )
    by_method = {row["method"]: row for row in rows}
    # SELECT(25) approximates SELECT(1) closely (paper: within ~0.1pp).
    assert abs(
        float(by_method["select25"]["L%"]) - float(by_method["select1"]["L%"])
    ) < 5.0
    # GREEDY never wins on compression beyond tie-breaking noise.
    assert float(by_method["greedy"]["L%"]) >= float(by_method["select1"]["L%"]) - 2.0
