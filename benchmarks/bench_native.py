"""Microbenchmark: numpy vs native popcount backends (``BENCH_native.json``).

Times the three consumers the backend dispatch layer wires up, on the
honesty cells the ROADMAP flags as the numpy kernel's known limits:

* **search** — ``TranslatorExact.fit`` at ``n`` in {5k, 20k, 50k}
  transactions (the regime where the dense child-metric GEMM becomes
  the shared BLAS floor), same fixed node budget for both backends so
  the comparison measures pure per-node throughput;
* **bulk predict** — one huge 4096-row ``CompiledPredictor.predict``
  call over a wide vocabulary, packed strategy under both backends plus
  the blas strategy as the served-regime reference;
* **stream** — tracked-support maintenance over a sliding window fed in
  small batches (the incremental AND-reduce + popcount path);
* **fallback** — a subprocess with ``REPRO_NATIVE_DISABLE=1`` proving
  that a machine without a C toolchain resolves ``backend="auto"`` to
  numpy and fits the *same model* (fingerprint-compared against the
  parent's run).

Every cell verifies bit-identity between backends before reporting a
speedup.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_native.py [--tiny] [--output PATH]

``--tiny`` runs a seconds-scale smoke grid (the ``perf_smoke`` pytest
marker) that checks all equivalences and emits the same JSON shape
without asserting speedup floors; cells needing the native kernel are
marked skipped — not failed — when no compiler is available.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import native  # noqa: E402
from repro.core.rules import TranslationRule  # noqa: E402
from repro.core.translator import TranslatorExact  # noqa: E402
from repro.data.dataset import Side  # noqa: E402
from repro.data.synthetic import SyntheticSpec, generate_planted  # noqa: E402
from repro.serve.compiled import CompiledPredictor  # noqa: E402
from repro.stream.buffer import StreamBuffer  # noqa: E402

FULL_SETTINGS = {
    "search_transactions": [5000, 20000, 50000],
    "search_items_per_view": 40,
    "search_density": 0.4,
    "search_max_nodes": 30_000,
    "search_iterations": 2,
    "search_repetitions": 2,
    "predict_rows": 4096,
    "predict_rules": 512,
    "predict_source_items": 2048,
    "predict_target_items": 1024,
    "predict_repetitions": 3,
    "stream_window": 32_768,
    "stream_batch": 256,
    "stream_trackers": 32,
    "fallback_transactions": 400,
}
TINY_SETTINGS = {
    "search_transactions": [400],
    "search_items_per_view": 16,
    "search_density": 0.4,
    "search_max_nodes": 1_500,
    "search_iterations": 2,
    "search_repetitions": 1,
    "predict_rows": 256,
    "predict_rules": 48,
    "predict_source_items": 256,
    "predict_target_items": 128,
    "predict_repetitions": 1,
    "stream_window": 2_048,
    "stream_batch": 128,
    "stream_trackers": 8,
    "fallback_transactions": 120,
}


def _fingerprint(result) -> list:
    """JSON-serialisable identity of a fitted model (rules + gains)."""
    return [
        [list(record.rule.lhs), list(record.rule.rhs), record.rule.direction.value,
         repr(record.gain)]
        for record in result.history
    ]


def _fit(dataset, backend: str, settings: dict):
    return TranslatorExact(
        max_iterations=settings["search_iterations"],
        max_rule_size=3,
        max_nodes_per_search=settings["search_max_nodes"],
        backend=backend,
    ).fit(dataset)


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
def search_cells(settings: dict, native_available: bool) -> list[dict]:
    rows = []
    for n in settings["search_transactions"]:
        dataset, __ = generate_planted(
            SyntheticSpec(
                n_transactions=n,
                n_left=settings["search_items_per_view"],
                n_right=settings["search_items_per_view"],
                density_left=settings["search_density"],
                density_right=settings["search_density"],
                n_rules=6,
                seed=3,
            )
        )
        row: dict = {"n_transactions": n}
        fingerprints = {}
        for backend in ("numpy", "native"):
            if backend == "native" and not native_available:
                row["skipped"] = "native backend unavailable"
                break
            elapsed = []
            for __ in range(settings["search_repetitions"]):
                start = time.perf_counter()
                result = _fit(dataset, backend, settings)
                elapsed.append(time.perf_counter() - start)
            row[f"{backend}_seconds"] = min(elapsed)
            fingerprints[backend] = _fingerprint(result)
        if "native_seconds" in row:
            row["identical_results"] = (
                fingerprints["numpy"] == fingerprints["native"]
            )
            row["speedup"] = row["numpy_seconds"] / row["native_seconds"]
        rows.append(row)
    return rows


def _bulk_table(settings: dict, rng) -> list[TranslationRule]:
    n_src = settings["predict_source_items"]
    n_tgt = settings["predict_target_items"]
    rules = []
    for __ in range(settings["predict_rules"]):
        lhs = tuple(sorted(rng.choice(n_src, size=rng.integers(1, 4), replace=False)))
        rhs = tuple(sorted(rng.choice(n_tgt, size=rng.integers(1, 4), replace=False)))
        rules.append(TranslationRule(lhs, rhs, "->"))
    return rules


def bulk_predict_cell(settings: dict, native_available: bool) -> dict:
    rng = np.random.default_rng(7)
    rules = _bulk_table(settings, rng)
    matrix = rng.random(
        (settings["predict_rows"], settings["predict_source_items"])
    ) < 0.05
    cell: dict = {
        "n_rows": settings["predict_rows"],
        "n_rules": settings["predict_rules"],
        "n_source_items": settings["predict_source_items"],
    }
    outputs = {}
    for label, backend, strategy in (
        ("blas", "numpy", "blas"),
        ("packed_numpy", "numpy", "packed"),
        ("packed_native", "native", "packed"),
    ):
        if backend == "native" and not native_available:
            cell["skipped"] = "native backend unavailable"
            continue
        predictor = CompiledPredictor(
            Side.RIGHT,
            settings["predict_source_items"],
            settings["predict_target_items"],
            rules,
            backend=backend,
        )
        elapsed = []
        for __ in range(settings["predict_repetitions"]):
            start = time.perf_counter()
            outputs[label] = predictor.predict(matrix, strategy=strategy)
            elapsed.append(time.perf_counter() - start)
        cell[f"{label}_seconds"] = min(elapsed)
    cell["identical_results"] = all(
        np.array_equal(outputs["blas"], output) for output in outputs.values()
    )
    if "packed_native_seconds" in cell:
        cell["speedup_vs_blas"] = (
            cell["blas_seconds"] / cell["packed_native_seconds"]
        )
        cell["speedup_vs_packed_numpy"] = (
            cell["packed_numpy_seconds"] / cell["packed_native_seconds"]
        )
    return cell


def stream_cell(settings: dict, native_available: bool) -> dict:
    rng = np.random.default_rng(11)
    n_items = 24
    window = settings["stream_window"]
    batch = settings["stream_batch"]
    chunks = [
        (rng.random((batch, n_items)) < 0.3, rng.random((batch, n_items)) < 0.3)
        for __ in range(max(2, (2 * window) // batch))
    ]
    itemsets = [
        tuple(sorted(rng.choice(n_items, size=2, replace=False)))
        for __ in range(settings["stream_trackers"])
    ]
    cell: dict = {
        "window": window,
        "batch": batch,
        "trackers": len(itemsets),
    }
    counts = {}
    for backend in ("numpy", "native"):
        if backend == "native" and not native_available:
            cell["skipped"] = "native backend unavailable"
            continue
        buffer = StreamBuffer(n_items, n_items, capacity=window, backend=backend)
        trackers = [buffer.track(Side.LEFT, items) for items in itemsets]
        start = time.perf_counter()
        for left, right in chunks:
            buffer.append(left, right)
            if len(buffer) > window:
                buffer.evict(len(buffer) - window)
        cell[f"{backend}_seconds"] = time.perf_counter() - start
        counts[backend] = [tracker.count for tracker in trackers]
    if "native_seconds" in cell:
        cell["identical_results"] = counts["numpy"] == counts["native"]
        cell["speedup"] = cell["numpy_seconds"] / cell["native_seconds"]
    return cell


def fallback_cell(settings: dict, native_available: bool) -> dict:
    """Prove the no-compiler path: auto resolves to numpy, same model."""
    n = settings["fallback_transactions"]
    script = (
        "import json, sys\n"
        "from repro import native\n"
        "from repro.core.bitset import resolve_backend\n"
        "from repro.core.translator import TranslatorExact\n"
        "from repro.data.synthetic import SyntheticSpec, generate_planted\n"
        f"ds, _ = generate_planted(SyntheticSpec(n_transactions={n}, "
        "n_left=12, n_right=12, density_left=0.3, density_right=0.3, "
        "n_rules=4, seed=5))\n"
        "result = TranslatorExact(max_iterations=2, max_rule_size=3).fit(ds)\n"
        "print(json.dumps({\n"
        "    'native_available': native.available(),\n"
        "    'auto_resolves_to': resolve_backend('auto'),\n"
        "    'fingerprint': [[list(r.rule.lhs), list(r.rule.rhs), "
        "r.rule.direction.value, repr(r.gain)] for r in result.history],\n"
        "}))\n"
    )
    env = dict(os.environ)
    env["REPRO_NATIVE_DISABLE"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    cell: dict = {"n_transactions": n}
    if proc.returncode != 0:
        cell["error"] = proc.stderr.strip()[-2000:]
        cell["identical_results"] = False
        return cell
    probe = json.loads(proc.stdout)
    cell["subprocess_native_available"] = probe["native_available"]
    cell["subprocess_auto_resolves_to"] = probe["auto_resolves_to"]
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=n,
            n_left=12,
            n_right=12,
            density_left=0.3,
            density_right=0.3,
            n_rules=4,
            seed=5,
        )
    )
    # Compare against a native fit when possible — the strongest form of
    # "the fallback path computes the same model".
    parent_backend = "native" if native_available else "auto"
    here = TranslatorExact(
        max_iterations=2, max_rule_size=3, backend=parent_backend
    ).fit(dataset)
    cell["parent_backend"] = here.search_stats[0].backend
    cell["identical_results"] = (
        probe["auto_resolves_to"] == "numpy"
        and not probe["native_available"]
        and _fingerprint(here) == probe["fingerprint"]
    )
    return cell


# ----------------------------------------------------------------------
def run_grid(tiny: bool = False) -> dict:
    """Run every cell and return the report dictionary."""
    settings = TINY_SETTINGS if tiny else FULL_SETTINGS
    native_available = native.available()
    search = search_cells(settings, native_available)
    bulk = bulk_predict_cell(settings, native_available)
    stream = stream_cell(settings, native_available)
    fallback = fallback_cell(settings, native_available)
    compared = [row for row in search if "identical_results" in row]
    for extra in (bulk, stream):
        if "identical_results" in extra:
            compared.append(extra)
    speedups = [row["speedup"] for row in search if "speedup" in row]
    report = {
        "benchmark": "bitset backend numpy vs native",
        "mode": "tiny" if tiny else "full",
        "native_available": native_available,
        "native_error": native.native_error(),
        "build_info": {
            key: value
            for key, value in native.build_info().items()
            if key != "library"
        },
        "settings": settings,
        "search": search,
        "bulk_predict": bulk,
        "stream": stream,
        "fallback": fallback,
        "all_identical": (
            all(row["identical_results"] for row in compared)
            and fallback["identical_results"]
        ),
        "median_search_speedup": (
            statistics.median(speedups) if speedups else None
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="seconds-scale smoke grid"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_native.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_grid(tiny=args.tiny)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["search"]:
        if "speedup" in row:
            print(
                f"search n={row['n_transactions']:>6}  "
                f"numpy={row['numpy_seconds']:.2f}s  "
                f"native={row['native_seconds']:.2f}s  "
                f"speedup={row['speedup']:.2f}x  "
                f"identical={row['identical_results']}"
            )
        else:
            print(f"search n={row['n_transactions']:>6}  {row.get('skipped')}")
    bulk = report["bulk_predict"]
    if "speedup_vs_blas" in bulk:
        print(
            f"bulk predict {bulk['n_rows']} rows: blas={bulk['blas_seconds']:.3f}s  "
            f"packed(numpy)={bulk['packed_numpy_seconds']:.3f}s  "
            f"packed(native)={bulk['packed_native_seconds']:.3f}s  "
            f"-> {bulk['speedup_vs_blas']:.2f}x vs blas, "
            f"{bulk['speedup_vs_packed_numpy']:.2f}x vs packed"
        )
    stream = report["stream"]
    if "speedup" in stream:
        print(
            f"stream window={stream['window']}: numpy={stream['numpy_seconds']:.3f}s  "
            f"native={stream['native_seconds']:.3f}s  "
            f"speedup={stream['speedup']:.2f}x"
        )
    fallback = report["fallback"]
    print(
        f"fallback probe: auto -> {fallback.get('subprocess_auto_resolves_to')}, "
        f"identical={fallback['identical_results']}"
    )
    print(f"report written to {args.output}")
    if not report["all_identical"]:
        print("ERROR: backends disagreed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
