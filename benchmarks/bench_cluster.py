"""Cluster benchmark: replica router + mmap artifacts (``BENCH_cluster.json``).

Measures the two claims of the horizontal serving tier:

1. **Cold start** — building a :class:`repro.serve.CompiledPredictor`
   by mapping the binary ``compiled.bin`` sidecar
   (:mod:`repro.serve.binfmt`) versus the JSON path (parse
   ``artifact.json``, rebuild the rule masks, re-pack the uint64
   matrices).  The mapped path is a header read plus zero-copy numpy
   views, so it should be >= 10x faster on the largest model — this is
   what makes ``serve --workers N`` cheap to scale, since every worker
   repeats the load.  The cell also verifies the no-copy property
   (``np.shares_memory`` against the raw mapping) and bit-identity of
   both predictors' outputs.

2. **Fan-out** — req/s and latency percentiles of a
   :class:`repro.serve.ReplicaRouter` at 1/2/4/8 workers under a
   fixed-concurrency packed-``/predict`` load, against the
   *single-process floor* (one bare
   :class:`repro.serve.PredictionServer`, no router).  The
   ``workers=1`` cell doubles as the **router-overhead honesty cell**:
   it is the same worker count as the floor, so the throughput ratio
   is pure routing tax.  ``cpu_count`` is recorded because throughput
   can only scale with workers when there are cores to run them —
   on a single-core machine the extra workers timeslice one core and
   the grid documents the overhead instead of a speedup
   (``scaling_expected`` says which regime the numbers were measured
   in; the ``perf_smoke`` tier never asserts speedups the hardware
   cannot produce).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--tiny] [--output PATH]

``--tiny`` runs a seconds-scale smoke (in-process replicas, 2 worker
counts) used by ``tests/test_perf_smoke.py``; the full run uses
spawned worker processes like the real CLI.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data.dataset import Side, TwoViewDataset  # noqa: E402
from repro.serve import (  # noqa: E402
    CompiledPredictor,
    ModelArtifact,
    ModelRegistry,
    PredictionServer,
    PredictionService,
    ReplicaRouter,
    load_artifact,
    map_artifact,
)
from repro.serve.router import (  # noqa: E402
    local_replica_factory,
    process_replica_factory,
)
from repro.stream.codec import encode_packed_rows  # noqa: E402

sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
from bench_serve import synthetic_table  # noqa: E402

FULL_SETTINGS = {
    "model": {"n_rules": 2048, "n_items_per_view": 384},
    "worker_counts": [1, 2, 4, 8],
    "replica_mode": "process",
    "requests": 240,
    "concurrency": 32,
    "rows_per_request": 64,
    "distinct_bodies": 32,
    "density": 0.3,
    "cold_start_repetitions": 7,
}
TINY_SETTINGS = {
    "model": {"n_rules": 64, "n_items_per_view": 48},
    "worker_counts": [1, 2],
    "replica_mode": "local",
    "requests": 48,
    "concurrency": 8,
    "rows_per_request": 8,
    "distinct_bodies": 8,
    "density": 0.3,
    "cold_start_repetitions": 2,
}


def _publish_model(registry: ModelRegistry, settings: dict) -> ModelArtifact:
    model = settings["model"]
    n_items = model["n_items_per_view"]
    table = synthetic_table(model["n_rules"], n_items)
    rng = np.random.default_rng(11)
    dataset = TwoViewDataset(
        rng.random((32, n_items)) < settings["density"],
        rng.random((32, n_items)) < settings["density"],
        name="bench-cluster",
    )

    class _Result:
        def __init__(self):
            self.table = table

        def summary(self):
            return {"n_rules": len(table)}

    return registry.publish(
        ModelArtifact.from_result("bench", dataset, _Result(), {})
    )


def _request_bodies(settings: dict) -> list[bytes]:
    """Distinct packed ``/predict`` bodies, cycled by the load generator."""
    n_items = settings["model"]["n_items_per_view"]
    rng = np.random.default_rng(17)
    bodies = []
    for __ in range(settings["distinct_bodies"]):
        matrix = rng.random(
            (settings["rows_per_request"], n_items)
        ) < settings["density"]
        bodies.append(
            encode_packed_rows(matrix, meta={"model": "bench", "target": "R"})
        )
    return bodies


async def _http(host: str, port: int, method: str, path: str, body: bytes):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode()
            + body
        )
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, sep, payload = raw.partition(b"\r\n\r\n")
    if not sep:
        raise ConnectionError("torn response")
    return int(head.split()[1]), payload


async def _run_load(
    host: str, port: int, bodies: list[bytes], total: int, concurrency: int
) -> dict:
    """Fixed-concurrency closed-loop load; returns throughput + latency."""
    latencies: list[float] = []
    errors = 0
    semaphore = asyncio.Semaphore(concurrency)

    async def one(index: int) -> None:
        nonlocal errors
        async with semaphore:
            start = time.perf_counter()
            try:
                status, __ = await _http(
                    host, port, "POST", "/predict", bodies[index % len(bodies)]
                )
                if status != 200:
                    errors += 1
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                errors += 1
            latencies.append(time.perf_counter() - start)

    start = time.perf_counter()
    await asyncio.gather(*(one(i) for i in range(total)))
    wall = time.perf_counter() - start
    latencies.sort()

    def percentile(q: float) -> float:
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "requests": total,
        "errors": errors,
        "wall_seconds": wall,
        "requests_per_second": total / wall,
        "p50_ms": percentile(0.50) * 1000,
        "p99_ms": percentile(0.99) * 1000,
    }


def run_cold_start(registry: ModelRegistry, settings: dict) -> dict:
    """Mapped vs JSON cold start on the bench model (min over reps)."""
    artifact_path = registry.artifact_path("bench", 1)
    sidecar_path = registry.sidecar_path("bench", 1)
    repetitions = settings["cold_start_repetitions"]

    json_times, mapped_times = [], []
    for __ in range(repetitions):
        start = time.perf_counter()
        artifact = load_artifact(artifact_path)
        json_predictor = CompiledPredictor.from_table(
            artifact.table, Side.RIGHT, artifact.n_left, artifact.n_right
        )
        json_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        mapped = map_artifact(sidecar_path)
        mapped_predictor = CompiledPredictor.from_mapped(mapped, Side.RIGHT)
        mapped_times.append(time.perf_counter() - start)

    raw = np.frombuffer(mapped.buffer, dtype=np.uint8)
    shares = bool(
        np.shares_memory(mapped_predictor.antecedents.words, raw)
        and np.shares_memory(mapped_predictor.consequents.words, raw)
    )
    rng = np.random.default_rng(23)
    batch = rng.random(
        (64, settings["model"]["n_items_per_view"])
    ) < settings["density"]
    identical = bool(
        np.array_equal(mapped_predictor.predict(batch), json_predictor.predict(batch))
    )
    json_seconds = min(json_times)
    mapped_seconds = min(mapped_times)
    return {
        "n_rules": settings["model"]["n_rules"],
        "json_seconds": json_seconds,
        "mapped_seconds": mapped_seconds,
        "speedup": json_seconds / mapped_seconds,
        "zero_copy": shares,
        "identical_results": identical,
        "sidecar_bytes": sidecar_path.stat().st_size,
    }


def run_cluster_grid(registry: ModelRegistry, settings: dict) -> dict:
    """Floor (bare server) + router at each worker count, same load."""
    bodies = _request_bodies(settings)
    total = settings["requests"]
    concurrency = settings["concurrency"]

    async def measure_floor() -> dict:
        service = PredictionService(registry)
        server = PredictionServer(service, port=0, name="floor")
        await server.start()
        try:
            return await _run_load(
                server.host, server.port, bodies, total, concurrency
            )
        finally:
            await server.stop()

    async def measure_router(workers: int) -> dict:
        if settings["replica_mode"] == "process":
            factory = process_replica_factory(str(registry.root))
        else:
            factory = local_replica_factory(registry)
        router = ReplicaRouter(
            factory, workers=workers, probe_interval=0  # load only, no sweeps
        )
        await router.start()
        try:
            # One warm-up request per worker so every replica compiles
            # (maps) the model before the timed window.
            for __ in range(workers):
                await _http(router.host, router.port, "POST", "/predict", bodies[0])
            return await _run_load(
                router.host, router.port, bodies, total, concurrency
            )
        finally:
            await router.stop()

    floor = asyncio.run(measure_floor())
    grid = []
    for workers in settings["worker_counts"]:
        cell = asyncio.run(measure_router(workers))
        cell["workers"] = workers
        cell["speedup_vs_floor"] = (
            cell["requests_per_second"] / floor["requests_per_second"]
        )
        grid.append(cell)

    by_workers = {cell["workers"]: cell for cell in grid}
    overhead = None
    if 1 in by_workers:
        overhead = {
            "router_rps": by_workers[1]["requests_per_second"],
            "bare_rps": floor["requests_per_second"],
            "throughput_ratio": (
                by_workers[1]["requests_per_second"]
                / floor["requests_per_second"]
            ),
            "added_p50_ms": by_workers[1]["p50_ms"] - floor["p50_ms"],
        }
    scaling_counts = [w for w in (1, 2, 4) if w in by_workers]
    monotonic = all(
        by_workers[a]["requests_per_second"]
        <= by_workers[b]["requests_per_second"]
        for a, b in zip(scaling_counts, scaling_counts[1:])
    )
    p99_ok = (
        by_workers[4]["p99_ms"] <= floor["p99_ms"] if 4 in by_workers else None
    )
    return {
        "floor": floor,
        "grid": grid,
        "router_overhead_workers1": overhead,
        "monotonic_1_to_4": monotonic,
        "p99_at_4_not_worse_than_floor": p99_ok,
        "zero_errors": all(cell["errors"] == 0 for cell in grid)
        and floor["errors"] == 0,
    }


def run_grid(tiny: bool = False) -> dict:
    """Run the benchmark and return the report dictionary."""
    settings = TINY_SETTINGS if tiny else FULL_SETTINGS
    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as root:
        registry = ModelRegistry(Path(root) / "registry")
        _publish_model(registry, settings)
        cold_start = run_cold_start(registry, settings)
        cluster = run_cluster_grid(registry, settings)
    return {
        "benchmark": "cluster: replica router + mmap artifacts",
        "mode": "tiny" if tiny else "full",
        "settings": settings,
        "cpu_count": os.cpu_count(),
        "scaling_expected": (os.cpu_count() or 1) >= 4,
        "cold_start": cold_start,
        **cluster,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="seconds-scale smoke grid"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_cluster.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_grid(tiny=args.tiny)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    cold = report["cold_start"]
    print(
        f"cold start ({cold['n_rules']} rules): "
        f"json={cold['json_seconds'] * 1000:.2f}ms  "
        f"mapped={cold['mapped_seconds'] * 1000:.2f}ms  "
        f"speedup={cold['speedup']:.1f}x  zero_copy={cold['zero_copy']}  "
        f"identical={cold['identical_results']}"
    )
    floor = report["floor"]
    print(
        f"floor (bare server):   "
        f"{floor['requests_per_second']:8.1f} req/s  "
        f"p50={floor['p50_ms']:6.2f}ms  p99={floor['p99_ms']:6.2f}ms"
    )
    for cell in report["grid"]:
        print(
            f"router workers={cell['workers']}:     "
            f"{cell['requests_per_second']:8.1f} req/s  "
            f"p50={cell['p50_ms']:6.2f}ms  p99={cell['p99_ms']:6.2f}ms  "
            f"x{cell['speedup_vs_floor']:.2f} vs floor  "
            f"errors={cell['errors']}"
        )
    print(
        f"cpu_count={report['cpu_count']}  "
        f"scaling_expected={report['scaling_expected']}  "
        f"monotonic_1_to_4={report['monotonic_1_to_4']}  "
        f"zero_errors={report['zero_errors']}"
    )
    print(f"report written to {args.output}")
    if not (cold["zero_copy"] and cold["identical_results"]):
        print("ERROR: mapped predictor failed verification", file=sys.stderr)
        return 1
    if not report["zero_errors"]:
        print("ERROR: requests failed under load", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
