"""Microbenchmark: serving loop vs compiled predictor (``BENCH_serve.json``).

Times cross-view prediction through both engines — the per-rule
reference loop of :func:`repro.core.predict.predict_view` against the
packed-bitset-compiled :class:`repro.serve.CompiledPredictor` — on
synthetic translation tables at two serving scales (a paper-sized
table and a production-sized one), verifying on every cell that the
engines return bit-identical predictions (both compiled strategies,
``blas`` and ``packed``, are checked).

The primary grid covers the **micro-batch serving regime**: the batch
sizes the async server actually executes after coalescing concurrent
requests (1 row up to 2x its default ``max_batch`` of 256).  A separate
``bulk_grid`` reports offline-sized single calls (1024/4096 rows),
where the per-rule loop amortises its Python overhead over the huge
batch and the gap narrows — those cells are why ``predict-batch`` ships
both engines.  A third section measures the service layer end to end:
a cold ``/predict`` (artifact load + compile + predict) versus a warm
identical request answered from the LRU response cache.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py [--tiny] [--output PATH]

The default run writes ``BENCH_serve.json`` at the repository root with
per-cell throughput and the median compiled-over-loop speedup on
serving batches >= 256 rows (the repo's tracked serving number; the
acceptance floor is 5x).  ``--tiny`` runs a seconds-scale smoke grid
(used by the ``perf_smoke`` pytest marker) that checks engine
equivalence and emits the same JSON shape without asserting a speedup
floor.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.predict import predict_view  # noqa: E402
from repro.core.rules import TranslationRule  # noqa: E402
from repro.core.table import TranslationTable  # noqa: E402
from repro.data.dataset import Side, TwoViewDataset  # noqa: E402
from repro.serve import (  # noqa: E402
    CompiledPredictor,
    ModelArtifact,
    ModelRegistry,
    PredictionService,
)

FULL_SETTINGS = {
    "models": [
        {"name": "paper-scale", "n_rules": 48, "n_items_per_view": 40},
        {"name": "production-scale", "n_rules": 256, "n_items_per_view": 96},
    ],
    "serving_batch_sizes": [1, 64, 256, 512],
    "bulk_batch_sizes": [1024, 4096],
    "density": 0.35,
    "repetitions": 5,
    "cache_rows": 256,
}
TINY_SETTINGS = {
    "models": [{"name": "tiny", "n_rules": 16, "n_items_per_view": 16}],
    "serving_batch_sizes": [1, 32],
    "bulk_batch_sizes": [],
    "density": 0.35,
    "repetitions": 1,
    "cache_rows": 16,
}


def synthetic_table(n_rules: int, n_items: int, seed: int = 5) -> TranslationTable:
    """A random translation table at serving scale (provenance-free).

    Serving throughput depends only on the table's shape (rule count,
    itemset sizes, vocabulary width), not on how it was mined, so the
    benchmark synthesises tables directly instead of paying minutes of
    fitting per run; the shapes mirror the paper's Table 2/3 models and
    a larger production regime.
    """
    rng = np.random.default_rng(seed)
    rules: set[tuple] = set()
    while len(rules) < n_rules:
        lhs = tuple(
            sorted(rng.choice(n_items, size=int(rng.integers(1, 5)), replace=False))
        )
        rhs = tuple(
            sorted(rng.choice(n_items, size=int(rng.integers(1, 4)), replace=False))
        )
        direction = ("->", "<-", "<->")[int(rng.integers(0, 3))]
        rules.add((lhs, rhs, direction))
    return TranslationTable(
        TranslationRule(lhs, rhs, direction)
        for lhs, rhs, direction in sorted(rules)
    )


def _batch(n_rows: int, n_items: int, density: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((n_rows, n_items)) < density


def _time(function, repetitions: int) -> float:
    elapsed = []
    for __ in range(repetitions):
        start = time.perf_counter()
        function()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed)


def run_model(model: dict, settings: dict) -> list[dict]:
    """Time loop vs compiled on every batch size; check bit-identity."""
    n_items = model["n_items_per_view"]
    table = synthetic_table(model["n_rules"], n_items)
    compiled = CompiledPredictor.from_table(table, Side.RIGHT, n_items, n_items)
    cells = []
    sections = [
        ("serving", settings["serving_batch_sizes"]),
        ("bulk", settings["bulk_batch_sizes"]),
    ]
    for section, batch_sizes in sections:
        for batch_size in batch_sizes:
            batch = _batch(batch_size, n_items, settings["density"])
            loop_seconds = _time(
                lambda: predict_view(
                    batch, table, Side.RIGHT, n_items, engine="loop"
                ),
                settings["repetitions"],
            )
            compiled_seconds = _time(
                lambda: compiled.predict(batch), settings["repetitions"]
            )
            reference = predict_view(
                batch, table, Side.RIGHT, n_items, engine="loop"
            )
            identical = bool(
                np.array_equal(compiled.predict(batch, strategy="blas"), reference)
                and np.array_equal(
                    compiled.predict(batch, strategy="packed"), reference
                )
            )
            cells.append(
                {
                    "model": model["name"],
                    "section": section,
                    "batch_size": batch_size,
                    "n_rules": model["n_rules"],
                    "n_items_per_view": n_items,
                    "loop_seconds": loop_seconds,
                    "compiled_seconds": compiled_seconds,
                    "loop_rows_per_second": batch_size / loop_seconds,
                    "compiled_rows_per_second": batch_size / compiled_seconds,
                    "speedup": loop_seconds / compiled_seconds,
                    "identical_results": identical,
                }
            )
    return cells


def run_cache(settings: dict) -> dict:
    """Service-level cold vs warm timing of one identical request."""
    model = settings["models"][0]
    n_items = model["n_items_per_view"]
    table = synthetic_table(model["n_rules"], n_items)
    dataset = TwoViewDataset(
        _batch(64, n_items, settings["density"], seed=2),
        _batch(64, n_items, settings["density"], seed=3),
        name="bench-serve",
    )

    class _Result:
        def __init__(self):
            self.table = table

        def summary(self):
            return {"n_rules": len(table)}

    async def measure() -> dict:
        with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as root:
            registry = ModelRegistry(root)
            registry.publish(
                ModelArtifact.from_result("bench", dataset, _Result(), {})
            )
            service = PredictionService(registry, max_delay_ms=0.0)
            source = _batch(settings["cache_rows"], n_items, settings["density"], 4)
            rows = [sorted(np.flatnonzero(row).tolist()) for row in source]
            request = {"model": "bench", "target": "R", "rows": rows}
            start = time.perf_counter()
            cold = await service.predict(request)
            cold_seconds = time.perf_counter() - start
            start = time.perf_counter()
            warm = await service.predict(request)
            warm_seconds = time.perf_counter() - start
            return {
                "rows": len(rows),
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "warm_speedup": cold_seconds / warm_seconds,
                "cold_cached": cold["cached"],
                "warm_cached": warm["cached"],
            }

    return asyncio.run(measure())


def run_grid(tiny: bool = False) -> dict:
    """Run the benchmark and return the report dictionary."""
    settings = TINY_SETTINGS if tiny else FULL_SETTINGS
    cells = []
    for model in settings["models"]:
        cells.extend(run_model(model, settings))
    cache = run_cache(settings)
    serving = [cell for cell in cells if cell["section"] == "serving"]
    batched = [
        cell["speedup"] for cell in serving if cell["batch_size"] >= 256
    ]
    return {
        "benchmark": "serving: loop vs compiled predictor",
        "mode": "tiny" if tiny else "full",
        "settings": settings,
        "grid": serving,
        "bulk_grid": [cell for cell in cells if cell["section"] == "bulk"],
        "cache": cache,
        "all_identical": all(cell["identical_results"] for cell in cells),
        "median_speedup_batch256plus": (
            statistics.median(batched) if batched else None
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="seconds-scale smoke grid"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_serve.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_grid(tiny=args.tiny)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for cell in report["grid"] + report["bulk_grid"]:
        print(
            f"[{cell['section']:>7}] {cell['model']:<16} "
            f"batch={cell['batch_size']:>5}  rules={cell['n_rules']:>3}  "
            f"loop={cell['loop_rows_per_second']:>10.0f} rows/s  "
            f"compiled={cell['compiled_rows_per_second']:>12.0f} rows/s  "
            f"speedup={cell['speedup']:6.2f}x  identical={cell['identical_results']}"
        )
    cache = report["cache"]
    print(
        f"cache: cold={cache['cold_seconds'] * 1000:.2f}ms  "
        f"warm={cache['warm_seconds'] * 1000:.2f}ms  "
        f"({cache['warm_speedup']:.1f}x, warm_cached={cache['warm_cached']})"
    )
    median = report["median_speedup_batch256plus"]
    if median is not None:
        print(f"median speedup (serving batches >= 256): {median:.2f}x")
    print(f"report written to {args.output}")
    if not report["all_identical"]:
        print("ERROR: engines disagreed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
