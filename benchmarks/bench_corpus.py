"""Corpus-scale benchmark: out-of-core discovery (``BENCH_corpus.json``).

Three cells, each an honesty check as much as a timing:

* **out_of_core** — ingest a corpus 10x larger than the biggest in-RAM
  benchmark (500k rows vs the 50k ceiling of ``bench_native.py``) from
  a chunked generator that never materialises the full matrix, then run
  the sketch-pruned exact top-k query while ``tracemalloc`` watches the
  query's peak allocation.  Reported alongside: the packed payload the
  scan streamed through and the bytes a dense in-RAM load would need —
  ``rss_bounded`` certifies the peak stayed far below both.
* **sketch_prune** — the same query with and without sketch pruning on
  the same store.  Both must return **bit-identical** top-k rules
  (sketches may only prune and order, never approximate); the cell
  reports the speedup and the fraction of candidate pairs the sound
  bounds eliminated.
* **honesty** — at tier-1 scale, the store-backed top-k is compared
  bit-for-bit against the dense in-RAM reference *and* against the
  exact engine (``ExactRuleSearch`` capped at pair rules), and a
  budget-interrupted anytime search must satisfy
  ``gain + gap_bound >= optimal gain``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_corpus.py [--tiny] [--output PATH]

``--tiny`` runs a seconds-scale smoke grid (the ``perf_smoke`` /
``corpus_smoke`` pytest markers) that checks every equivalence and
emits the same JSON shape without asserting speedup floors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.search import ExactRuleSearch  # noqa: E402
from repro.core.state import CoverState  # noqa: E402
from repro.corpus import (  # noqa: E402
    ColumnStore,
    exact_topk_pairs,
    ingest_chunks,
    ingest_dataset,
    topk_pairs,
)
from repro.data.synthetic import SyntheticSpec, generate_planted  # noqa: E402

FULL_SETTINGS = {
    "corpus_transactions": 500_000,
    "corpus_items_per_view": 32,
    "corpus_density": 0.06,
    "corpus_planted_pairs": 6,
    "corpus_pattern_rate": 0.12,
    "chunk_rows": 16_384,
    "block_words": 64,
    "sample_rows": 4096,
    "minhash_hashes": 8,
    "k": 10,
    "batch_size": 512,
    "prune_batch_size": 64,
    "honesty_transactions": 500,
    "seed": 13,
}
TINY_SETTINGS = {
    "corpus_transactions": 20_000,
    "corpus_items_per_view": 16,
    "corpus_density": 0.06,
    "corpus_planted_pairs": 4,
    "corpus_pattern_rate": 0.12,
    "chunk_rows": 4096,
    "block_words": 16,
    "sample_rows": 1024,
    "minhash_hashes": 8,
    "k": 5,
    "batch_size": 128,
    "prune_batch_size": 32,
    "honesty_transactions": 300,
    "seed": 13,
}


def corpus_chunks(settings: dict):
    """Chunked planted-corpus generator — never materialises the corpus.

    Each chunk is produced by its own ``default_rng((seed, index))`` so
    the stream is reproducible chunk-by-chunk with O(chunk) memory.  A
    handful of planted item pairs co-activate across the views, and
    every item's background activity is *temporally clustered*: item
    ``i`` only fires inside its own contiguous window of the stream (a
    sliding window covering half the corpus).  Real logs behave this
    way — features come and go over time — and it is exactly the
    structure the store's per-block count sketches exploit: two items
    whose active windows barely overlap get a near-zero sound overlap
    bound without touching the payload.
    """
    n = settings["corpus_transactions"]
    n_items = settings["corpus_items_per_view"]
    chunk = settings["chunk_rows"]
    pairs = [
        (p, (p * 5 + 1) % n_items)
        for p in range(settings["corpus_planted_pairs"])
    ]

    def window(item: int) -> tuple[int, int]:
        # Item i is active on a half-corpus window starting at a stride
        # of n/2 per (n_items-1) items, so windows sweep the stream.
        lo = (item * (n // 2)) // max(n_items - 1, 1)
        return lo, lo + n // 2

    for index, start in enumerate(range(0, n, chunk)):
        rows = min(chunk, n - start)
        rng = np.random.default_rng((settings["seed"], index))
        left = rng.random((rows, n_items)) < settings["corpus_density"]
        right = rng.random((rows, n_items)) < settings["corpus_density"]
        positions = start + np.arange(rows)
        for item in range(n_items):
            lo, hi = window(item)
            active = (positions >= lo) & (positions < hi)
            left[~active, item] = False
            right[~active, item] = False
        for x, y in pairs:
            lo, hi = window(x)
            member = (rng.random(rows) < settings["corpus_pattern_rate"]) & (
                (positions >= lo) & (positions < hi)
            )
            left[member, x] = True
            right[member, y] = True
        yield left, right


def ingest_corpus(settings: dict, path: Path) -> dict:
    n_items = settings["corpus_items_per_view"]
    start = time.perf_counter()
    ingest_chunks(
        corpus_chunks(settings),
        path,
        n_transactions=settings["corpus_transactions"],
        n_left=n_items,
        n_right=n_items,
        block_words=settings["block_words"],
        sample_size=settings["sample_rows"],
        n_hashes=settings["minhash_hashes"],
        seed=settings["seed"],
        name="bench-corpus",
    )
    return {"ingest_seconds": time.perf_counter() - start,
            "file_bytes": path.stat().st_size}


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
def out_of_core_cell(settings: dict, store: ColumnStore, ingest: dict) -> dict:
    n = settings["corpus_transactions"]
    payload = store.n_blocks * store.block_nbytes
    dense_bytes = n * (store.n_left + store.n_right)  # bool matrix in RAM
    store.pair_overlaps(np.array([0]), np.array([0]))  # warm caches
    tracemalloc.start()
    start = time.perf_counter()
    result = topk_pairs(
        store, k=settings["k"], batch_size=settings["batch_size"]
    )
    elapsed = time.perf_counter() - start
    __, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "n_transactions": n,
        "n_items_per_view": settings["corpus_items_per_view"],
        "largest_ram_benchmark_transactions": 50_000,  # bench_native ceiling
        "scale_factor_vs_ram_benchmark": n / 50_000,
        "n_blocks": store.n_blocks,
        "payload_bytes": payload,
        "dense_bytes": dense_bytes,
        "file_bytes": ingest["file_bytes"],
        "ingest_seconds": ingest["ingest_seconds"],
        "query_seconds": elapsed,
        "query_peak_rss_bytes": peak,
        "rss_bounded": peak < payload / 2 and peak < dense_bytes / 8,
        "n_rules": len(result.rules),
        "pruned_fraction": result.pruned_fraction,
    }


def sketch_prune_cell(settings: dict, store: ColumnStore) -> dict:
    timings = {}
    results = {}
    # Same (fine) batch size for both arms so the comparison is purely
    # bound-driven pruning vs an exhaustive scan.
    for label, prune in (("pruned", True), ("full_scan", False)):
        start = time.perf_counter()
        results[label] = topk_pairs(
            store, k=settings["k"], batch_size=settings["prune_batch_size"],
            prune=prune,
        )
        timings[label] = time.perf_counter() - start
    pruned, full = results["pruned"], results["full_scan"]
    return {
        "k": settings["k"],
        "pruned_seconds": timings["pruned"],
        "full_scan_seconds": timings["full_scan"],
        "speedup": timings["full_scan"] / timings["pruned"],
        "n_pairs": full.n_pairs,
        "pruned_pairs_scanned": pruned.n_scanned,
        "full_pairs_scanned": full.n_scanned,
        "scanned_fraction": pruned.n_scanned / max(1, full.n_scanned),
        "pruned_blocks_read": pruned.n_blocks_read,
        "full_blocks_read": full.n_blocks_read,
        "identical_results": pruned.fingerprint() == full.fingerprint(),
    }


def honesty_cell(settings: dict, tmp_dir: Path) -> dict:
    """Tier-1-scale bit-identity against the dense path and the engine."""
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=settings["honesty_transactions"],
            n_left=14,
            n_right=12,
            density_left=0.3,
            density_right=0.3,
            n_rules=5,
            seed=settings["seed"],
        )
    )
    path = tmp_dir / "honesty.col"
    ingest_dataset(dataset, path, chunk_rows=128, block_words=2)
    with ColumnStore(path) as store:
        sketched = topk_pairs(store, k=settings["k"])
        dense = exact_topk_pairs(dataset, k=settings["k"],
                                 quant_bits=store.quant_bits)
    # Engine cross-check: the best pair rule is the exact search's
    # optimum under a two-item cap.
    rule, gain, __ = ExactRuleSearch(
        CoverState(dataset), max_rule_size=2
    ).find_best_rule()
    top_matches_engine = bool(
        sketched.rules
        and sketched.rules[0] == rule
        and repr(sketched.gains[0]) == repr(gain)
    )
    # Anytime honesty: an interrupted search's gain + gap_bound must
    # dominate the true optimum found by the complete search.
    full_rule, full_gain, full_stats = ExactRuleSearch(
        CoverState(dataset), max_rule_size=3
    ).find_best_rule()
    __, partial_gain, partial_stats = ExactRuleSearch(
        CoverState(dataset), max_rule_size=3, max_nodes=50
    ).find_best_rule()
    gap_sound = partial_gain + partial_stats.gap_bound >= full_gain - 1e-9
    return {
        "n_transactions": settings["honesty_transactions"],
        "topk_bit_identical": sketched.fingerprint() == dense.fingerprint(),
        "top1_matches_exact_engine": top_matches_engine,
        "anytime_gap_bound_sound": bool(gap_sound),
        "anytime_partial_gain": partial_gain,
        "anytime_gap_bound": partial_stats.gap_bound,
        "anytime_optimal_gain": full_gain,
        "identical_results": bool(
            sketched.fingerprint() == dense.fingerprint()
            and top_matches_engine
            and gap_sound
        ),
    }


# ----------------------------------------------------------------------
def run_grid(tiny: bool = False, work_dir: Path | None = None) -> dict:
    """Run every cell and return the report dictionary."""
    import tempfile

    settings = TINY_SETTINGS if tiny else FULL_SETTINGS
    if work_dir is None:
        work_dir = Path(tempfile.mkdtemp(prefix="bench_corpus_"))
    work_dir.mkdir(parents=True, exist_ok=True)
    store_path = work_dir / "corpus.col"
    ingest = ingest_corpus(settings, store_path)
    with ColumnStore(store_path) as store:
        out_of_core = out_of_core_cell(settings, store, ingest)
        sketch_prune = sketch_prune_cell(settings, store)
    honesty = honesty_cell(settings, work_dir)
    return {
        "benchmark": "out-of-core corpus discovery",
        "mode": "tiny" if tiny else "full",
        "settings": settings,
        "out_of_core": out_of_core,
        "sketch_prune": sketch_prune,
        "honesty": honesty,
        "all_identical": bool(
            sketch_prune["identical_results"] and honesty["identical_results"]
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="seconds-scale smoke grid"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_corpus.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_grid(tiny=args.tiny)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    cell = report["out_of_core"]
    print(
        f"out-of-core n={cell['n_transactions']:,} "
        f"({cell['scale_factor_vs_ram_benchmark']:.0f}x the RAM benchmark): "
        f"ingest={cell['ingest_seconds']:.2f}s  query={cell['query_seconds']:.3f}s  "
        f"peak RSS={cell['query_peak_rss_bytes'] / 1e6:.2f}MB over a "
        f"{cell['payload_bytes'] / 1e6:.1f}MB payload  "
        f"bounded={cell['rss_bounded']}"
    )
    cell = report["sketch_prune"]
    print(
        f"sketch prune: full={cell['full_scan_seconds']:.3f}s  "
        f"pruned={cell['pruned_seconds']:.3f}s  speedup={cell['speedup']:.2f}x  "
        f"scanned {cell['pruned_pairs_scanned']}/{cell['n_pairs']} pairs  "
        f"identical={cell['identical_results']}"
    )
    cell = report["honesty"]
    print(
        f"honesty n={cell['n_transactions']}: "
        f"topk_bit_identical={cell['topk_bit_identical']}  "
        f"top1_matches_engine={cell['top1_matches_exact_engine']}  "
        f"gap_bound_sound={cell['anytime_gap_bound_sound']}"
    )
    print(f"report written to {args.output}")
    if not report["all_identical"]:
        print("ERROR: sketched and exact paths disagreed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
