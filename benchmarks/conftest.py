"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on the
synthetic registry stand-ins.  ``REPRO_BENCH_SCALE`` (default ``0.1``)
rescales the number of transactions so the whole suite finishes on a
laptop in minutes; set it to ``1.0`` for full-size runs.  Printed reports
always show the paper's published values next to the measured ones.

Reports are (a) written immediately to ``benchmarks/_reports/*.txt`` so
they survive crashes and feed EXPERIMENTS.md, and (b) echoed in the
terminal summary after the pytest-benchmark table.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
REPORT_DIR = Path(__file__).parent / "_reports"

_reports: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Transaction-count scale used by all benchmark datasets."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def report():
    """Record a titled report block: persisted to disk and echoed at exit."""
    REPORT_DIR.mkdir(exist_ok=True)

    def emit(title: str, body: str) -> None:
        _reports.append((title, body))
        slug = re.sub(r"[^A-Za-z0-9]+", "_", title).strip("_")[:80]
        (REPORT_DIR / f"{slug}.txt").write_text(
            f"{title}\n{'=' * len(title)}\n{body}\n", encoding="utf-8"
        )

    return emit


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _reports:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for title, body in _reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        terminalreporter.write_line("-" * min(78, len(title)))
        for line in body.splitlines():
            terminalreporter.write_line(line)
