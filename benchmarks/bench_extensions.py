"""A4-A6 — Extension benchmarks (beyond the paper).

* A4 — **table pruning**: how much does post-hoc rule removal (KRIMP-style
  pruning applied to translation tables) improve each TRANSLATOR
  variant's result?  The paper's algorithms only add rules.
* A5 — **prediction**: translation tables as cross-view predictors on
  held-out data — the "compression models are useful for other tasks"
  angle of Section 2.3.
* A6 — **randomization test**: swap-randomization confirms that measured
  compression comes from the *pairing* of the views (planted data is
  significant, pure noise is not).
"""

from __future__ import annotations

from repro.core.pruning import prune_table
from repro.core.predict import holdout_evaluation
from repro.core.translator import TranslatorGreedy, TranslatorSelect
from repro.data.synthetic import SyntheticSpec, generate_planted, random_dataset
from repro.eval.randomization import randomization_test
from repro.eval.tables import format_table


def make_planted(seed: int = 71):
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=400, n_left=12, n_right=12,
            density_left=0.12, density_right=0.12,
            n_rules=5, confidence=(0.9, 1.0), activation=(0.15, 0.3), seed=seed,
        )
    )
    return dataset


def test_ablation_table_pruning(benchmark, report):
    """A4: post-hoc pruning of fitted translation tables."""

    def run():
        dataset = make_planted()
        rows = []
        for label, translator in (
            ("select(1)", TranslatorSelect(k=1, minsup=5)),
            ("select(25)", TranslatorSelect(k=25, minsup=5)),
            ("greedy", TranslatorGreedy(minsup=5)),
        ):
            fitted = translator.fit(dataset)
            pruned = prune_table(dataset, fitted.table)
            rows.append(
                {
                    "method": label,
                    "|T| before": fitted.n_rules,
                    "|T| after": len(pruned.table),
                    "bits saved": round(pruned.improvement_bits, 1),
                    "L% before": round(100 * fitted.compression_ratio, 2),
                    "L% after": round(
                        100 * pruned.bits_after / fitted.state.baseline_bits, 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("A4 — post-hoc pruning of translation tables", format_table(rows))
    for row in rows:
        assert row["|T| after"] <= row["|T| before"]
        assert float(row["L% after"]) <= float(row["L% before"]) + 1e-6
    # The greedy single-pass variant accumulates the most redundancy, so
    # pruning should help it at least as much as it helps select(1).
    by_method = {row["method"]: row for row in rows}
    assert (
        by_method["greedy"]["bits saved"] >= by_method["select(1)"]["bits saved"] - 1.0
    )


def test_extension_prediction(benchmark, report):
    """A5: cross-view prediction quality on held-out transactions."""

    def run():
        rows = []
        for label, dataset in (
            ("planted", make_planted(seed=72)),
            ("noise", random_dataset(400, 12, 12, 0.12, 0.12, seed=73)),
        ):
            scores = holdout_evaluation(
                dataset, TranslatorSelect(k=1, minsup=5), train_fraction=0.7, rng=0
            )
            for direction, score in scores.items():
                rows.append(
                    {
                        "data": label,
                        "direction": direction,
                        "precision": round(score.precision, 3),
                        "recall": round(score.recall, 3),
                        "f1": round(score.f1, 3),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("A5 — held-out cross-view prediction with translation tables", format_table(rows))
    planted_f1 = [row["f1"] for row in rows if row["data"] == "planted"]
    noise_f1 = [row["f1"] for row in rows if row["data"] == "noise"]
    # Structure is predictable, noise is not.
    assert max(planted_f1) > max(noise_f1)


def test_extension_randomization(benchmark, report):
    """A6: swap-randomization significance of the compression signal."""

    def run():
        planted = make_planted(seed=74)
        noise = random_dataset(300, 10, 10, 0.12, 0.12, seed=75)
        planted_result = randomization_test(
            planted, TranslatorGreedy(minsup=5), n_permutations=9, rng=0
        )
        noise_result = randomization_test(
            noise, TranslatorGreedy(minsup=5), n_permutations=9, rng=0
        )
        return planted_result, noise_result

    planted_result, noise_result = benchmark.pedantic(run, rounds=1, iterations=1)
    body = format_table(
        [
            {
                "data": "planted",
                "observed L%": round(100 * planted_result.observed_ratio, 2),
                "null mean L%": round(
                    100 * sum(planted_result.null_ratios) / len(planted_result.null_ratios), 2
                ),
                "p-value": round(planted_result.p_value, 3),
            },
            {
                "data": "noise",
                "observed L%": round(100 * noise_result.observed_ratio, 2),
                "null mean L%": round(
                    100 * sum(noise_result.null_ratios) / len(noise_result.null_ratios), 2
                ),
                "p-value": round(noise_result.p_value, 3),
            },
        ]
    )
    report("A6 — swap-randomization test of cross-view structure", body)
    assert planted_result.p_value <= 0.1
    assert noise_result.p_value > 0.1
