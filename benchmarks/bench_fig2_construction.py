"""E4 — Fig. 2: construction of a translation table on House.

Reproduces the paper's construction trace: TRANSLATOR-SELECT(1) on the
House stand-in, tracking per added rule (top panel) the uncovered ones
``|U|`` and errors ``|E|`` per side, and (bottom panel) the encoded
lengths ``L(D_{L->R}|T)``, ``L(D_{L<-R}|T)``, ``L(T)`` and their total.

Asserted shape (exactly the paper's reading of Fig. 2):

* the number of uncovered items drops quickly while errors rise slowly;
* the encoded lengths of both translations decrease as rules are added;
* the total strictly decreases and the compression gain per rule shrinks
  ("compression gain per rule decreases quite quickly").
"""

from __future__ import annotations

import numpy as np

from repro.core.translator import TranslatorSelect
from repro.data.registry import make_dataset
from repro.eval.trace import construction_trace, format_trace


def run_construction():
    dataset = make_dataset("house", scale=1.0)
    # minsup auto-tuned to the candidate budget (the dense house stand-in
    # explodes at the paper's minsup=8; the trace shape is unaffected).
    result = TranslatorSelect(k=1, max_candidates=5_000).fit(dataset)
    return result


def test_fig2_construction_trace(benchmark, report):
    result = benchmark.pedantic(run_construction, rounds=1, iterations=1)
    series = construction_trace(result)
    step = max(1, result.n_rules // 20)
    report(
        "E4 / Fig. 2 — construction of a translation table "
        f"(house, translator-select(1), {result.n_rules} rules)",
        format_trace(result, every=step),
    )

    assert result.n_rules >= 5, "need a non-trivial construction to trace"

    uncovered = np.array(series["uncovered_left"]) + np.array(series["uncovered_right"])
    errors = np.array(series["errors_left"]) + np.array(series["errors_right"])
    totals = np.array(series["L_total"])
    table_bits = np.array(series["L_table"])

    # Top panel: uncovered ones monotonically drop, errors monotonically rise.
    assert (np.diff(uncovered) <= 0).all()
    assert (np.diff(errors) >= 0).all()
    # Uncovered drops fast: more than errors rise (or rules would not pay off).
    assert uncovered[0] - uncovered[-1] > errors[-1] - errors[0]

    # Bottom panel: encoded translation lengths decrease, model grows.
    assert series["L_left_to_right"][-1] < series["L_left_to_right"][0]
    assert series["L_right_to_left"][-1] < series["L_right_to_left"][0]
    assert (np.diff(table_bits) >= 0).all()

    # Total strictly decreases; per-rule gains shrink over the run.
    assert (np.diff(totals) < 0).all()
    gains = -np.diff(totals)
    first_quarter = gains[: max(1, len(gains) // 4)].mean()
    last_quarter = gains[-max(1, len(gains) // 4):].mean()
    assert first_quarter > last_quarter
