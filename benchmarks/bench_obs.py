"""Microbenchmark: observability overhead (``BENCH_obs.json``).

The instrument seam's promise is that observability is effectively
free: **disabled**, every hook costs one module attribute load plus a
``None`` comparison; **enabled**, the counters are cheap enough that
the search and serving hot paths stay within a ~2% overhead budget.
This benchmark keeps both promises honest:

* ``search`` — :meth:`ExactRuleSearch.find_best_rule` on a synthetic
  two-view dataset, instrumented vs not.  The search path exercises
  the densest hook site: the bitset dispatch counter fires on every
  batched kernel primitive.
* ``serve`` — end-to-end ``/predict`` requests through a
  :class:`PredictionService` (micro-batcher, compiled predictor,
  response cache off), instrumented vs not.
* ``guard_ns`` — the disabled-mode cost measured directly: a
  microbenchmark of the literal ``if obs.ACTIVE is not None`` check,
  reported in nanoseconds per call.

Modes are interleaved A/B/A/B and summarised by their per-arm minimum
(the least-interrupted round), so a load spike cannot masquerade as
hook overhead.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs.py [--tiny] [--output PATH]

The default run writes ``BENCH_obs.json`` at the repository root and
fails (exit 1) if the enabled-mode overhead exceeds the 2% acceptance
ceiling on either hot path (with a small absolute-time floor so
micro-jitter on a sub-millisecond path cannot flake the check).
``--tiny`` shrinks the grid to a seconds-scale smoke run and skips the
ceiling assertion.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.core.rules import TranslationRule  # noqa: E402
from repro.core.search import CoverState, ExactRuleSearch  # noqa: E402
from repro.core.table import TranslationTable  # noqa: E402
from repro.data.dataset import TwoViewDataset  # noqa: E402
from repro.serve import (  # noqa: E402
    ModelArtifact,
    ModelRegistry,
    PredictionService,
)

ACCEPTANCE_MAX_OVERHEAD_PCT = 2.0
#: Below this per-iteration wall-clock delta the "overhead" is timer
#: jitter, not hook cost — the acceptance check ignores it.
JITTER_FLOOR_SECONDS = 2e-4


def make_dataset(n_rows: int, n_left: int = 14, n_right: int = 11) -> TwoViewDataset:
    rng = np.random.default_rng(7)
    return TwoViewDataset(
        rng.random((n_rows, n_left)) < 0.4,
        rng.random((n_rows, n_right)) < 0.4,
        name="obs-bench",
    )


def time_modes(run, rounds: int) -> dict:
    """Interleave disabled/enabled rounds of ``run()``; median seconds."""
    timings: dict[str, list[float]] = {"disabled": [], "enabled": []}
    for _ in range(rounds):
        for mode in ("disabled", "enabled"):
            if mode == "enabled":
                obs.instrument(registry=obs.MetricsRegistry())
            else:
                obs.instrument(enabled=False)
            started = time.perf_counter()
            run()
            timings[mode].append(time.perf_counter() - started)
    obs.instrument(enabled=False)
    # min, not median: the least-interrupted round of each arm is the
    # fairest estimate of the code's intrinsic cost on a shared box.
    disabled = min(timings["disabled"])
    enabled = min(timings["enabled"])
    return {
        "disabled_s": disabled,
        "enabled_s": enabled,
        "overhead_s": enabled - disabled,
        "overhead_pct": 100.0 * (enabled - disabled) / disabled,
        "rounds": rounds,
    }


def bench_search(tiny: bool) -> dict:
    dataset = make_dataset(400 if tiny else 2000)
    rounds = 5 if tiny else 15

    def run() -> None:
        # A fresh state each run: find_best_rule on an empty table is
        # the per-iteration unit of every fit method (node-capped as in
        # bench_search_kernel so a round stays sub-second).
        ExactRuleSearch(
            CoverState(dataset), max_rule_size=3, max_nodes=30_000
        ).find_best_rule()

    run()  # warm caches/JIT-compiled kernels outside the timed region
    return time_modes(run, rounds)


def bench_serve(tiny: bool) -> dict:
    rng = np.random.default_rng(13)
    n_left, n_right = 14, 11
    rules = TranslationTable(
        [
            TranslationRule((0, 1), (2,), "->"),
            TranslationRule((2, 3), (0, 4), "<->"),
            TranslationRule((5,), (1,), "<-"),
            TranslationRule((6, 7), (5, 6), "->"),
        ]
    )
    dataset = make_dataset(64, n_left, n_right)

    class _Result:
        def __init__(self):
            self.table = rules

        def summary(self):
            return {"n_rules": len(rules)}

    n_requests = 40 if tiny else 200
    rounds = 5 if tiny else 15
    rows = [
        [int(i) for i in np.flatnonzero(rng.random(n_left) < 0.3)]
        for _ in range(n_requests)
    ]

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.publish(ModelArtifact.from_result("obs-bench", dataset, _Result(), {}))
        service = PredictionService(registry, cache_size=0, max_delay_ms=0.0)

        async def drive() -> None:
            for row in rows:
                await service.predict(
                    {"model": "obs-bench", "target": "R", "rows": [row]}
                )

        def run() -> None:
            asyncio.run(drive())

        run()  # warm: artifact load + predictor compile
        result = time_modes(run, rounds)
    result["requests_per_round"] = n_requests
    return result


def bench_guard(iterations: int = 2_000_000) -> float:
    """Nanoseconds per disabled-mode hook check (load + None compare)."""
    obs.instrument(enabled=False)

    def loop(n: int) -> int:
        hits = 0
        for _ in range(n):
            if obs.ACTIVE is not None:  # the entire disabled-mode cost
                hits += 1
        return hits

    loop(10_000)
    started = time.perf_counter()
    loop(iterations)
    elapsed = time.perf_counter() - started
    # Subtract the bare loop so we report the check, not Python's for.
    def bare(n: int) -> int:
        hits = 0
        for _ in range(n):
            hits += 0
        return hits

    started = time.perf_counter()
    bare(iterations)
    baseline = time.perf_counter() - started
    return max(0.0, (elapsed - baseline) / iterations * 1e9)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true", help="seconds-scale smoke grid"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_obs.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    print("# observability overhead benchmark"
          + (" (tiny)" if args.tiny else ""))
    search = bench_search(args.tiny)
    print(
        f"search: disabled {search['disabled_s'] * 1e3:.2f}ms, "
        f"enabled {search['enabled_s'] * 1e3:.2f}ms "
        f"({search['overhead_pct']:+.2f}%)"
    )
    serve = bench_serve(args.tiny)
    print(
        f"serve:  disabled {serve['disabled_s'] * 1e3:.2f}ms, "
        f"enabled {serve['enabled_s'] * 1e3:.2f}ms "
        f"({serve['overhead_pct']:+.2f}%) "
        f"[{serve['requests_per_round']} requests/round]"
    )
    guard_ns = bench_guard(200_000 if args.tiny else 2_000_000)
    print(f"guard:  {guard_ns:.1f}ns per disabled-mode check")

    failures = []
    if not args.tiny:
        for name, cell in (("search", search), ("serve", serve)):
            if (
                cell["overhead_pct"] > ACCEPTANCE_MAX_OVERHEAD_PCT
                and cell["overhead_s"] > JITTER_FLOOR_SECONDS
            ):
                failures.append(
                    f"{name} enabled overhead {cell['overhead_pct']:.2f}% "
                    f"exceeds {ACCEPTANCE_MAX_OVERHEAD_PCT}%"
                )

    report = {
        "benchmark": "obs",
        "tiny": args.tiny,
        "search": search,
        "serve": serve,
        "guard_ns_per_check": guard_ns,
        "acceptance": {
            "enabled_max_overhead_pct": ACCEPTANCE_MAX_OVERHEAD_PCT,
            "jitter_floor_seconds": JITTER_FLOOR_SECONDS,
            "checked": not args.tiny,
            "pass": not failures,
            "failures": failures,
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"# wrote {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
