"""Microbenchmark: bool vs bitset search kernels (``BENCH_search.json``).

Times ``TranslatorExact.fit`` end-to-end under both support kernels on a
grid of dense planted two-view datasets in the House/Tictactoe regime
(densities 0.4-0.5, ~40 one-hot items per view) across transaction
counts, and verifies on every configuration that the two kernels return
identical rules, gains and search statistics.  Every search runs under
the same fixed node budget so the two kernels traverse the exact same
tree and the comparison measures pure per-node throughput.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_search_kernel.py [--tiny] [--output PATH]

The default grid writes ``BENCH_search.json`` at the repository root with
per-configuration timings and the median speedup over the dense
``n_transactions >= 2000`` configurations (the repo's tracked perf
number).  ``--tiny`` runs a seconds-scale smoke grid (used by the
``perf_smoke`` pytest marker) that checks kernel equivalence and emits
the same JSON shape without asserting a speedup floor.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.translator import TranslatorExact  # noqa: E402
from repro.data.synthetic import SyntheticSpec, generate_planted  # noqa: E402

# The dense House/Tictactoe-regime grid: n_transactions x density.
FULL_GRID = [
    {"n_transactions": n, "density": d}
    for n in (2000, 3000, 5000)
    for d in (0.4, 0.5)
]
TINY_GRID = [
    {"n_transactions": 300, "density": 0.4},
    {"n_transactions": 300, "density": 0.5},
]

FULL_SETTINGS = {
    "n_items_per_view": 40,
    "max_rule_size": 3,
    "max_nodes_per_search": 30_000,
    "max_iterations": 3,
    "repetitions": 3,
}
TINY_SETTINGS = {
    "n_items_per_view": 16,
    "max_rule_size": 3,
    "max_nodes_per_search": 1_500,
    "max_iterations": 2,
    "repetitions": 1,
}


def _fingerprint(result) -> tuple:
    """Everything that must match between kernels, hashably."""
    return (
        tuple((record.rule, record.gain) for record in result.history),
        tuple(
            (
                stats.nodes_visited,
                stats.nodes_pruned_rub,
                stats.evaluations,
                stats.evaluations_skipped_qub,
                stats.complete,
            )
            for stats in result.search_stats
        ),
    )


def run_config(config: dict, settings: dict) -> dict:
    """Time both kernels on one grid cell and check their equivalence."""
    items = settings["n_items_per_view"]
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=config["n_transactions"],
            n_left=items,
            n_right=items,
            density_left=config["density"],
            density_right=config["density"],
            n_rules=6,
            seed=3,
        )
    )
    row = dict(config)
    fingerprints = {}
    for kernel in ("bitset", "bool"):
        translator = TranslatorExact(
            max_iterations=settings["max_iterations"],
            max_rule_size=settings["max_rule_size"],
            max_nodes_per_search=settings["max_nodes_per_search"],
            kernel=kernel,
        )
        elapsed = []
        for __ in range(settings["repetitions"]):
            start = time.perf_counter()
            result = translator.fit(dataset)
            elapsed.append(time.perf_counter() - start)
        row[f"{kernel}_seconds"] = min(elapsed)
        fingerprints[kernel] = _fingerprint(result)
        row["nodes_visited"] = sum(
            stats.nodes_visited for stats in result.search_stats
        )
    row["identical_results"] = fingerprints["bitset"] == fingerprints["bool"]
    row["speedup"] = row["bool_seconds"] / row["bitset_seconds"]
    return row


def run_grid(tiny: bool = False) -> dict:
    """Run the benchmark grid and return the report dictionary."""
    grid = TINY_GRID if tiny else FULL_GRID
    settings = TINY_SETTINGS if tiny else FULL_SETTINGS
    rows = [run_config(config, settings) for config in grid]
    dense = [row["speedup"] for row in rows if row["n_transactions"] >= 2000]
    report = {
        "benchmark": "search-kernel bool vs bitset",
        "mode": "tiny" if tiny else "full",
        "settings": settings,
        "grid": rows,
        "all_identical": all(row["identical_results"] for row in rows),
        "median_speedup_dense_n2000plus": (
            statistics.median(dense) if dense else None
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="seconds-scale smoke grid"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_search.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_grid(tiny=args.tiny)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for row in report["grid"]:
        print(
            f"n={row['n_transactions']:>6}  d={row['density']:.2f}  "
            f"bool={row['bool_seconds']:.2f}s  bitset={row['bitset_seconds']:.2f}s  "
            f"speedup={row['speedup']:.2f}x  identical={row['identical_results']}"
        )
    median = report["median_speedup_dense_n2000plus"]
    if median is not None:
        print(f"median speedup (dense, n >= 2000): {median:.2f}x")
    print(f"report written to {args.output}")
    if not report["all_identical"]:
        print("ERROR: kernels disagreed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
