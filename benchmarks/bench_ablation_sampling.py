"""A2b — Ablation: sampled versus mined candidates for TRANSLATOR-SELECT.

The paper's SELECT/GREEDY variants consume *mined* closed frequent
two-view itemsets, which requires a minsup threshold.  Our extension
:mod:`repro.mining.sampling` draws candidates by direct cross-view
pattern sampling — threshold-free and with output size controlled
directly by the number of draws.

This benchmark compares SELECT(1) compression and runtime when fed
(a) closed mined candidates at decreasing minsup versus (b) sampled
candidate sets of increasing size, on a planted dataset.  The expected
shape: sampling reaches compression close to mined candidates at
comparable candidate-set sizes, and its cost scales with the number of
draws instead of with the (possibly exponential) pattern-space size.
"""

from __future__ import annotations

from repro.core.translator import TranslatorSelect
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.eval.tables import format_table
from repro.mining.sampling import sample_candidates
from repro.mining.twoview import two_view_candidates

MINSUPS = (20, 10, 5)
SAMPLE_SIZES = (200, 1000, 5000)


def make_data():
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=400,
            n_left=12,
            n_right=12,
            density_left=0.15,
            density_right=0.15,
            n_rules=5,
            seed=33,
        )
    )
    return dataset


def run_ablation():
    dataset = make_data()
    rows = []
    for minsup in MINSUPS:
        candidates = two_view_candidates(dataset, minsup, closed=True)
        result = TranslatorSelect(k=1, candidates=candidates).fit(dataset)
        rows.append(
            {
                "source": f"mined(minsup={minsup})",
                "n_candidates": len(candidates),
                "|T|": result.n_rules,
                "L%": round(100 * result.compression_ratio, 2),
                "runtime_s": round(result.runtime_seconds, 2),
            }
        )
    for n_samples in SAMPLE_SIZES:
        candidates = sample_candidates(dataset, n_samples, rng=0)
        result = TranslatorSelect(k=1, candidates=candidates).fit(dataset)
        rows.append(
            {
                "source": f"sampled(n={n_samples})",
                "n_candidates": len(candidates),
                "|T|": result.n_rules,
                "L%": round(100 * result.compression_ratio, 2),
                "runtime_s": round(result.runtime_seconds, 2),
            }
        )
    return rows


def test_ablation_sampling(benchmark, report):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report(
        "A2b — sampled vs mined candidates for TRANSLATOR-SELECT(1)",
        format_table(rows),
    )
    mined = [row for row in rows if row["source"].startswith("mined")]
    sampled = [row for row in rows if row["source"].startswith("sampled")]
    # All configurations must actually compress the planted structure.
    assert all(float(row["L%"]) < 100.0 for row in rows)
    # More draws -> more distinct candidates (monotone, merged duplicates).
    counts = [row["n_candidates"] for row in sampled]
    assert counts == sorted(counts)
    # The largest sampled set should be competitive with the best mined set:
    # within 10 percentage points of compression ratio.
    best_mined = min(float(row["L%"]) for row in mined)
    best_sampled = min(float(row["L%"]) for row in sampled)
    assert best_sampled <= best_mined + 10.0
