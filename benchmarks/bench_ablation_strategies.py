"""A7 — Extension: the four search strategies head to head.

Compares the paper's three TRANSLATOR variants plus the beam-search
extension (``repro.core.beam``) on one planted dataset: rules,
compression, runtime.  BEAM needs no candidate mining and no minsup, so
it is the interesting fourth point on the compression/runtime frontier.
"""

from __future__ import annotations

from repro.core.beam import TranslatorBeam
from repro.core.translator import TranslatorExact, TranslatorGreedy, TranslatorSelect
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.eval.tables import format_table


def make_data():
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=300, n_left=10, n_right=10,
            density_left=0.12, density_right=0.12,
            n_rules=4, confidence=(0.9, 1.0), activation=(0.15, 0.3), seed=81,
        )
    )
    return dataset


def run_strategies():
    dataset = make_data()
    methods = {
        "exact": TranslatorExact(max_rule_size=5),
        "select(1)": TranslatorSelect(k=1, minsup=3),
        "greedy": TranslatorGreedy(minsup=3),
        "beam(8)": TranslatorBeam(beam_width=8, max_rule_size=5),
    }
    rows = []
    for label, translator in methods.items():
        result = translator.fit(dataset)
        rows.append(
            {
                "method": label,
                "|T|": result.n_rules,
                "L%": round(100 * result.compression_ratio, 2),
                "avg rule len": round(result.table.average_length, 2),
                "runtime_s": round(result.runtime_seconds, 2),
            }
        )
    return rows


def test_ablation_strategies(benchmark, report):
    rows = benchmark.pedantic(run_strategies, rounds=1, iterations=1)
    report("A7 — search strategies incl. beam extension", format_table(rows))
    by_method = {row["method"]: row for row in rows}
    # EXACT is the compression lower bound among the four (small slack for
    # its rule-size cap).
    exact_ratio = float(by_method["exact"]["L%"])
    for label, row in by_method.items():
        assert float(row["L%"]) >= exact_ratio - 2.0, label
    # BEAM lands at-or-better than GREEDY.
    assert float(by_method["beam(8)"]["L%"]) <= float(by_method["greedy"]["L%"]) + 2.0
