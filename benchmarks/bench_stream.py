"""Microbenchmark: incremental window maintenance vs repack+refit
(``BENCH_stream.json``).

Simulates the maintenance loop's hot path on an append-heavy workload:
a sliding window of ``window`` rows advances by ``batch`` rows per
event.  Two implementations process the same stream:

* **incremental** — the :class:`repro.stream.StreamBuffer` path: append
  packs only the word-tail, eviction rotates dead words out, per-rule
  support counts come from the buffer's tracked itemsets, and the
  published table is re-scored against the window
  (:func:`repro.stream.score_table`); a refit runs only when the drift
  monitor fires (never, on this stationary stream — exactly the point).
* **full** — the batch path a naive deployment would run per event:
  rebuild the window, repack both views from scratch
  (``BitMatrix.from_bool_columns``), recompute every rule support from
  the dataset, and refit the translator on the whole window.

Every event also verifies equivalence outside the timed region: the
incremental packed columns must be bit-identical to a from-scratch
pack and the tracked supports equal to recomputed ones; at the end, a
windowed refit through the buffer's injected columns must reproduce
the batch fit bit for bit.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_stream.py [--tiny] [--output PATH]

The default run writes ``BENCH_stream.json`` at the repository root.
The repo's tracked number is ``speedup_end_to_end`` (acceptance floor
5x on the append-heavy workload); ``pack_only`` records the honest
packing-only comparison (no refits on either side).  ``--tiny`` runs a
seconds-scale smoke grid (the ``perf_smoke`` marker) that checks
equivalence without asserting a speedup floor.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.beam import TranslatorBeam  # noqa: E402
from repro.core.bitset import BitMatrix  # noqa: E402
from repro.core.translator import TranslatorExact  # noqa: E402
from repro.data.dataset import Side, TwoViewDataset  # noqa: E402
from repro.data.synthetic import SyntheticSpec, generate_planted  # noqa: E402
from repro.stream import (  # noqa: E402
    DriftMonitor,
    StreamBuffer,
    fit_window,
    score_table,
)

FULL_SETTINGS = {
    "window": 32768,
    "batch": 128,
    "events": 12,
    "n_items_per_view": 24,
    "density": 0.12,
    "n_rules": 4,
    "translator": "beam",
    "max_rule_size": 4,
    "seed": 11,
}
TINY_SETTINGS = {
    "window": 128,
    "batch": 32,
    "events": 3,
    "n_items_per_view": 10,
    "density": 0.15,
    "n_rules": 2,
    "translator": "beam",
    "max_rule_size": 3,
    "seed": 11,
}


def make_translator(settings: dict):
    """The refit engine used by both paths (identical configuration)."""
    if settings["translator"] == "exact":
        return TranslatorExact(max_rule_size=settings["max_rule_size"])
    return TranslatorBeam(max_rule_size=settings["max_rule_size"])


def make_stream(settings: dict) -> np.ndarray:
    """A stationary planted stream long enough for warm-up plus events."""
    n_rows = settings["window"] + settings["batch"] * settings["events"]
    n = settings["n_items_per_view"]
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=n_rows,
            n_left=n,
            n_right=n,
            density_left=settings["density"],
            density_right=settings["density"],
            n_rules=settings["n_rules"],
            seed=settings["seed"],
        )
    )
    return dataset


def run_workload(settings: dict) -> dict:
    """Drive both paths over the same sliding stream; verify equivalence."""
    stream = make_stream(settings)
    window, batch = settings["window"], settings["batch"]
    translator = make_translator(settings)

    # Warm-up: both paths start from the same fitted window [0, window).
    buffer = StreamBuffer(
        stream.n_left, stream.n_right, capacity=window + batch
    )
    buffer.append(stream.left[:window], stream.right[:window])
    baseline = fit_window(make_translator(settings), buffer, "warmup")
    table = baseline.table
    trackers = buffer.track_table(table)
    monitor = DriftMonitor(table, seed=settings["seed"])

    incremental_seconds = 0.0
    full_seconds = 0.0
    pack_incremental_seconds = 0.0
    pack_full_seconds = 0.0
    refits = {"incremental": 0, "full": 0}
    all_identical = True

    for event in range(settings["events"]):
        lo = window + event * batch
        batch_left = stream.left[lo : lo + batch]
        batch_right = stream.right[lo : lo + batch]
        window_left = stream.left[lo + batch - window : lo + batch]
        window_right = stream.right[lo + batch - window : lo + batch]
        event_table = table  # what both paths serve during this event

        # Incremental path: buffer update + tracked supports + drift score.
        start = time.perf_counter()
        buffer.append(batch_left, batch_right)
        buffer.evict(len(buffer) - window)
        supports_incremental = [
            (lhs.count, rhs.count) for lhs, rhs in trackers
        ]
        pack_incremental_seconds += time.perf_counter() - start
        window_ds = buffer.window_dataset("bench")
        published_ratio = score_table(window_ds, table)
        report = None
        if published_ratio > baseline.compression_ratio + monitor.min_degradation:
            result = fit_window(translator, buffer, "bench")
            report = monitor.check(window_ds, result)
            if report.drifted:
                refits["incremental"] += 1
                # Model swap: retarget every piece of published-model
                # state (trackers, baseline, monitor) at the new table.
                table = result.table
                baseline = result
                monitor.update_table(table)
                buffer.untrack_all()
                trackers = buffer.track_table(table)
        incremental_seconds += time.perf_counter() - start

        # Full path: rebuild, repack, recompute supports, refit.
        start = time.perf_counter()
        full_ds = TwoViewDataset(window_left, window_right, name="bench-full")
        left_bits = BitMatrix.from_bool_columns(full_ds.left)
        right_bits = BitMatrix.from_bool_columns(full_ds.right)
        supports_full = [
            (
                full_ds.support_count(Side.LEFT, rule.lhs),
                full_ds.support_count(Side.RIGHT, rule.rhs),
            )
            # event_table, not table: the incremental supports above were
            # read before any refit this event could swap the model.
            for rule in event_table
        ]
        pack_full_seconds += time.perf_counter() - start
        full_result = make_translator(settings).fit(full_ds)
        refits["full"] += 1
        full_seconds += time.perf_counter() - start

        # Equivalence (outside the timed regions).
        identical = bool(
            np.array_equal(buffer.bit_matrix(Side.LEFT).words, left_bits.words)
            and np.array_equal(
                buffer.bit_matrix(Side.RIGHT).words, right_bits.words
            )
            and supports_incremental == supports_full
        )
        all_identical = all_identical and identical

    # Windowed refit must be bit-identical to the batch fit on the
    # same window (the incremental packed columns are injected).
    final_incremental = fit_window(make_translator(settings), buffer, "final")
    final_full = make_translator(settings).fit(buffer.window_dataset("final"))
    refit_identical = bool(
        list(final_incremental.table) == list(final_full.table)
        and final_incremental.compression_ratio == final_full.compression_ratio
    )

    return {
        "events": settings["events"],
        "rows_per_event": batch,
        "window": window,
        "incremental_seconds": incremental_seconds,
        "full_seconds": full_seconds,
        "speedup_end_to_end": full_seconds / incremental_seconds,
        "pack_only": {
            "incremental_seconds": pack_incremental_seconds,
            "full_seconds": pack_full_seconds,
            "speedup": pack_full_seconds / pack_incremental_seconds,
        },
        "refits": refits,
        "buffer_bit_identical": all_identical,
        "windowed_refit_bit_identical": refit_identical,
    }


def run_grid(tiny: bool = False) -> dict:
    """Run the benchmark and return the report dictionary."""
    settings = TINY_SETTINGS if tiny else FULL_SETTINGS
    workload = run_workload(settings)
    return {
        "benchmark": "stream: incremental window update vs repack+refit",
        "mode": "tiny" if tiny else "full",
        "settings": settings,
        "workload": workload,
        "all_identical": bool(
            workload["buffer_bit_identical"]
            and workload["windowed_refit_bit_identical"]
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="seconds-scale smoke grid"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_stream.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    report = run_grid(tiny=args.tiny)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    workload = report["workload"]
    print(
        f"window={workload['window']}  batch={workload['rows_per_event']}  "
        f"events={workload['events']}"
    )
    print(
        f"incremental: {workload['incremental_seconds'] * 1000:9.1f} ms  "
        f"({workload['refits']['incremental']} refit(s))"
    )
    print(
        f"full:        {workload['full_seconds'] * 1000:9.1f} ms  "
        f"({workload['refits']['full']} refit(s))"
    )
    print(f"end-to-end speedup: {workload['speedup_end_to_end']:.1f}x")
    pack = workload["pack_only"]
    print(
        f"pack-only:   {pack['incremental_seconds'] * 1000:9.2f} ms vs "
        f"{pack['full_seconds'] * 1000:.2f} ms  ({pack['speedup']:.1f}x)"
    )
    print(
        f"bit-identical: buffer={workload['buffer_bit_identical']}  "
        f"refit={workload['windowed_refit_bit_identical']}"
    )
    print(f"report written to {args.output}")
    if not report["all_identical"]:
        print("ERROR: incremental and batch paths disagreed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
