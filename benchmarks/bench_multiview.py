"""A11 — Extension: multi-view (k > 2) pairwise TRANSLATOR.

The paper's future-work section asks for "cases with more than two
views".  This benchmark validates the pairwise instantiation
(:mod:`repro.multiview`) on a three-view dataset where only one view
pair carries planted cross-view structure: the per-pair compression
ratios must *localise* the structure — the structured pair compresses
clearly, the two structure-free pairs do not.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.eval.tables import format_table
from repro.multiview import MultiViewDataset, MultiViewTranslator

N = 300


def make_three_view() -> MultiViewDataset:
    # Views A and B share planted structure; view C is independent noise.
    structured, __ = generate_planted(
        SyntheticSpec(
            n_transactions=N,
            n_left=12,
            n_right=12,
            density_left=0.12,
            density_right=0.12,
            n_rules=3,
            confidence=(0.9, 1.0),
            seed=13,
        )
    )
    rng = np.random.default_rng(14)
    independent = rng.random((N, 12)) < 0.12
    return MultiViewDataset(
        [structured.left, structured.right, independent],
        view_names=["A", "B", "C"],
        name="three-view",
    )


def run_multiview():
    dataset = make_three_view()
    result = MultiViewTranslator(k=1, minsup=5).fit(dataset)
    rows = []
    for (first, second), pair_result in sorted(result.pair_results.items()):
        rows.append(
            {
                "pair": f"{dataset.view_names[first]}-{dataset.view_names[second]}",
                "|T|": pair_result.n_rules,
                "L%": round(100 * pair_result.compression_ratio, 2),
            }
        )
    rows.append(
        {
            "pair": "aggregate",
            "|T|": result.n_rules,
            "L%": round(100 * result.compression_ratio, 2),
        }
    )
    return rows


def test_multiview_localisation(benchmark, report):
    rows = benchmark.pedantic(run_multiview, rounds=1, iterations=1)
    report(
        "A11 — multi-view pairwise TRANSLATOR localises cross-view structure",
        format_table(rows),
    )
    by_pair = {row["pair"]: float(row["L%"]) for row in rows}
    # The structured A-B pair compresses clearly ...
    assert by_pair["A-B"] < 95.0
    # ... and much better than both structure-free pairs.
    assert by_pair["A-B"] < by_pair["A-C"] - 2.0
    assert by_pair["A-B"] < by_pair["B-C"] - 2.0
