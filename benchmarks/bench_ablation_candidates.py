"""A2 — Ablation: candidate set composition for TRANSLATOR-SELECT.

The paper uses *closed* frequent two-view itemsets as candidates and
remarks that SELECT's compression is "slightly worse than those obtained
by the exact method, because it only considers closed itemsets as
candidates.  This could be addressed by using all itemsets, but this would
lead to much larger candidate sets and hence longer runtimes."

This benchmark quantifies that trade-off on a planted dataset: closed vs
all candidates at several minsup values — candidate count, compression
ratio and runtime.
"""

from __future__ import annotations

from repro.core.translator import TranslatorSelect
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.eval.tables import format_table
from repro.mining.twoview import two_view_candidates

MINSUPS = (20, 10, 5)


def make_data():
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=400,
            n_left=12,
            n_right=12,
            density_left=0.15,
            density_right=0.15,
            n_rules=5,
            seed=33,
        )
    )
    return dataset


def run_ablation():
    dataset = make_data()
    rows = []
    for minsup in MINSUPS:
        for closed in (True, False):
            candidates = two_view_candidates(
                dataset, minsup, closed=closed, max_candidates=500_000
            )
            result = TranslatorSelect(k=1, candidates=candidates).fit(dataset)
            rows.append(
                {
                    "minsup": minsup,
                    "candidates": "closed" if closed else "all",
                    "n_candidates": len(candidates),
                    "|T|": result.n_rules,
                    "L%": round(100 * result.compression_ratio, 2),
                    "runtime_s": round(result.runtime_seconds, 2),
                }
            )
    return rows


def test_ablation_candidates(benchmark, report):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("A2 — candidate set ablation for TRANSLATOR-SELECT(1)", format_table(rows))
    for minsup in MINSUPS:
        closed_row = next(
            row for row in rows if row["minsup"] == minsup and row["candidates"] == "closed"
        )
        all_row = next(
            row for row in rows if row["minsup"] == minsup and row["candidates"] == "all"
        )
        # Closed candidate sets are never larger than all-itemset sets.
        assert closed_row["n_candidates"] <= all_row["n_candidates"]
        # All-itemset candidates compress at least as well (paper's remark),
        # modulo small tie-breaking noise.
        assert float(all_row["L%"]) <= float(closed_row["L%"]) + 1.0
    # Lower minsup -> more candidates (monotone candidate growth).
    closed_counts = [
        row["n_candidates"] for row in rows if row["candidates"] == "closed"
    ]
    assert closed_counts == sorted(closed_counts)
