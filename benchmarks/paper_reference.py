"""Published numbers from the paper, used for paper-vs-measured reports.

Only values printed in the paper's text/tables are recorded.  Table 2's
``|T|`` and ``L%`` columns are complete; the paper's runtimes are C++
wall-clock times and are recorded as strings purely for display.  Table 3
is published as an image whose per-cell values are not in the text; the
qualitative claims the text makes about it are encoded as predicates in
``bench_table3_comparison``.
"""

from __future__ import annotations

# Table 2, top half: minsup = 1 (small datasets).
# dataset -> method -> (|T|, L%, paper runtime as printed)
TABLE2_SMALL: dict[str, dict[str, tuple[int, float, str]]] = {
    "abalone": {
        "exact": (88, 54.81, "3h22m"),
        "select1": (86, 54.86, "27m58s"),
        "select25": (86, 54.95, "10m51s"),
        "greedy": (114, 57.75, "19s"),
    },
    "car": {
        "exact": (12, 94.18, "1m14s"),
        "select1": (9, 94.67, "28s"),
        "select25": (9, 94.67, "20s"),
        "greedy": (12, 95.27, "3s"),
    },
    "chesskrvk": {
        "exact": (320, 94.89, "2d47m"),
        "select1": (311, 94.94, "17h19m"),
        "select25": (315, 94.95, "6h22m"),
        "greedy": (314, 95.60, "3m21s"),
    },
    "nursery": {
        "exact": (28, 98.36, "3h19m"),
        "select1": (27, 98.36, "1h47m"),
        "select25": (27, 98.36, "1h15m"),
        "greedy": (19, 98.83, "3m46s"),
    },
    "tictactoe": {
        "exact": (61, 85.18, "35m8s"),
        "select1": (64, 85.20, "8m16s"),
        "select25": (66, 84.86, "3m31s"),
        "greedy": (73, 90.97, "7s"),
    },
    "wine": {
        "exact": (38, 67.99, "1h22m"),
        "select1": (27, 69.15, "15s"),
        "select25": (30, 69.10, "8s"),
        "greedy": (48, 79.98, "<1s"),
    },
    "yeast": {
        "exact": (49, 81.99, "45m52s"),
        "select1": (32, 82.73, "2m16s"),
        "select25": (32, 82.73, "2m15s"),
        "greedy": (38, 83.00, "4s"),
    },
}

# Table 2, bottom half: tuned minsup (larger datasets); no exact runs.
# dataset -> (paper minsup, method -> (|T|, L%, runtime))
TABLE2_LARGE: dict[str, tuple[int, dict[str, tuple[int, float, str]]]] = {
    "adult": (
        4885,
        {
            "select1": (8, 54.29, "49m48s"),
            "select25": (8, 54.29, "49m14s"),
            "greedy": (19, 55.50, "7m8s"),
        },
    ),
    "cal500": (
        20,
        {
            "select1": (59, 86.45, "36m6s"),
            "select25": (60, 86.48, "13m5s"),
            "greedy": (92, 88.88, "40s"),
        },
    ),
    "crime": (
        200,
        {
            "select1": (144, 87.45, "5h15m"),
            "select25": (146, 87.47, "1h27m"),
            "greedy": (183, 88.51, "2m7s"),
        },
    ),
    "elections": (
        47,
        {
            "select1": (80, 93.28, "35m46s"),
            "select25": (83, 93.27, "12m19s"),
            "greedy": (132, 94.49, "28s"),
        },
    ),
    "emotions": (
        40,
        {
            "select1": (22, 97.35, "20m24s"),
            "select25": (24, 97.34, "14m8s"),
            "greedy": (37, 97.54, "54s"),
        },
    ),
    "house": (
        8,
        {
            "select1": (37, 49.26, "14m31s"),
            "select25": (37, 49.27, "7m49s"),
            "greedy": (50, 71.45, "23s"),
        },
    ),
    "mammals": (
        773,
        {
            "select1": (55, 68.23, "58m21s"),
            "select25": (56, 68.31, "29m33s"),
            "greedy": (39, 85.85, "1m4s"),
        },
    ),
}

# Qualitative claims the paper's text makes about Table 3 / Section 6.3.
TABLE3_CLAIMS = [
    "TRANSLATOR attains the best (lowest) compression ratio L%",
    "MAGNUM OPUS finds more rules than TRANSLATOR with larger |C|%",
    "REREMI rule sets are small, all-bidirectional, with poor L% "
    "(above 100% on several datasets)",
    "KRIMP-as-translation-table compresses extremely badly "
    "(ratios up to 816.34% in the paper)",
    "up to 153,609 raw association rules on House vs at most 311 "
    "TRANSLATOR rules on any dataset",
]
