"""E2 — Table 2 (top half): search strategy comparison, small datasets.

Runs TRANSLATOR-EXACT, TRANSLATOR-SELECT(1), TRANSLATOR-SELECT(25) and
TRANSLATOR-GREEDY on the seven "small" datasets of Table 2 and reports
``|T|``, ``L%`` and runtime next to the paper's published values.

Deviations (documented in DESIGN.md / EXPERIMENTS.md):

* stand-ins are scaled by ``REPRO_BENCH_SCALE`` (with a floor of ~150
  transactions so planted structure survives scaling);
* EXACT runs with an anytime node budget per search — the paper's C++
  implementation spends hours to days on these searches; convergence is
  reported per dataset;
* SELECT uses minsup=1 like the paper where candidate mining stays within
  budget, otherwise the auto-tuned threshold (reported).

Expected shape: EXACT <= SELECT(1) ~= SELECT(25) < GREEDY in compression
(lower is better), GREEDY fastest — matching the paper's reading of
Table 2.
"""

from __future__ import annotations

import pytest

from repro.data.registry import paper_stats
from repro.eval.tables import format_table
from repro.runtime.sweep import SweepTask, run_sweep
from benchmarks.paper_reference import TABLE2_SMALL

DATASETS = sorted(TABLE2_SMALL)
MIN_TRANSACTIONS = 150
# Python-scale envelope for EXACT: the paper's C++ implementation spends
# hours to days per dataset here.  The node budget scales down with the
# dataset size so per-node vector costs stay bounded; the iteration cap
# keeps total bench time in minutes.  Both are reported in the output.
EXACT_NODE_BUDGET = 30_000
EXACT_MAX_ITERATIONS = 40


def effective_scale(name: str, bench_scale: float) -> float:
    stats = paper_stats(name)
    floor = min(1.0, MIN_TRANSACTIONS / stats.n_transactions)
    return max(bench_scale, floor)


def run_dataset(name: str, bench_scale: float) -> list[dict[str, object]]:
    """One Table 2 row group, expressed as a sweep grid over the methods.

    The four method cells are declarative :class:`SweepTask`\\ s run
    through the sweep engine (serially, so per-method timings stay
    clean); ``fallback_auto`` reproduces the paper's auto-minsup retreat
    when minsup=1 candidate mining overflows.
    """
    scale = effective_scale(name, bench_scale)
    paper = TABLE2_SMALL[name]
    # Mirror make_dataset's transaction-count formula instead of
    # materialising the dataset just to size the node budget (the sweep
    # cells build their own copies).
    n_transactions = max(40, int(round(paper_stats(name).n_transactions * scale)))
    node_budget = max(2_000, int(EXACT_NODE_BUDGET * 500 / max(500, n_transactions)))
    # max_rule_size spreads the anytime node budget across the breadth of
    # the search instead of one deep subtree; paper rules rarely exceed 5
    # items.
    method_grid = {
        "exact": ("exact", {
            "max_nodes_per_search": node_budget,
            "max_iterations": EXACT_MAX_ITERATIONS,
            "max_rule_size": 5,
        }),
        "select1": ("select", {"k": 1, "minsup": 1, "max_candidates": 5_000}),
        "select25": ("select", {"k": 25, "minsup": 1, "max_candidates": 5_000}),
        "greedy": ("greedy", {"minsup": 1, "max_candidates": 5_000}),
    }
    tasks = [
        SweepTask(dataset=name, method=method, params=params, scale=scale,
                  fallback_auto=True, tag=key)
        for key, (method, params) in method_grid.items()
    ]
    report = run_sweep(tasks, n_jobs=1)
    rows = []
    for result in report.results:
        key = result["tag"]
        paper_t, paper_l, paper_runtime = paper[key]
        rows.append(
            {
                "dataset": name,
                "method": key,
                "|T|": result["n_rules"],
                "L%": round(100 * float(result["compression_ratio"]), 2),
                "runtime_s": round(float(result["runtime_seconds"]), 2),
                "paper |T|": paper_t,
                "paper L%": paper_l,
                "paper runtime": paper_runtime,
                "notes": result["notes"],
            }
        )
    return rows


@pytest.mark.parametrize("name", DATASETS)
def test_table2_small(benchmark, report, bench_scale, name):
    rows = benchmark.pedantic(run_dataset, args=(name, bench_scale), rounds=1, iterations=1)
    report(
        f"E2 / Table 2 (top) — search strategies on {name} "
        f"(scale={effective_scale(name, bench_scale):.2f})",
        format_table(rows),
    )
    by_method = {row["method"]: row for row in rows}
    # Paper's shape: GREEDY never beats SELECT(1) by a meaningful margin,
    # and the candidate-based methods approximate EXACT closely.
    assert float(by_method["greedy"]["L%"]) >= float(by_method["select1"]["L%"]) - 2.0
    # All methods actually compress structured data (or at worst break even).
    for row in rows:
        assert float(row["L%"]) <= 101.0
