"""E1 — Table 1: dataset properties.

Regenerates the paper's Table 1 on the registry stand-ins: ``|D|``,
``|I_L|``, ``|I_R|``, densities and the uncompressed size ``L(D, ∅)``,
next to the published values.  Stand-ins are generated at full size here
(generation is cheap); their vocabulary sizes and densities must match the
paper by construction, while ``L(D, ∅)`` depends on the exact item
distribution and is expected to land in the same order of magnitude.
"""

from __future__ import annotations

from repro.core.encoding import CodeLengthModel
from repro.data.registry import dataset_names, make_dataset, paper_stats
from repro.eval.tables import format_table


def build_table1() -> list[dict[str, object]]:
    rows = []
    for name in dataset_names():
        stats = paper_stats(name)
        dataset = make_dataset(name, scale=1.0)
        codes = CodeLengthModel(dataset)
        rows.append(
            {
                "dataset": name,
                "|D|": dataset.n_transactions,
                "|I_L|": dataset.n_left,
                "|I_R|": dataset.n_right,
                "d_L": round(dataset.density_left, 3),
                "d_R": round(dataset.density_right, 3),
                "L(D,0)": int(codes.baseline_length()),
                "paper d_L": stats.density_left,
                "paper d_R": stats.density_right,
                "paper L(D,0)": stats.baseline_bits,
            }
        )
    return rows


def test_table1_dataset_stats(benchmark, report):
    rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    report(
        "E1 / Table 1 — dataset properties (stand-ins vs paper)",
        format_table(rows, float_digits=3),
    )
    for row in rows:
        stats = paper_stats(str(row["dataset"]))
        assert row["|D|"] == stats.n_transactions
        assert row["|I_L|"] == stats.n_left
        assert row["|I_R|"] == stats.n_right
        assert abs(float(row["d_L"]) - stats.density_left) < 0.08
        assert abs(float(row["d_R"]) - stats.density_right) < 0.08
        # Same order of magnitude for the uncompressed size.
        measured = float(row["L(D,0)"])
        published = stats.baseline_bits
        assert 0.1 < measured / published < 10.0
