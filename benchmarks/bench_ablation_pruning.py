"""A1 — Ablation: value of the exact search's pruning components.

The paper motivates three ingredients of the exact best-rule search
(Section 5.2): the rule-based upper bound ``rub`` (subtree pruning), the
quick bound ``qub`` (skipping gain evaluations), and the descending-``tub``
item ordering (finding good rules early).  This benchmark runs the first
best-rule search on a planted dataset with each ingredient toggled and
reports nodes visited, evaluations and runtime.

All variants must return the same optimal gain (exactness is unaffected);
full pruning must visit no more nodes than no pruning.
"""

from __future__ import annotations

import time

import pytest

from repro.core.search import ExactRuleSearch
from repro.core.state import CoverState
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.eval.tables import format_table

VARIANTS = {
    "full (rub+qub+order)": dict(use_rub=True, use_qub=True, order_items=True),
    "no rub": dict(use_rub=False, use_qub=True, order_items=True),
    "no qub": dict(use_rub=True, use_qub=False, order_items=True),
    "no ordering": dict(use_rub=True, use_qub=True, order_items=False),
    "no pruning at all": dict(use_rub=False, use_qub=False, order_items=False),
}


def make_state() -> CoverState:
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=150,
            n_left=9,
            n_right=9,
            density_left=0.18,
            density_right=0.18,
            n_rules=4,
            seed=21,
        )
    )
    return CoverState(dataset)


def run_ablation():
    rows = []
    gains = {}
    for label, flags in VARIANTS.items():
        state = make_state()
        start = time.perf_counter()
        __, gain, stats = ExactRuleSearch(state, **flags).find_best_rule()
        elapsed = time.perf_counter() - start
        gains[label] = gain
        rows.append(
            {
                "variant": label,
                "nodes": stats.nodes_visited,
                "pruned (rub)": stats.nodes_pruned_rub,
                "evaluations": stats.evaluations,
                "skipped (qub)": stats.evaluations_skipped_qub,
                "runtime_s": round(elapsed, 3),
                "best gain": round(gain, 2),
            }
        )
    return rows, gains


def test_ablation_pruning(benchmark, report):
    rows, gains = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("A1 — pruning ablation of the exact best-rule search", format_table(rows))
    reference = gains["full (rub+qub+order)"]
    # Exactness: every variant finds the same optimal gain.
    for label, gain in gains.items():
        assert gain == pytest.approx(reference, abs=1e-9), label
    by_variant = {row["variant"]: row for row in rows}
    # rub pruning strictly reduces the nodes explored.
    assert (
        by_variant["full (rub+qub+order)"]["nodes"]
        <= by_variant["no rub"]["nodes"]
    )
    # qub skips gain evaluations.
    assert (
        by_variant["full (rub+qub+order)"]["evaluations"]
        <= by_variant["no qub"]["evaluations"]
    )
    # Full pruning visits no more nodes than no pruning at all.
    assert (
        by_variant["full (rub+qub+order)"]["nodes"]
        <= by_variant["no pruning at all"]["nodes"]
    )
