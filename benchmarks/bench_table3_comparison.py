"""E5 — Table 3: TRANSLATOR vs MAGNUM OPUS vs REREMI vs KRIMP.

The paper's Table 3 compares, per dataset, the number of rules ``|T|``,
their average length ``l``, the relative correction-table size ``|C|%``,
the average maximum confidence ``c+`` and the compression ratio ``L%`` of
the four methods.  Table 3's per-cell numbers are published as an image
(not recoverable from the text), so this benchmark asserts the claims the
paper's text makes about it (see ``paper_reference.TABLE3_CLAIMS``):

* TRANSLATOR produces the most compact-and-complete models — best ``L%``;
* significant rule discovery finds (often many) more rules whose
  correction tables are larger;
* REREMI outputs only bidirectional rules and fails to explain all the
  structure (worse ``L%``, sometimes above 100%);
* KRIMP-as-translation-table compresses badly (the paper reports
  inflation up to 816%).

Additionally reproduces the raw association-rule explosion comparison
(Section 6.3, first paragraph): tuned-threshold association rule mining
yields orders of magnitude more rules than TRANSLATOR.
"""

from __future__ import annotations

import pytest

from repro.baselines.assoc import merge_bidirectional, mine_crossview_rules
from repro.data.registry import make_dataset, paper_stats
from repro.eval.comparison import compare_methods
from repro.eval.metrics import max_confidence
from repro.eval.tables import format_table
from benchmarks.paper_reference import TABLE3_CLAIMS

DATASETS = ["house", "cal500", "wine", "mammals"]
MIN_TRANSACTIONS = 150


def run_comparison(name: str, bench_scale: float):
    stats = paper_stats(name)
    scale = max(bench_scale, min(1.0, MIN_TRANSACTIONS / stats.n_transactions))
    dataset = make_dataset(name, scale=scale)
    minsup = max(3, int(0.02 * dataset.n_transactions))
    return dataset, compare_methods(dataset, minsup=minsup)


@pytest.mark.parametrize("name", DATASETS)
def test_table3_method_comparison(benchmark, report, bench_scale, name):
    dataset, results = benchmark.pedantic(
        run_comparison, args=(name, bench_scale), rounds=1, iterations=1
    )
    rows = [result.as_row() for result in results]
    claims = "\n".join(f"  - {claim}" for claim in TABLE3_CLAIMS)
    report(
        f"E5 / Table 3 — method comparison on {name}",
        format_table(rows) + "\n\npaper claims checked:\n" + claims,
    )
    by_method = {result.method.split(" ")[0]: result for result in results}
    translator = by_method["translator-select(1)"]

    # Claim 1: TRANSLATOR attains the best compression ratio.
    for key, result in by_method.items():
        if key != "translator-select(1)":
            assert translator.compression_ratio <= result.compression_ratio + 0.03, key

    # Claim 2: the significant-rule miner has a larger correction table.
    significant = by_method["significant"]
    assert significant.correction_fraction >= translator.correction_fraction - 0.02

    # Claim 3: REREMI rules are all bidirectional.
    reremi = by_method["redescription"]
    assert all(rule.direction.value == "<->" for rule in reremi.table)
    assert reremi.compression_ratio >= translator.compression_ratio - 0.02

    # Claim 4: KRIMP-as-table compresses (much) worse than TRANSLATOR.
    krimp = by_method["krimp"]
    assert krimp.compression_ratio > translator.compression_ratio


def test_association_rule_explosion(benchmark, report, bench_scale):
    """Section 6.3: tuned association rule mining explodes vs TRANSLATOR."""

    def run():
        dataset, results = run_comparison("house", bench_scale)
        translator = results[0]
        # Tune thresholds from the translation table as the paper does:
        # lowest c+ and |supp| of any rule in the table.
        confidences = [max_confidence(dataset, rule) for rule in translator.table]
        supports = [
            int(dataset.joint_support_mask(rule.lhs, rule.rhs).sum())
            for rule in translator.table
        ]
        minconf = min(confidences) if confidences else 0.5
        minsup = max(1, min(supports)) if supports else 2
        rules = mine_crossview_rules(
            dataset, minsup=minsup, minconf=minconf, max_size=5, max_rules=500_000
        )
        return translator.n_rules, len(merge_bidirectional(rules))

    n_translator, n_assoc = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E5b / Section 6.3 — association rule explosion on house",
        f"translator rules: {n_translator}\n"
        f"association rules at tuned thresholds (<=5 items): {n_assoc}\n"
        f"ratio: {n_assoc / max(1, n_translator):.0f}x "
        "(paper: up to 153,609 rules vs <=311 translator rules)",
    )
    assert n_assoc > 10 * n_translator
