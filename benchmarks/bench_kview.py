"""k-view shared-bitset packing benchmark (``BENCH_kview.json``).

:class:`~repro.multiview.translator.MultiViewTranslator` packs each
view's Boolean matrix into uint64 bitset columns exactly once and shares
the packed columns across all ``k·(k-1)/2`` pair fits.  The baseline it
replaces packed every pair's joint matrix from scratch — on ``k`` views
each view is repacked ``k-1`` times.  This benchmark keeps the
optimisation honest on a ``k >= 4`` dataset:

* **bit-identity** — the shared-pack fit must produce exactly the same
  rule tables and encoded lengths as fresh per-pair fits (this is
  asserted, not sampled);
* **pack speedup** (headline) — wall-clock of packing every view once
  vs packing every pair's joint matrix, interleaved A/B and summarised
  by per-arm minimum so a load spike cannot flatter either side;
* **honesty cells** — end-to-end fit seconds for both modes and the
  fraction of baseline fit time the repacks account for.  Packing is
  milliseconds while the search is seconds, so the end-to-end ratio is
  close to 1.0 by construction; the report says so rather than letting
  the headline overclaim.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kview.py [--tiny] [--output PATH]

The default run writes ``BENCH_kview.json`` at the repository root and
exits 1 if bit-identity fails or the shared fit is slower than the
repack baseline beyond jitter tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.translator import TranslatorSelect  # noqa: E402
from repro.multiview import MultiViewDataset, MultiViewTranslator  # noqa: E402

#: Shared fits may be this much slower than the baseline before the
#: check fails — absorbs scheduler jitter on a loaded box.
JITTER_TOLERANCE = 1.10


def make_kview(n_rows: int, n_views: int, items_per_view: int) -> MultiViewDataset:
    """``k`` views with a common latent factor so every pair has structure."""
    rng = np.random.default_rng(29)
    latent = rng.random(n_rows) < 0.35
    views = []
    for _ in range(n_views):
        base = rng.random((n_rows, items_per_view)) < 0.10
        # The first few items of every view echo the latent factor.
        for column in range(3):
            base[:, column] |= latent & (rng.random(n_rows) < 0.8)
        views.append(base)
    return MultiViewDataset(views, name=f"kview{n_views}")


def fit_shared(dataset: MultiViewDataset, minsup: int):
    return MultiViewTranslator(k=1, minsup=minsup).fit(dataset)


def fit_repack(dataset: MultiViewDataset, minsup: int):
    """Baseline: every pair packs its joint matrix from scratch."""
    results = {}
    for first, second in dataset.view_pairs():
        results[(first, second)] = TranslatorSelect(k=1, minsup=minsup).fit(
            dataset.pair(first, second)
        )
    return results


def check_bit_identity(dataset: MultiViewDataset, minsup: int) -> bool:
    shared = fit_shared(dataset, minsup)
    fresh = fit_repack(dataset, minsup)
    for pair, fresh_result in fresh.items():
        shared_result = shared.pair_results[pair]
        if set(shared_result.table) != set(fresh_result.table):
            return False
        if shared_result.total_bits != fresh_result.total_bits:
            return False
    return True


def time_modes(dataset: MultiViewDataset, minsup: int, rounds: int) -> dict:
    timings: dict[str, list[float]] = {"shared": [], "repack": []}
    for _ in range(rounds):
        for mode in ("repack", "shared"):
            started = time.perf_counter()
            if mode == "shared":
                fit_shared(dataset, minsup)
            else:
                fit_repack(dataset, minsup)
            timings[mode].append(time.perf_counter() - started)
    return {mode: min(values) for mode, values in timings.items()}


def time_pack_only(dataset: MultiViewDataset, rounds: int, reps: int = 20) -> dict:
    """Seconds spent packing per mode (the quantity the sharing removes).

    Each arm repeats ``reps`` times per round — a single pack is
    microseconds-to-milliseconds, below timer resolution on small grids.
    """
    from repro.core.bitset import BitMatrix

    def pack_shared():
        for view in dataset.views:
            BitMatrix.from_bool_columns(view)

    def pack_repack():
        for first, second in dataset.view_pairs():
            joint, __ = dataset.pair(first, second).joined()
            BitMatrix.from_bool_columns(joint)

    timings: dict[str, list[float]] = {"shared": [], "repack": []}
    for _ in range(rounds):
        for mode, run in (("repack", pack_repack), ("shared", pack_shared)):
            started = time.perf_counter()
            for _ in range(reps):
                run()
            timings[mode].append((time.perf_counter() - started) / reps)
    return {mode: min(values) for mode, values in timings.items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--tiny", action="store_true", help="seconds-scale smoke run")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_kview.json",
        help="report path (default: BENCH_kview.json at the repo root)",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        n_rows, n_views, items, minsup, rounds = 2_000, 4, 16, 150, 2
    else:
        n_rows, n_views, items, minsup, rounds = 40_000, 5, 24, 3_000, 3

    dataset = make_kview(n_rows, n_views, items)
    n_pairs = len(dataset.view_pairs())
    print(
        f"# {dataset.name}: {n_rows} rows, {n_views} views x {items} items, "
        f"{n_pairs} pairs, minsup={minsup}"
    )

    identical = check_bit_identity(dataset, minsup)
    print(f"# bit-identity vs fresh per-pair fits: {identical}")

    fit_seconds = time_modes(dataset, minsup, rounds)
    pack_seconds = time_pack_only(dataset, rounds)
    pack_speedup = pack_seconds["repack"] / pack_seconds["shared"]
    fit_speedup = fit_seconds["repack"] / fit_seconds["shared"]
    pack_fraction = pack_seconds["repack"] / fit_seconds["repack"]
    print(
        f"# packing: shared {1000 * pack_seconds['shared']:.3f}ms "
        f"({n_views} view packs) vs repack "
        f"{1000 * pack_seconds['repack']:.3f}ms ({n_pairs} joint packs) "
        f"-> pack speedup {pack_speedup:.2f}x"
    )
    print(
        f"# end-to-end fit: shared {fit_seconds['shared']:.3f}s vs repack "
        f"{fit_seconds['repack']:.3f}s ({fit_speedup:.2f}x); repacking is "
        f"{100 * pack_fraction:.2f}% of baseline fit time"
    )

    report = {
        "benchmark": "kview-shared-bitsets",
        "dataset": {
            "n_rows": n_rows,
            "n_views": n_views,
            "items_per_view": items,
            "n_pairs": n_pairs,
            "minsup": minsup,
        },
        "tiny": args.tiny,
        "bit_identical": identical,
        "pack_seconds": pack_seconds,
        "pack_speedup": round(pack_speedup, 4),
        "fit_seconds": fit_seconds,
        "fit_speedup": round(fit_speedup, 4),
        "honesty": {
            "packs_shared": n_views,
            "packs_repack": n_pairs,
            "pack_fraction_of_baseline_fit": round(pack_fraction, 4),
            "note": "pack_speedup is the stage the sharing removes; "
            "end-to-end fit_speedup is bounded by that stage's share of "
            "fit time (search/selection work is identical in both modes)",
        },
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"# report written to {args.output}")

    if not identical:
        print("FAIL: shared-bitset fit is not bit-identical", file=sys.stderr)
        return 1
    if pack_seconds["shared"] > pack_seconds["repack"]:
        print("FAIL: shared packing slower than per-pair repacks", file=sys.stderr)
        return 1
    if fit_seconds["shared"] > fit_seconds["repack"] * JITTER_TOLERANCE:
        print("FAIL: shared fit slower than baseline beyond jitter", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
