"""E6 — Fig. 3: visual comparison of rule sets on CAL500 and House.

The paper draws each method's rule set as a tripartite item-rule-item
graph.  This benchmark rebuilds those graphs for TRANSLATOR-SELECT(1), the
significant-rule miner and the redescription miner, writes DOT renderings
next to the benchmark output, and checks the structural observations the
paper makes from the picture:

* MAGNUM OPUS "returns more rules involving fewer items" than TRANSLATOR;
* REREMI rules "involve a less diverse set of items and all rules are
  exclusively bidirectional";
* TRANSLATOR "returns bidirectional as well as unidirectional rules"
  with a mixture of items.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.baselines.convert import rules_to_translation_table
from repro.baselines.redescription import ReremiMiner
from repro.baselines.significant import SignificantRuleMiner
from repro.core.translator import TranslatorSelect
from repro.data.registry import make_dataset, paper_stats
from repro.eval.tables import format_table
from repro.eval.visualize import graph_statistics, rule_graph, to_dot

DATASETS = ["cal500", "house"]
MIN_TRANSACTIONS = 150


def build_graphs(name: str, bench_scale: float):
    stats = paper_stats(name)
    scale = max(bench_scale, min(1.0, MIN_TRANSACTIONS / stats.n_transactions))
    dataset = make_dataset(name, scale=scale)
    minsup = max(3, int(0.02 * dataset.n_transactions))
    tables = {
        "translator-select(1)": TranslatorSelect(
            k=1, minsup=minsup, max_candidates=5_000
        ).fit(dataset).table,
        "significant": rules_to_translation_table(
            SignificantRuleMiner(minsup=minsup).mine(dataset)
        ),
        "redescription": rules_to_translation_table(
            ReremiMiner(min_support=minsup).mine(dataset)
        ),
    }
    graphs = {method: rule_graph(dataset, table) for method, table in tables.items()}
    return dataset, tables, graphs


@pytest.mark.parametrize("name", DATASETS)
def test_fig3_rule_graphs(benchmark, report, bench_scale, name, tmp_path_factory):
    dataset, tables, graphs = benchmark.pedantic(
        build_graphs, args=(name, bench_scale), rounds=1, iterations=1
    )
    rows = []
    out_dir = tmp_path_factory.mktemp(f"fig3_{name}")
    for method, graph in graphs.items():
        stats = {"method": method}
        stats.update(graph_statistics(graph))
        rows.append(stats)
        dot_path = Path(out_dir) / f"{method.replace('(', '_').replace(')', '')}.dot"
        dot_path.write_text(to_dot(graph), encoding="utf-8")
    report(
        f"E6 / Fig. 3 — rule graphs on {name} (DOT files in {out_dir})",
        format_table(
            rows,
            columns=[
                "method",
                "n_rules",
                "n_left_items_used",
                "n_right_items_used",
                "n_edges",
                "bidirectional_share",
                "average_items_per_rule",
            ],
        ),
    )
    by_method = {row["method"]: row for row in rows}
    translator = by_method["translator-select(1)"]
    significant = by_method["significant"]
    redescription = by_method["redescription"]

    # REREMI: exclusively bidirectional rules.
    assert redescription["bidirectional_share"] == pytest.approx(1.0)
    # TRANSLATOR: a genuine mixture of directions.
    assert 0.0 < translator["bidirectional_share"] < 1.0
    # Significant-rule miner: more rules involving fewer items per rule.
    if significant["n_rules"] >= translator["n_rules"]:
        assert (
            significant["average_items_per_rule"]
            <= translator["average_items_per_rule"] + 0.5
        )
