"""A8 — Extension: bootstrap stability of translation tables.

The paper selects a single MDL-optimal table per dataset; this extension
quantifies how reproducible that selection is under resampling.  On a
planted dataset, the planted cross-view rules should be recovered in
nearly every bootstrap resample (high per-rule recovery), while a pure
noise dataset of the same shape should show churn: few rules, and those
found should not recur.
"""

from __future__ import annotations

import numpy as np

from repro.core.translator import TranslatorSelect
from repro.data.dataset import TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.eval.stability import bootstrap_stability
from repro.eval.tables import format_table

N_RESAMPLES = 10


def make_planted() -> TwoViewDataset:
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=300,
            n_left=12,
            n_right=12,
            density_left=0.12,
            density_right=0.12,
            n_rules=3,
            confidence=(0.95, 1.0),
            seed=21,
        )
    )
    return dataset


def make_noise(like: TwoViewDataset) -> TwoViewDataset:
    rng = np.random.default_rng(22)
    return TwoViewDataset(
        rng.random(like.left.shape) < like.density_left,
        rng.random(like.right.shape) < like.density_right,
        name="noise",
    )


def run_stability():
    planted = make_planted()
    noise = make_noise(planted)
    rows = []
    reports = {}
    for dataset in (planted, noise):
        report = bootstrap_stability(
            dataset, TranslatorSelect(k=1), n_resamples=N_RESAMPLES, rng=0
        )
        reports[dataset.name] = report
        rows.append(
            {
                "dataset": dataset.name,
                "ref rules": len(report.reference_rules),
                "mean exact Jaccard": round(report.mean_exact_jaccard, 3),
                "mean soft score": round(report.mean_soft_score, 3),
                "stable rules (soft>=0.75)": len(report.stable_rules(0.75)),
                "|T| spread": str(report.rule_count_spread),
            }
        )
    return rows, reports


def test_stability(benchmark, report):
    rows, reports = benchmark.pedantic(run_stability, rounds=1, iterations=1)
    planted_report = reports[[row["dataset"] for row in rows][0]]
    body = format_table(rows) + "\n\nplanted per-rule recovery:\n" + "\n".join(
        "  " + recovery.render() for recovery in planted_report.rule_recoveries
    )
    report("A8 — bootstrap stability of translation tables", body)
    planted_row, noise_row = rows
    # Planted structure must be more stable than noise on the soft score.
    assert planted_row["mean soft score"] >= noise_row["mean soft score"]
    # At least one planted association survives essentially every resample.
    assert planted_row["stable rules (soft>=0.75)"] >= 1
