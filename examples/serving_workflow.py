"""Publish a fitted model and serve predictions from it.

The full serving loop of ``repro.serve`` in one script: fit a
translation table, publish it to a model registry as a hash-verified
versioned artifact, and answer prediction traffic through the async
service — demonstrating micro-batching (concurrent single-row requests
coalesce into one compiled-predictor call), the LRU response cache, and
a real HTTP round trip against the asyncio server.

Run with::

    python examples/serving_workflow.py
"""

from __future__ import annotations

import asyncio
import json
import tempfile

import numpy as np

from repro import TranslatorSelect
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.serve import (
    ModelArtifact,
    ModelRegistry,
    PredictionServer,
    PredictionService,
)


async def demo(registry: ModelRegistry, dataset) -> None:
    service = PredictionService(registry, max_delay_ms=10.0)

    # Sixteen concurrent single-row requests: the micro-batcher coalesces
    # them into one compiled-predictor call.
    rows = [sorted(np.flatnonzero(row).tolist()) for row in dataset.left[:16]]
    responses = await asyncio.gather(
        *(
            service.predict({"model": "products", "target": "R", "rows": [row]})
            for row in rows
        )
    )
    print(f"16 concurrent requests -> {service.batcher.batches} predictor batch(es)")
    print(f"first prediction: right items {responses[0]['predictions'][0]}")

    # An identical repeat is served from the LRU response cache.
    repeat = await service.predict(
        {"model": "products", "target": "R", "rows": [rows[0]]}
    )
    print(f"repeated request cached: {repeat['cached']}")

    # The same service behind a real socket.
    server = PredictionServer(service, port=0)
    await server.start()
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    body = json.dumps(
        {"model": "products", "target": "R", "rows": rows[:2]}
    ).encode()
    writer.write(
        b"POST /predict HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
        % (len(body), body)
    )
    await writer.drain()
    raw = await reader.read()
    status_line = raw.partition(b"\r\n")[0].decode()
    answered = json.loads(raw.partition(b"\r\n\r\n")[2])
    print(f"HTTP {status_line.split(' ', 1)[1]}: "
          f"{len(answered['predictions'])} row(s) predicted over the wire")
    writer.close()
    await server.stop()


def main() -> None:
    dataset, __ = generate_planted(
        SyntheticSpec(
            n_transactions=500,
            n_left=14,
            n_right=14,
            density_left=0.2,
            density_right=0.2,
            n_rules=4,
            seed=21,
        )
    )
    result = TranslatorSelect(k=1).fit(dataset)
    print(f"fitted {result.n_rules} rules "
          f"(L% {100 * result.compression_ratio:.1f})")

    with tempfile.TemporaryDirectory(prefix="repro-serving-") as root:
        registry = ModelRegistry(root)
        artifact = ModelArtifact.from_result(
            "products", dataset, result, {"method": "select", "k": 1}
        )
        published = registry.publish(artifact)
        print(f"published {published.name} v{published.version} "
              f"(hash {published.content_hash[:12]}...)")
        asyncio.run(demo(registry, dataset))


if __name__ == "__main__":
    main()
