"""Identifying sub-populations with compression-based clustering.

The paper notes (Section 2.3) that compression-based models can serve
"other tasks, such as clustering".  This example shows the k-tables
scheme on a customer scenario: two customer segments respond to the same
product attributes with *different* behaviours — the same antecedent
implies different consequents per segment, so one global translation
table must pay error corrections everywhere, while one table per segment
models each cleanly.

The script fits k = 1..3 and lets the MDL score pick k, then shows each
component's own translation table.

Run with::

    python examples/clustering_components.py
"""

from __future__ import annotations

import numpy as np

from repro import TranslatorSelect, TwoViewDataset
from repro.core.clustering import cluster_two_view, select_k

LEFT_ITEMS = [
    "premium", "discounted", "new-release", "bundle",
    "electronics", "apparel", "grocery", "seasonal",
]
RIGHT_ITEMS = [
    "repeat-buys", "returns", "5-star", "1-star",
    "churn", "referral", "support-tickets", "newsletter",
]


def make_segment(consequents: list[int], n: int, seed: int) -> np.ndarray:
    """One customer segment: 'premium'+'new-release' implies ``consequents``."""
    rng = np.random.default_rng(seed)
    left = rng.random((n, len(LEFT_ITEMS))) < 0.05
    right = rng.random((n, len(RIGHT_ITEMS))) < 0.05
    fire = rng.random(n) < 0.9
    left[fire, 0] = True      # premium
    left[fire, 2] = True      # new-release
    for column in consequents:
        right[fire, column] = True
    return np.concatenate([left, right], axis=1)


def main() -> None:
    n = 200
    # Segment A: premium new releases drive loyalty (repeat buys, 5-star,
    # referrals).  Segment B: the same products drive disappointment
    # (returns, 1-star, churn).
    loyal = make_segment([0, 2, 5], n, seed=1)
    disappointed = make_segment([1, 3, 4], n, seed=2)
    merged = np.concatenate([loyal, disappointed])
    dataset = TwoViewDataset(
        merged[:, : len(LEFT_ITEMS)],
        merged[:, len(LEFT_ITEMS):],
        left_names=LEFT_ITEMS,
        right_names=RIGHT_ITEMS,
        name="customers",
    )
    print(dataset)
    print()

    factory = lambda: TranslatorSelect(k=1)  # noqa: E731

    # MDL model selection over k: the two-part score (member bits + table
    # bits + parameter and label costs) is comparable across k.
    print("MDL totals per k:")
    for k in (1, 2, 3):
        result = cluster_two_view(dataset, k=k, translator_factory=factory,
                                  n_restarts=2, rng=0)
        print(f"  k={k}: {result.total_bits:9.1f} bits  sizes={result.sizes()}")
    best = select_k(dataset, translator_factory=factory, max_k=3, n_restarts=2, rng=0)
    print(f"selected k = {best.k}")
    print()

    truth = np.array([0] * n + [1] * n)
    same_pred = best.labels[:, None] == best.labels[None, :]
    same_true = truth[:, None] == truth[None, :]
    mask = ~np.eye(2 * n, dtype=bool)
    agreement = float((same_pred == same_true)[mask].mean())
    print(f"pairwise agreement with the generating segments: {agreement:.2f}")
    print()

    for component in range(best.k):
        size = int((best.labels == component).sum())
        print(f"component {component} ({size} customers):")
        print(best.tables[component].render(dataset, limit=5))
        print()


if __name__ == "__main__":
    main()
