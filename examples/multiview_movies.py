"""Multi-view association discovery (beyond two views).

The paper's introduction motivates movies with "properties like genres
and actors on one hand and collectively obtained tags on the other"; its
future-work section asks for the extension to more than two views.  This
example builds a three-view movie dataset — content attributes, audience
tags, and viewing-context signals — and fits the pairwise multi-view
TRANSLATOR, showing which *pairs* of views actually share structure.

Run with::

    python examples/multiview_movies.py
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.eval.tables import format_table
from repro.multiview import MultiViewDataset, MultiViewTranslator

CONTENT = [
    "genre=action", "genre=comedy", "genre=drama", "genre=scifi",
    "star-cast", "sequel", "big-budget", "award-winner",
]
TAGS = [
    "tag=explosions", "tag=funny", "tag=tear-jerker", "tag=mind-bending",
    "tag=date-night", "tag=family", "tag=cult-classic", "tag=slow-burn",
]
CONTEXT = [
    "watched=cinema", "watched=home", "watched=late-night",
    "watched=weekend", "watched=with-kids", "watched=alone",
]


def main() -> None:
    # Views 0 and 1 (content/tags) share planted structure; the context
    # view is generated independently.
    base, __ = generate_planted(
        SyntheticSpec(
            n_transactions=600,
            n_left=len(CONTENT),
            n_right=len(TAGS),
            density_left=0.18,
            density_right=0.18,
            n_rules=4,
            confidence=(0.9, 1.0),
            activation=(0.15, 0.3),
            seed=8,
        )
    )
    rng = np.random.default_rng(9)
    context = rng.random((600, len(CONTEXT))) < 0.2
    movies = MultiViewDataset(
        [base.left, base.right, context],
        view_names=["content", "tags", "context"],
        item_names=[CONTENT, TAGS, CONTEXT],
        name="movies",
    )
    print(movies)
    print()

    result = MultiViewTranslator(k=1, minsup=10).fit(movies)
    rows = []
    for (first, second), pair_result in result.pair_results.items():
        rows.append(
            {
                "pair": f"{movies.view_names[first]} ~ {movies.view_names[second]}",
                "|T|": pair_result.n_rules,
                "L%": f"{100 * pair_result.compression_ratio:.1f}",
            }
        )
    print(format_table(rows, title="Pairwise translation tables"))
    print()

    content_tags = result.pair_results[(0, 1)]
    print("Top content ~ tags rules:")
    pair_data = movies.pair(0, 1)
    for record in content_tags.history[:4]:
        print(f"  {record.rule.render(pair_data)}")
    print()
    print(
        "The content~tags pair compresses well (planted structure found);\n"
        "pairs involving the independent context view stay near 100%,\n"
        "so the model correctly localises where cross-view structure lives."
    )


if __name__ == "__main__":
    main()
