"""Using a translation table as a cross-view predictor.

Translation tables are generative mappings between views, so beyond
*describing* a dataset they can *predict*: given the left view of a new
object, TRANSLATE produces an estimate of its right view.  This example
fits a table on a training split of a products-like dataset and measures
prediction quality on held-out data — and contrasts it with the same
pipeline on structureless noise.

Run with::

    python examples/prediction.py
"""

from __future__ import annotations

from repro import TranslatorSelect
from repro.core.predict import holdout_evaluation
from repro.data.synthetic import SyntheticSpec, generate_planted, random_dataset


def main() -> None:
    # Products described by two views: catalogue attributes on the left,
    # aggregated customer behaviour on the right (the paper's motivating
    # product scenario), with planted attribute->behaviour dependencies.
    products, __ = generate_planted(
        SyntheticSpec(
            n_transactions=800,
            n_left=15,
            n_right=15,
            density_left=0.12,
            density_right=0.12,
            n_rules=6,
            confidence=(0.9, 1.0),
            activation=(0.15, 0.3),
            seed=42,
        )
    )
    noise = random_dataset(800, 15, 15, 0.12, 0.12, seed=43)

    translator = TranslatorSelect(k=1, minsup=8)
    for label, dataset in (("products (planted)", products), ("pure noise", noise)):
        scores = holdout_evaluation(dataset, translator, train_fraction=0.7, rng=0)
        print(f"{label}:")
        for direction, score in scores.items():
            print(
                f"  {direction:>14}: precision {score.precision:.2f}, "
                f"recall {score.recall:.2f}, F1 {score.f1:.2f}"
            )
        print()
    print(
        "Structured data is predictable across views; on independent\n"
        "views the MDL selection keeps the table small and the predictor\n"
        "abstains — low recall instead of confident noise."
    )


if __name__ == "__main__":
    main()
