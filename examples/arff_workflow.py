"""Ingesting an external ARFF dataset end to end.

The paper's repository datasets (UCI, MULAN) ship as ARFF files.  This
example shows the full ingestion pipeline on a self-contained medical
survey scenario (the paper's demographics-vs-conditions motivation):

1. write an ARFF document the way a repository would distribute it,
2. parse it with :func:`repro.data.arff.load_arff`,
3. Booleanise and split it into two views — demographics left,
   conditions right — with the paper's pre-processing (5 equal-height
   bins for numerics, one item per attribute-value),
4. induce a translation table and inspect the cross-view rules.

Run with::

    python examples/arff_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import TranslatorSelect
from repro.data.arff import arff_to_two_view, load_arff

ARFF_DOCUMENT = """\
% Synthetic patient survey: demographics and lifestyle vs. conditions.
@relation patients

@attribute age numeric
@attribute sector {office, outdoors, industrial, healthcare}
@attribute smoker {0, 1}
@attribute exercise {none, weekly, daily}
@attribute hypertension {0, 1}
@attribute back_pain {0, 1}
@attribute respiratory {0, 1}

@data
"""


def synthesise_rows(n_rows: int = 400, seed: int = 0) -> str:
    """Generate survey rows with plausible cross-view dependencies."""
    rng = np.random.default_rng(seed)
    sectors = ("office", "outdoors", "industrial", "healthcare")
    exercise_levels = ("none", "weekly", "daily")
    lines = []
    for __ in range(n_rows):
        age = int(rng.integers(20, 80))
        sector = sectors[rng.integers(len(sectors))]
        smoker = int(rng.random() < 0.3)
        exercise = exercise_levels[rng.integers(len(exercise_levels))]
        # Cross-view structure: conditions depend on the demographics.
        hypertension = int(rng.random() < (0.15 + 0.4 * (age > 60) + 0.2 * smoker))
        back_pain = int(
            rng.random() < (0.1 + 0.45 * (sector == "industrial") + 0.2 * (exercise == "none"))
        )
        respiratory = int(rng.random() < (0.05 + 0.55 * smoker))
        lines.append(
            f"{age}, {sector}, {smoker}, {exercise}, "
            f"{hypertension}, {back_pain}, {respiratory}"
        )
    return "\n".join(lines) + "\n"


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "patients.arff"
        path.write_text(ARFF_DOCUMENT + synthesise_rows(), encoding="utf-8")

        # 1-2. Parse the repository file.
        relation = load_arff(path)
        print(f"parsed {relation.name!r}: {relation.n_rows} rows, "
              f"{relation.n_attributes} attributes")

        # 3. Pre-process into a natural two-view dataset: demographics and
        # lifestyle on the left, medical conditions on the right.
        dataset = arff_to_two_view(
            relation,
            left_attributes=["age", "sector", "smoker", "exercise"],
            right_attributes=["hypertension", "back_pain", "respiratory"],
        )
        print(dataset)
        print(f"left items:  {dataset.left_names}")
        print(f"right items: {dataset.right_names}")
        print()

        # 4. Induce a translation table and read off the associations.
        result = TranslatorSelect(k=1).fit(dataset)
        print(f"translation table ({result.n_rules} rules, "
              f"L% = {result.compression_ratio:.1%}):")
        print(result.table.render(dataset))


if __name__ == "__main__":
    main()
