"""Quickstart: translation tables on a toy two-view dataset.

Builds the kind of small dataset shown in the paper's Fig. 1, induces a
translation table with the parameter-free TRANSLATOR-EXACT algorithm, and
demonstrates the two core guarantees:

* rules translate one view into (an approximation of) the other, and
* together with the correction tables the translation is *lossless*.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Side, TranslatorExact, TwoViewDataset
from repro.core.translate import corrections, reconstruct, translate_transaction


def main() -> None:
    # A bag of music tracks described by audio features (left view) and
    # listener feedback (right view).
    data = TwoViewDataset.from_transactions(
        [
            ({"rock", "guitar"}, {"loud", "energetic"}),
            ({"rock", "guitar", "fast"}, {"loud", "energetic"}),
            ({"rock", "guitar"}, {"loud", "energetic", "catchy"}),
            ({"jazz", "piano"}, {"calm"}),
            ({"jazz", "piano", "slow"}, {"calm", "romantic"}),
            ({"jazz"}, {"calm"}),
            ({"rock", "piano"}, {"loud"}),
            ({"pop", "fast"}, {"catchy"}),
            ({"pop"}, {"catchy"}),
            ({"jazz", "piano"}, {"calm", "romantic"}),
        ],
        name="tracks",
    )
    print(data)
    print()

    # TRANSLATOR-EXACT: parameter-free, provably adds the best rule each
    # iteration (paper, Algorithm 2).
    result = TranslatorExact().fit(data)
    print(f"Induced translation table ({result.n_rules} rules):")
    print(result.table.render(data))
    print()
    print(f"compression ratio L% = {result.compression_ratio:.1%}")
    print(f"correction fraction |C|% = {result.correction_fraction:.1%}")
    print()

    # Translate a new left-view transaction to the right view.
    rock_track = {
        data.item_index(Side.LEFT, "rock"),
        data.item_index(Side.LEFT, "guitar"),
    }
    translated = translate_transaction(rock_track, result.table, Side.RIGHT)
    names = sorted(data.right_names[item] for item in translated)
    print(f"TRANSLATE({{rock, guitar}}) -> {{{', '.join(names)}}}")

    # Losslessness: translation + correction table reproduces the data.
    tables = corrections(data, result.table)
    reconstructed = reconstruct(
        data, result.table, Side.RIGHT, correction=tables.correction_right
    )
    assert np.array_equal(reconstructed, data.right)
    print("losslessness check: reconstruction == original right view  [OK]")


if __name__ == "__main__":
    main()
