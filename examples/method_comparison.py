"""Full method comparison on one dataset (the paper's Table 3, in small).

Runs TRANSLATOR-SELECT(1), significant rule discovery (the MAGNUM OPUS
stand-in), redescription mining (the REREMI stand-in) and KRIMP on the
House stand-in, scores everything with the paper's MDL criterion, and
prints the Table 3 row block.

Run with::

    python examples/method_comparison.py
"""

from __future__ import annotations

from repro import make_dataset
from repro.eval.comparison import compare_methods
from repro.eval.tables import format_table
from repro.eval.visualize import graph_statistics, rule_graph


def main() -> None:
    data = make_dataset("house", scale=0.5)
    print(data)
    print()

    results = compare_methods(data, minsup=5)
    print(
        format_table(
            [result.as_row() for result in results],
            title=f"Method comparison on {data.name} (Table 3 style)",
        )
    )
    print()

    print("Rule-graph statistics (Fig. 3 style):")
    rows = []
    for result in results:
        stats = graph_statistics(rule_graph(data, result.table))
        stats_row = {"method": result.method}
        stats_row.update(stats)
        rows.append(stats_row)
    print(
        format_table(
            rows,
            columns=[
                "method",
                "n_rules",
                "n_left_items_used",
                "n_right_items_used",
                "bidirectional_share",
                "average_items_per_rule",
            ],
        )
    )
    print()
    print(
        "Expected shape (paper, Section 6.3): TRANSLATOR yields the\n"
        "smallest rule set with the best compression; significant-rule\n"
        "mining yields many short high-confidence rules with larger\n"
        "correction tables; redescriptions are all bidirectional but\n"
        "incomplete; KRIMP's itemsets do not capture cross-view structure\n"
        "and inflate the encoding when forced into a translation table."
    )


if __name__ == "__main__":
    main()
