"""Candidate profiles vs. political views (the paper's Elections scenario).

Demonstrates the *full pre-processing pipeline* the paper applies to the
2011 Finnish parliamentary election data: tabular candidate data (party,
age, education) on one side and multiple-choice questionnaire answers on
the other, Booleanised with one-hot encoding, frequent items dropped
(items in more than half of the transactions "would result in many rules
of little interest"), then mined with TRANSLATOR-SELECT(1).

The underlying table is synthesised with planted dependencies between
parties and answers, standing in for the real (offline-unavailable)
www.vaalikone.fi data.

Run with::

    python examples/elections.py
"""

from __future__ import annotations

import numpy as np

from repro import TranslatorSelect
from repro.data.preprocessing import frame_to_two_view
from repro.eval.metrics import max_confidence

PARTIES = ["Greens", "Conservatives", "SocialDemocrats", "Centre", "Change2011"]
EDUCATION = ["basic", "vocational", "bachelor", "master"]
QUESTIONS = {
    "Q_defense_spending": ["increase", "keep", "decrease"],
    "Q_nuclear_energy": ["more", "same", "phase-out"],
    "Q_development_aid": ["raise", "keep", "cut"],
    "Q_immigration_policy": ["looser", "current", "tighter"],
    "Q_income_taxes": ["raise", "keep", "cut"],
}

# Planted party-line tendencies: party -> {question: preferred answer}.
PARTY_LINES = {
    "Greens": {
        "Q_nuclear_energy": "phase-out",
        "Q_development_aid": "raise",
        "Q_defense_spending": "decrease",
    },
    "Conservatives": {
        "Q_income_taxes": "cut",
        "Q_nuclear_energy": "more",
    },
    "Change2011": {
        "Q_immigration_policy": "tighter",
    },
    "SocialDemocrats": {
        "Q_income_taxes": "raise",
        "Q_development_aid": "keep",
    },
    "Centre": {
        "Q_defense_spending": "keep",
    },
}
PARTY_DISCIPLINE = 0.85  # probability a candidate follows the party line


def synthesise_candidates(n: int, seed: int = 0):
    """Generate a tabular candidate dataset with party-driven answers."""
    rng = np.random.default_rng(seed)
    profile = {
        "party": [],
        "age": [],
        "education": [],
    }
    answers: dict[str, list[str]] = {question: [] for question in QUESTIONS}
    for __ in range(n):
        party = PARTIES[int(rng.integers(len(PARTIES)))]
        profile["party"].append(party)
        profile["age"].append(float(rng.integers(22, 70)))
        profile["education"].append(EDUCATION[int(rng.integers(len(EDUCATION)))])
        line = PARTY_LINES[party]
        for question, choices in QUESTIONS.items():
            if question in line and rng.random() < PARTY_DISCIPLINE:
                answers[question].append(line[question])
            else:
                answers[question].append(choices[int(rng.integers(len(choices)))])
    return profile, answers


def main() -> None:
    profile, answers = synthesise_candidates(1200, seed=3)
    data = frame_to_two_view(
        profile, answers, n_bins=5, max_frequency=0.5, name="elections-demo"
    )
    print(data)
    print()

    result = TranslatorSelect(k=1, minsup=20).fit(data)
    print(
        f"translator-select(1): {result.n_rules} rules, "
        f"L% = {result.compression_ratio:.1%}"
    )
    print()
    print("Party-to-views associations discovered (Fig. 7 style):")
    for record in result.history[:10]:
        rule = record.rule
        confidence = max_confidence(data, rule)
        print(f"  [{confidence:.2f}] {rule.render(data)}")
    print()
    print(
        "Note how unidirectional rules appear where an opinion is shared\n"
        "beyond one party (the paper's Change 2011 example): the rule\n"
        "'party -> opinion' holds, but 'opinion -> party' does not."
    )


if __name__ == "__main__":
    main()
