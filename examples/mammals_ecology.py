"""Species co-habitation patterns (the paper's Mammals scenario).

The Mammals dataset records presence of European mammal species in grid
cells; split into two views, cross-view rules describe which species
combinations inhabit the same areas.  The paper's Fig. 5 compares the top
rules of TRANSLATOR against redescription mining (REREMI) — this example
reproduces that comparison on the registry stand-in.

Run with::

    python examples/mammals_ecology.py
"""

from __future__ import annotations

from repro import TranslatorSelect, make_dataset
from repro.baselines.redescription import ReremiMiner
from repro.eval.metrics import max_confidence, rule_set_summary
from repro.eval.tables import format_table


def main() -> None:
    data = make_dataset("mammals", scale=0.3)
    print(data)
    print()

    # TRANSLATOR: a global, non-redundant model of the cross-view structure.
    translator = TranslatorSelect(k=1).fit(data)
    print("TRANSLATOR-SELECT(1) — top co-habitation rules:")
    for record in translator.history[:3]:
        rule = record.rule
        print(f"  [c+ {max_confidence(data, rule):.2f}] {rule.render(data)}")
    print()

    # REREMI: individually accurate bidirectional redescriptions.
    miner = ReremiMiner(min_support=10, max_results=20)
    redescriptions = miner.mine(data)
    print("REREMI-style redescriptions — top by Jaccard:")
    for redescription in redescriptions[:3]:
        rule = redescription.to_translation_rule()
        print(
            f"  [J {redescription.jaccard:.2f}, p {redescription.p_value:.1e}] "
            f"{rule.render(data)}"
        )
    print()

    # Quantitative comparison under the paper's MDL criterion.
    rows = [
        rule_set_summary(data, translator.table, method="translator-select(1)"),
        rule_set_summary(data, miner.to_rules(redescriptions), method="reremi-like"),
    ]
    for row in rows:
        row["L%"] = f"{100 * row.pop('compression_ratio'):.1f}"
        row["|C|%"] = f"{100 * row.pop('correction_fraction'):.1f}"
    print(
        format_table(
            rows,
            columns=["method", "n_rules", "average_rule_length", "|C|%", "L%"],
            title="MDL comparison (Table 3 style)",
        )
    )
    print()
    print(
        "TRANSLATOR covers the cross-view structure globally (lower L%),\n"
        "while redescriptions are individually accurate but redundant —\n"
        "exactly the contrast reported in the paper."
    )


if __name__ == "__main__":
    main()
