"""How robust are the discovered associations?  Bootstrap stability.

MDL model selection returns one translation table, but an analyst acting
on its rules should know which of them are robust properties of the
domain and which are artefacts of the particular sample.  This example
fits TRANSLATOR-SELECT(1) on a movies-like dataset (properties vs. tags,
the paper's motivating movie scenario), then refits on bootstrap
resamples and reports:

* rule-set level agreement (exact Jaccard and soft matching), and
* per-rule recovery rates separating robust from unstable rules,

and contrasts the numbers against pure noise of the same shape, where
every "discovery" churns.

Run with::

    python examples/stability_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import TranslatorSelect, TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted
from repro.eval.stability import bootstrap_stability


def main() -> None:
    # Movies: genres/actors on the left, collectively obtained tags on
    # the right, with planted genre->tag dependencies.
    movies, planted = generate_planted(
        SyntheticSpec(
            n_transactions=500,
            n_left=14,
            n_right=14,
            density_left=0.12,
            density_right=0.12,
            n_rules=3,
            confidence=(0.9, 1.0),
            seed=17,
        )
    )
    print(f"dataset: {movies}")
    print(f"planted rules: {len(planted)}")
    print()

    translator = TranslatorSelect(k=1)
    report = bootstrap_stability(movies, translator, n_resamples=12, rng=0)
    print("=== planted structure ===")
    print(report.render(movies))
    print()
    robust = report.stable_rules(threshold=0.75)
    print(f"{len(robust)} of {len(report.reference_rules)} rules are robust "
          f"(soft recovery >= 75%)")
    print()

    # The same analysis on structure-free noise of identical shape.
    rng = np.random.default_rng(1)
    noise = TwoViewDataset(
        rng.random(movies.left.shape) < movies.density_left,
        rng.random(movies.right.shape) < movies.density_right,
        name="noise",
    )
    noise_report = bootstrap_stability(noise, translator, n_resamples=12, rng=2)
    print("=== structure-free noise ===")
    print(f"rules found on full noise data: {len(noise_report.reference_rules)}")
    print(f"mean exact rule-set Jaccard:    {noise_report.mean_exact_jaccard:.3f}")
    print(f"mean soft match score:          {noise_report.mean_soft_score:.3f}")
    print(f"robust rules:                   "
          f"{len(noise_report.stable_rules(threshold=0.75))}")
    print()
    print("Reading: high recovery on the planted data pins down genuine")
    print("cross-view structure; the churn on noise shows stability analysis")
    print("correctly flags unstable discoveries.")


if __name__ == "__main__":
    main()
