"""Music features vs. evoked emotions (the paper's CAL500 scenario).

The paper's running example: a set of music tracks with audio-side
attributes (genres, instruments, vocals — the right view) and human
annotations (emotions, usages, song qualities — the left view).  The task:
which emotions are evoked by which types of music?

This example uses the CAL500 stand-in from the dataset registry, induces a
translation table with TRANSLATOR-SELECT(1) and then, like the paper's
Fig. 6, inspects all rules mentioning one focus item (``Genre:Rock``).

Run with::

    python examples/music_emotions.py
"""

from __future__ import annotations

from repro import Side, TranslatorSelect, make_dataset
from repro.eval.metrics import max_confidence


def main() -> None:
    data = make_dataset("cal500", scale=0.5)
    print(data)
    print()

    result = TranslatorSelect(k=1).fit(data)
    print(
        f"translator-select(1): {result.n_rules} rules, "
        f"L% = {result.compression_ratio:.1%}, "
        f"runtime = {result.runtime_seconds:.1f}s"
    )
    print()

    print("Top rules by compression gain:")
    for record in result.history[:8]:
        confidence = max_confidence(data, record.rule)
        print(f"  [gain {record.gain:7.1f}, c+ {confidence:.2f}]  "
              f"{record.rule.render(data)}")
    print()

    # Fig. 6 style: every rule involving the focus item 'Genre:Rock'.
    focus = "Genre:Rock"
    focus_index = data.item_index(Side.RIGHT, focus)
    focus_rules = result.table.rules_with_item(focus_index, left=False)
    print(f"Rules mentioning {focus!r} ({len(focus_rules)}):")
    if not focus_rules:
        print("  (none in this synthetic stand-in — planted structure is random)")
    for rule in focus_rules:
        print(f"  {rule.render(data)}   [c+ = {max_confidence(data, rule):.2f}]")


if __name__ == "__main__":
    main()
