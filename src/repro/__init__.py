"""repro — a reproduction of *Association Discovery in Two-View Data*.

Translation tables, MDL-based model selection and the TRANSLATOR
algorithms of van Leeuwen & Galbrun (IEEE TKDE 27(12), 2015), plus the
baselines the paper compares against (cross-view association rules,
significant rule discovery, redescription mining, KRIMP), a parallel
experiment runtime (:mod:`repro.runtime`) for sharded sweeps with
result caching, a model-serving subsystem (:mod:`repro.serve`) with a
compiled bitset predictor, versioned artifacts and an async
micro-batching prediction server, a streaming subsystem
(:mod:`repro.stream`) that ingests live rows into an incrementally
packed window buffer, detects drift and hot-swaps refitted models into
the running server, a resilience toolkit (:mod:`repro.resilience`) with
retry/circuit-breaker policies, programmable fault injection,
supervised restarts and crash-safe window checkpoints, a corpus-scale
discovery layer (:mod:`repro.corpus`) with an out-of-core packed column
store, sound sketch-based candidate pruning and anytime budgeted search
with reported gap bounds, an optional native fused-popcount backend
(:mod:`repro.native`, compiled on demand with the system C compiler and
bit-identical to the numpy paths it accelerates), and a benchmark
harness regenerating every table and figure of the evaluation section.

Quickstart::

    from repro import TwoViewDataset, TranslatorSelect

    data = TwoViewDataset.from_transactions(
        [({"rock"}, {"loud"}), ({"rock", "fast"}, {"loud", "energy"})])
    result = TranslatorSelect(k=1).fit(data)
    print(result.table.render(data))
    print(f"compression: {result.compression_ratio:.1%}")

See ``README.md`` and ``docs/`` for the full tour (architecture, paper
mapping, benchmarks, the parallel runtime).
"""

from repro.data import (
    PAPER_DATASETS,
    ItemSchema,
    Side,
    SyntheticSpec,
    TwoViewDataset,
    ViewSchema,
    dataset_names,
    generate_planted,
    load_dataset,
    make_dataset,
    save_dataset,
)
from repro.core import (
    BitMatrix,
    CodeLengthModel,
    TranslatorBeam,
    CorrectionTables,
    CoverState,
    Direction,
    ExactRuleSearch,
    SearchCache,
    TranslationRule,
    TranslationTable,
    TranslatorExact,
    TranslatorGreedy,
    TranslatorResult,
    TranslatorSelect,
    corrections,
    reconstruct,
    translate_transaction,
    translate_view,
)

__version__ = "1.9.0"

from repro.multiview import MultiViewDataset, MultiViewTranslator
from repro.runtime import (
    ParallelExecutor,
    ResultCache,
    SweepReport,
    SweepTask,
    expand_grid,
    run_sweep,
)
from repro.serve import (
    CompiledPredictor,
    ModelArtifact,
    ModelRegistry,
    PredictionServer,
    PredictionService,
)
from repro.stream import (
    DriftMonitor,
    MaintenanceLoop,
    RefitPolicy,
    StreamBuffer,
)

__all__ = [
    "PAPER_DATASETS",
    "ItemSchema",
    "MultiViewDataset",
    "MultiViewTranslator",
    "Side",
    "SyntheticSpec",
    "TwoViewDataset",
    "ViewSchema",
    "dataset_names",
    "generate_planted",
    "load_dataset",
    "make_dataset",
    "save_dataset",
    "BitMatrix",
    "CodeLengthModel",
    "CorrectionTables",
    "CoverState",
    "Direction",
    "ExactRuleSearch",
    "SearchCache",
    "TranslationRule",
    "TranslationTable",
    "TranslatorBeam",
    "TranslatorExact",
    "TranslatorGreedy",
    "TranslatorResult",
    "TranslatorSelect",
    "CompiledPredictor",
    "DriftMonitor",
    "MaintenanceLoop",
    "ModelArtifact",
    "ModelRegistry",
    "ParallelExecutor",
    "PredictionServer",
    "PredictionService",
    "RefitPolicy",
    "ResultCache",
    "StreamBuffer",
    "SweepReport",
    "SweepTask",
    "expand_grid",
    "run_sweep",
    "corrections",
    "reconstruct",
    "translate_transaction",
    "translate_view",
    "__version__",
]
