"""Command-line interface.

Subcommands mirroring the library's main entry points::

    repro-translator stats [dataset ...]          Table 1 statistics
    repro-translator fit DATASET [options]        induce a translation table
    repro-translator fit-multiview DATASET [opts] pairwise k-view translation
    repro-translator compare DATASET [options]    Table 3 comparison
    repro-translator trace DATASET [options]      Fig. 2 construction trace
    repro-translator predict DATASET [options]    held-out prediction
    repro-translator randomize DATASET [options]  swap-randomization test
    repro-translator describe DATASET [options]   full model report
    repro-translator stability DATASET [options]  bootstrap stability
    repro-translator encoding DATASET [options]   refined-encoding check
    repro-translator cluster DATASET [options]    k-tables clustering
    repro-translator convert SRC DST              .2v <-> ARFF conversion
    repro-translator sweep DATASET... [options]   parallel experiment grids
    repro-translator publish DATASET [options]    fit + publish a model artifact
    repro-translator serve [options]              async prediction server
    repro-translator predict-batch [options]      offline batched prediction
    repro-translator stream [options]             streaming model maintenance
    repro-translator trace-dump PATH [options]    render request-trace spans

``DATASET`` is either a registry name (``house``, ``cal500``, ...) or a
path to a ``.2v`` file.  Also runnable as ``python -m repro``.

``sweep`` shards a ``datasets x methods x params x seeds`` grid across
workers (:mod:`repro.runtime`) with an optional content-hashed result
cache, e.g.::

    repro-translator sweep house tictactoe --method select --method greedy \
        --param minsup=2,5 --seeds 0,1 --n-jobs 4 --cache-dir .repro-cache

The fit-family commands accept ``--n-jobs`` for intra-fit parallelism
(sharded exact search, parallel beam expansion); results are identical
to ``--n-jobs 1`` by construction.

The serving commands (:mod:`repro.serve`) work against a model
registry directory: ``publish`` fits (or takes ``--table``) and writes
a new immutable version, ``serve`` exposes ``/predict`` with
micro-batching, ``predict-batch`` answers a file of requests offline::

    repro-translator publish car --name car-select --registry ./registry
    repro-translator serve --registry ./registry --port 8100
    repro-translator predict-batch --registry ./registry --model car-select \
        --target R --input rows.json

``stream`` (:mod:`repro.stream`) tails a row source (JSONL or packed
binary frames), maintains a sliding/tumbling window incrementally,
refits when drift is detected, and publishes fresh versions into the
registry — a running ``serve`` process hot-swaps them via the
``latest`` pointer without a restart::

    repro-translator stream rows.jsonl --registry ./registry --name live \
        --vocab-from car --window 512 --check-every 128
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.data.arff import arff_to_two_view, load_arff, save_arff, two_view_to_arff
from repro.data.dataset import TwoViewDataset
from repro.data.io import load_dataset, save_dataset
from repro.data.registry import dataset_names, make_dataset, paper_stats
from repro.core.encoding import CodeLengthModel
from repro.core.predict import holdout_evaluation, predict_view, prediction_scores
from repro.core.table import TranslationTable
from repro.core.clustering import cluster_two_view
from repro.core.pruning import prune_table
from repro.core.refined import refined_lengths
from repro.core.beam import TranslatorBeam
from repro.core.translator import TranslatorExact, TranslatorGreedy, TranslatorSelect
from repro.eval.comparison import compare_methods
from repro.eval.randomization import randomization_test
from repro.eval.report import describe_result
from repro.eval.stability import bootstrap_stability
from repro.eval.tables import format_table
from repro.eval.trace import format_trace

__all__ = ["main", "build_parser"]


def _resolve_dataset(
    spec: str,
    scale: float | None,
    discretize: str = "mdl",
    n_bins: int = 5,
) -> TwoViewDataset:
    if Path(spec).exists():
        return load_dataset(spec)
    return make_dataset(spec, scale=scale, discretize=discretize, n_bins=n_bins)


def _dataset_from_args(spec: str, args: argparse.Namespace) -> TwoViewDataset:
    """Resolve a dataset spec honouring the ``--discretize``/``--n-bins``
    options (used by the mixed-type registry datasets; Boolean datasets
    ignore them)."""
    return _resolve_dataset(
        spec,
        args.scale,
        discretize=getattr(args, "discretize", "mdl"),
        n_bins=getattr(args, "n_bins", 5),
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    names = args.datasets or dataset_names()
    rows = []
    for name in names:
        dataset = _dataset_from_args(name, args)
        codes = CodeLengthModel(dataset)
        row = dataset.summary()
        row["L(D,empty)"] = round(codes.baseline_length(), 0)
        if name in dataset_names():
            stats = paper_stats(name)
            row["paper_n"] = stats.n_transactions
            row["paper_L(D,empty)"] = stats.baseline_bits
        rows.append(row)
    print(format_table(rows, float_digits=3, title="Dataset statistics (Table 1)"))
    return 0


def _make_translator(args: argparse.Namespace):
    kernel = getattr(args, "kernel", "auto")
    backend = getattr(args, "backend", "auto")
    n_jobs = getattr(args, "n_jobs", 1)
    max_nodes = getattr(args, "max_nodes", None)
    time_budget = getattr(args, "time_budget", None)
    if args.method != "exact" and (max_nodes is not None or time_budget is not None):
        raise SystemExit(
            "--max-nodes/--time-budget are anytime budgets of the exact "
            "search; use --method exact"
        )
    if args.method == "exact":
        return TranslatorExact(
            max_iterations=args.max_iterations,
            max_rule_size=args.max_rule_size,
            max_nodes_per_search=max_nodes,
            kernel=kernel,
            backend=backend,
            n_jobs=n_jobs,
            time_budget_per_search=time_budget,
        )
    if args.method == "select":
        return TranslatorSelect(
            k=args.k,
            minsup=args.minsup,
            max_iterations=args.max_iterations,
            kernel=kernel,
        )
    if args.method == "greedy":
        return TranslatorGreedy(minsup=args.minsup, kernel=kernel)
    if args.method == "beam":
        return TranslatorBeam(
            max_iterations=args.max_iterations,
            max_rule_size=args.max_rule_size or 6,
            kernel=kernel,
            n_jobs=n_jobs,
        )
    raise ValueError(f"unknown method {args.method!r}")


def _coerce(value: str):
    """Best-effort int/float/str coercion for --param values."""
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    if value.lower() in ("none", "null"):
        return None
    if value.lower() in ("true", "false"):
        return value.lower() == "true"
    return value


def _parse_param_grid(entries: list[str]) -> dict[str, list[object]]:
    """Parse repeated ``--param name=v1,v2`` options into a grid mapping."""
    grid: dict[str, list[object]] = {}
    for entry in entries:
        name, separator, values = entry.partition("=")
        if not separator or not name or not values:
            raise SystemExit(f"--param expects NAME=V1[,V2,...], got {entry!r}")
        grid[name] = [_coerce(value) for value in values.split(",")]
    return grid


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runtime import expand_grid, run_sweep

    grid = expand_grid(
        datasets=args.datasets,
        methods=args.method or ["select"],
        params=_parse_param_grid(args.param or []),
        seeds=[
            None if seed.lower() in ("none", "default") else int(seed)
            for seed in args.seeds.split(",")
        ],
        scale=args.scale,
        fallback_auto=args.fallback_auto,
    )
    report = run_sweep(
        grid,
        n_jobs=args.n_jobs,
        backend=args.backend,
        cache_dir=args.cache_dir,
    )
    columns = [
        "dataset", "method", "params", "seed", "n_rules", "compression_ratio",
        "correction_fraction", "runtime_seconds", "cached", "notes",
    ]
    rows = []
    for row in report.results:
        cells = {key: row.get(key, "") for key in columns}
        cells["params"] = ",".join(
            f"{name}={value}" for name, value in (row.get("params") or {}).items()
        )
        rows.append(cells)
    print(
        format_table(
            rows,
            columns=columns,
            float_digits=4,
            title=f"sweep: {len(grid)} task(s), n_jobs={report.n_jobs} "
            f"({report.backend}), {report.elapsed_seconds:.2f}s, "
            f"cache {report.cache_hits} hit(s) / {report.cache_misses} miss(es)",
        )
    )
    if args.output:
        payload = {
            "tasks": [task.payload() for task in report.tasks],
            "results": report.results,
            "elapsed_seconds": report.elapsed_seconds,
            "n_jobs": report.n_jobs,
            "backend": report.backend,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
        }
        args.output.write_text(
            json.dumps(payload, indent=2, default=str) + "\n", encoding="utf-8"
        )
        print(f"# report written to {args.output}")
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    from repro.serve import ModelArtifact, ModelRegistry

    dataset = _dataset_from_args(args.dataset, args)
    if args.table is not None:
        table = TranslationTable.load(args.table)

        class _Loaded:
            def summary(self):
                return {"source": str(args.table), "n_rules": len(table)}

        result = _Loaded()
        result.table = table
        fit_params = {"source": "table-file", "path": str(args.table)}
        default_name = f"{dataset.name}-table"
    else:
        translator = _make_translator(args)
        result = translator.fit(dataset)
        fit_params = {
            "method": args.method,
            "minsup": args.minsup,
            "k": args.k,
            "max_iterations": args.max_iterations,
            "max_rule_size": args.max_rule_size,
        }
        default_name = f"{dataset.name}-{args.method}"
    name = args.name or default_name
    artifact = ModelArtifact.from_result(name, dataset, result, fit_params)
    registry = ModelRegistry(args.registry)
    published = registry.publish(artifact, sidecar=not args.no_sidecar)
    print(f"# published {published.name} v{published.version} "
          f"({len(published.table)} rules) to {args.registry}")
    print(f"# content hash: {published.content_hash}")
    sidecar_path = registry.sidecar_path(published.name, published.version)
    if sidecar_path.exists():
        print(f"# mmap sidecar: {sidecar_path} ({sidecar_path.stat().st_size} bytes)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import obs as _obs
    from repro.serve import ModelRegistry, PredictionServer, PredictionService

    registry = ModelRegistry(args.registry)
    models = registry.models()
    print(f"# serving {len(models)} model(s) {models} from {args.registry}")
    tracer = None
    if args.trace_dir:
        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        role = "router" if args.workers > 1 else "server"
        exporter = _obs.JsonlSpanExporter(trace_dir / f"spans-{role}.jsonl")
        tracer = _obs.Tracer(exporter)
        print(f"# tracing spans to {trace_dir} (header: {_obs.TRACE_HEADER})")
    if args.metrics:
        _obs.instrument(tracer=tracer)
        print("# engine instrumentation enabled (scrape GET /metrics)")
    if args.workers > 1:
        from repro.serve.router import ReplicaRouter, process_replica_factory

        factory = process_replica_factory(
            str(args.registry),
            service_config={
                "max_batch": args.max_batch,
                "max_delay_ms": args.max_delay_ms,
                "cache_size": args.cache_size,
                "engine": args.engine,
                "backend": args.backend,
            },
            server_config={
                "read_timeout": args.read_timeout,
                "drain_timeout": args.drain_timeout,
            },
            obs_config={
                "instrument": bool(args.metrics),
                "trace_dir": str(args.trace_dir) if args.trace_dir else None,
            },
        )
        router = ReplicaRouter(
            factory,
            workers=args.workers,
            registry=registry,
            host=args.host,
            port=args.port,
            probe_interval=args.probe_interval,
            read_timeout=args.read_timeout,
            tracer=tracer,
        )
        print(
            f"# router http://{args.host}:{args.port} over {args.workers} "
            f"worker process(es)  "
            f"(/healthz, /readyz, /statz, /metrics, /models, /predict)"
        )
        router.run()
        return 0
    service = PredictionService(
        registry,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        cache_size=args.cache_size,
        engine=args.engine,
        backend=args.backend,
        tracer=tracer,
    )
    server = PredictionServer(
        service,
        host=args.host,
        port=args.port,
        read_timeout=args.read_timeout,
        drain_timeout=args.drain_timeout,
    )
    print(
        f"# http://{args.host}:{args.port}  "
        f"(/healthz, /readyz, /metrics, /models, /predict)"
    )
    server.run()
    return 0


def _cmd_trace_dump(args: argparse.Namespace) -> int:
    from repro.obs.trace import build_span_tree, read_spans, span_files

    path = Path(args.path)
    if path.is_dir():
        files: list = []
        for base in sorted(path.glob("spans-*.jsonl")):
            files.extend(span_files(str(base)))
    else:
        files = span_files(str(path)) if path.exists() else []
    if not files:
        print(f"# no span files under {path}", file=sys.stderr)
        return 1
    spans: list[dict] = []
    for file in files:
        spans.extend(read_spans(file))
    if args.trace:
        spans = [span for span in spans if span.get("trace_id") == args.trace]
    if args.json:
        print(json.dumps(spans, indent=2, sort_keys=True))
        return 0
    trees = build_span_tree(spans)
    print(f"# {len(spans)} span(s) in {len(trees)} trace(s) "
          f"from {len(files)} file(s)")
    for trace_id in sorted(trees):
        records = trees[trace_id]
        children: dict[object, list[dict]] = {}
        ids = {record.get("span_id") for record in records}
        for record in records:
            parent = record.get("parent_id")
            # Orphans (parent exported elsewhere or lost) print as roots.
            children.setdefault(parent if parent in ids else None, []).append(record)
        print(f"trace {trace_id}")
        stack = [(span, 1) for span in reversed(children.get(None, []))]
        while stack:
            span, depth = stack.pop()
            start, end = span.get("start_time"), span.get("end_time")
            timing = (
                f"{(end - start) * 1000.0:.3f}ms"
                if isinstance(start, (int, float)) and isinstance(end, (int, float))
                else "?"
            )
            attrs = span.get("attributes") or {}
            extra = "".join(f" {key}={attrs[key]}" for key in sorted(attrs))
            print(f"{'  ' * depth}{span['name']}  [{timing}]"
                  f"  span={span['span_id']}{extra}")
            stack.extend(
                (child, depth + 1)
                for child in reversed(children.get(span.get("span_id"), []))
            )
    return 0


def _cmd_predict_batch(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ModelRegistry, PredictionService

    registry = ModelRegistry(args.registry)
    service = PredictionService(
        registry,
        max_delay_ms=0.0,
        cache_size=0,
        engine=args.engine,
        backend=args.backend,
    )
    rows = json.loads(Path(args.input).read_text(encoding="utf-8"))
    request = {
        "model": args.model,
        "version": args.version,
        "target": args.target,
        "rows": rows,
    }
    response = asyncio.run(service.predict(request))
    payload = json.dumps(response, indent=2) + "\n"
    if args.output:
        args.output.write_text(payload, encoding="utf-8")
        print(f"# {len(rows)} row(s) predicted with {args.model} "
              f"v{response['version']}; written to {args.output}")
    else:
        print(payload, end="")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.beam import TranslatorBeam
    from repro.serve import ModelRegistry
    from repro.stream import (
        DriftMonitor,
        JsonlSource,
        MaintenanceLoop,
        PackedSource,
        RefitPolicy,
        StreamBuffer,
    )

    if args.vocab_from is not None:
        vocab = _dataset_from_args(args.vocab_from, args)
        n_left, n_right = vocab.n_left, vocab.n_right
        left_names, right_names = vocab.left_names, vocab.right_names
    elif args.n_left is not None and args.n_right is not None:
        n_left, n_right = args.n_left, args.n_right
        left_names = right_names = None
    else:
        print(
            "stream requires --vocab-from DATASET or both --n-left and --n-right",
            file=sys.stderr,
        )
        return 2
    if args.method == "beam":
        translator = TranslatorBeam(
            max_rule_size=args.max_rule_size or 6, n_jobs=args.n_jobs
        )
    else:
        translator = TranslatorExact(
            max_rule_size=args.max_rule_size,
            backend=args.backend,
            n_jobs=args.n_jobs,
        )
    source_path = Path(args.source)
    if source_path.suffix in (".2vp", ".bin", ".packed") and args.follow:
        print(
            "--follow is only supported for JSONL sources "
            "(packed files are read once)",
            file=sys.stderr,
        )
        return 2
    registry = ModelRegistry(args.registry)

    # Sources, buffers and loops are built per supervised attempt: a
    # crashed loop must restart with a fresh source iterator and an
    # empty buffer restored from its checkpoint, not the half-dead
    # originals.
    def build_loop() -> MaintenanceLoop:
        if source_path.suffix in (".2vp", ".bin", ".packed"):
            source = PackedSource(source_path, max_rows=args.max_rows)
        else:
            source = JsonlSource(
                source_path,
                follow=args.follow,
                max_rows=args.max_rows,
                strict=args.strict_source,
            )
        buffer = StreamBuffer(
            n_left,
            n_right,
            left_names=left_names,
            right_names=right_names,
            capacity=args.window,
            backend=args.backend,
        )
        return MaintenanceLoop(
            source,
            buffer,
            registry,
            args.name,
            translator,
            policy=RefitPolicy(
                window=args.window,
                policy=args.policy,
                check_every=args.check_every,
                min_rows=args.min_rows,
                always_publish=args.always_publish,
            ),
            monitor_factory=lambda table: DriftMonitor(
                table,
                min_degradation=args.min_degradation,
                significance=args.significance,
                n_permutations=args.permutations,
                seed=args.seed,
            ),
            checkpoint_dir=args.checkpoint_dir,
        )

    print(
        f"# streaming {args.source} into model {args.name!r} "
        f"({args.policy} window of {args.window}, registry {args.registry})"
    )
    loops: list[MaintenanceLoop] = []

    def attempt_run(attempt: int):
        loop = build_loop()
        loops.append(loop)
        return loop.run()

    if args.max_restarts > 0:
        from repro.resilience import Supervisor

        supervisor = Supervisor(attempt_run, max_restarts=args.max_restarts)
        asyncio.run(supervisor.run())
        for event in supervisor.events:
            print(
                f"# restart {event.attempt}/{args.max_restarts} after "
                f"{event.error} (backoff {event.delay:.2f}s)"
            )
    else:
        loops.append(build_loop())
        asyncio.run(loops[-1].run())
    loop = loops[-1]
    if loop.checkpoint_recovery_error:
        print(f"# checkpoint ignored: {loop.checkpoint_recovery_error}")
    if loop.resumed_rows:
        print(f"# resumed from checkpoint at row {loop.resumed_rows}")
    malformed = getattr(loop.source, "malformed_rows", 0)
    if malformed:
        print(f"# {malformed} malformed source line(s) skipped")
    published = [event for event in loop.events if event.published]
    for event in loop.events:
        state = (
            f"published v{event.published_version}"
            if event.published
            else "no drift"
        )
        detail = ""
        if event.report is not None:
            detail = (
                f"  L%={100 * event.report.published_ratio:.2f} vs "
                f"refit {100 * event.report.refit_ratio:.2f}  "
                f"p={event.report.p_value:.3f}"
                + (f"  [{event.report.reason}]" if event.report.reason else "")
            )
        print(
            f"# rows={event.rows_seen:>6}  window={event.window_rows:>5}  "
            f"{state}{detail}"
        )
    print(
        f"# {loop.rows_seen} row(s) consumed, {len(loop.events)} check(s), "
        f"{len(published)} version(s) published; latest = "
        f"{loop.published_version}"
    )
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    translator = _make_translator(args)
    if args.store is not None:
        if args.dataset is not None:
            raise SystemExit("pass either a dataset or --store, not both")
        if args.method != "exact":
            raise SystemExit("--store fitting requires --method exact")
        from repro.corpus import ColumnStore

        with ColumnStore(args.store) as store:
            result = translator.fit(store=store)
        dataset = result.state.dataset
        print(f"# loaded store {args.store} "
              f"({store.n_transactions} rows, {store.n_blocks} block(s))")
    elif args.dataset is not None:
        dataset = _dataset_from_args(args.dataset, args)
        result = translator.fit(dataset)
    else:
        raise SystemExit("fit needs a dataset argument or --store")
    print(f"# {result.method} on {dataset.name}")
    print(
        f"# |T|={result.n_rules}  L%={100 * result.compression_ratio:.2f}  "
        f"|C|%={100 * result.correction_fraction:.2f}  "
        f"runtime={result.runtime_seconds:.2f}s"
    )
    if getattr(args, "max_nodes", None) is not None or getattr(
        args, "time_budget", None
    ) is not None:
        achieved = sum(record.gain for record in result.history)
        print(
            f"# anytime: achieved gain {achieved:.2f} bits, "
            f"gap bound {result.gap_bound:.2f} bits "
            f"({'complete' if result.converged else 'budget-interrupted'})"
        )
    table = result.table
    if args.prune:
        pruned = prune_table(dataset, table)
        table = pruned.table
        print(
            f"# pruned {len(pruned.removed)} rule(s), "
            f"saving {pruned.improvement_bits:.1f} bits"
        )
    print(table.render(dataset, limit=args.limit))
    if args.output:
        table.save(args.output)
        print(f"# table written to {args.output}")
    return 0


def _resolve_multiview(spec: str, args: argparse.Namespace):
    """Build a ``k``-view dataset from a registry name or ``.2v`` path.

    ``--views 2`` keeps the dataset's own two views; for ``k > 2`` the
    joined item matrix is re-partitioned with the greedy density-balanced
    :func:`~repro.data.preprocessing.split_views` (schema-carrying
    datasets keep all bins of one source attribute in the same view).
    """
    from repro.data.preprocessing import split_views
    from repro.data.schema import ViewSchema
    from repro.multiview.dataset import MultiViewDataset

    dataset = _dataset_from_args(spec, args)
    n_views = args.views
    if n_views == 2:
        return MultiViewDataset(
            [dataset.left, dataset.right],
            view_names=["left", "right"],
            item_names=[list(dataset.left_names), list(dataset.right_names)],
            name=dataset.name,
            schemas=[dataset.left_schema, dataset.right_schema],
        )
    joint, names = dataset.joined()
    schema = None
    if dataset.left_schema is not None and dataset.right_schema is not None:
        schema = ViewSchema(list(dataset.left_schema) + list(dataset.right_schema))
    origins = [item.source for item in schema] if schema is not None else None
    parts = split_views(joint, names, origins, rng=args.seed, n_views=n_views)
    return MultiViewDataset(
        [joint[:, columns] for columns in parts],
        item_names=[[names[column] for column in columns] for columns in parts],
        name=f"{dataset.name}[k={n_views}]",
        schemas=(
            [schema.subset(list(columns)) for columns in parts]
            if schema is not None
            else None
        ),
    )


def _cmd_fit_multiview(args: argparse.Namespace) -> int:
    from repro.multiview.translator import MultiViewTranslator

    if args.method not in ("select", "exact"):
        raise SystemExit(
            "fit-multiview supports --method select or exact "
            "(the pairwise decomposition has no greedy/beam variant)"
        )
    dataset = _resolve_multiview(args.dataset, args)
    translator = MultiViewTranslator(
        k=args.k,
        minsup=args.minsup,
        method=args.method,
        conditional=args.conditional,
        max_iterations=args.max_iterations,
        max_rule_size=args.max_rule_size,
        kernel=getattr(args, "kernel", "auto"),
    )
    result = translator.fit(dataset)
    print(
        f"# multiview {result.method} on {dataset.name} "
        f"({dataset.n_views} views, {len(result.pair_results)} pair(s)"
        f"{', conditional' if result.conditional else ''})"
    )
    print(
        f"# |T|={result.n_rules}  L%={100 * result.compression_ratio:.2f}  "
        f"runtime={result.runtime_seconds:.2f}s"
    )
    for (first, second), pair_result in result.pair_results.items():
        pair_name = (
            f"{dataset.view_names[first]}~{dataset.view_names[second]}"
        )
        rows = result.pair_rows.get((first, second), dataset.n_transactions)
        print(
            f"\n## pair {pair_name}: |T|={pair_result.n_rules}  "
            f"L%={100 * pair_result.compression_ratio:.2f}  rows={rows}"
        )
        print(pair_result.table.render(pair_result.state.dataset, limit=args.limit))
    if args.output:
        summary = result.summary()
        summary["per_pair"] = {
            f"{first}~{second}": cells
            for (first, second), cells in summary["per_pair"].items()
        }
        args.output.write_text(
            json.dumps(summary, indent=2, default=str) + "\n", encoding="utf-8"
        )
        print(f"# summary written to {args.output}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.corpus import ColumnStore, ingest_dataset

    dataset = _dataset_from_args(args.dataset, args)
    digest = ingest_dataset(
        dataset,
        args.output,
        chunk_rows=args.chunk_rows,
        block_words=args.block_words,
        sample_size=args.sample_rows,
        n_hashes=args.minhash_hashes,
        seed=args.seed,
    )
    size = args.output.stat().st_size
    with ColumnStore(args.output) as store:
        print(f"# ingested {dataset.name} -> {args.output} ({size} bytes)")
        print(
            f"# {store.n_transactions} rows x "
            f"({store.n_left}+{store.n_right}) items in {store.n_blocks} "
            f"block(s) of {store.rows_per_block} rows; quant_bits="
            f"{store.quant_bits}"
        )
        print(f"# header digest: {digest}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.data.dataset import Side

    dataset = _dataset_from_args(args.dataset, args)
    if args.table is not None:
        # Score a saved/published table on a held-out split directly,
        # skipping the (potentially expensive) refit.
        table = TranslationTable.load(args.table)
        __, test = dataset.split(args.train_fraction, rng=args.seed)
        scores = {
            "left_to_right": prediction_scores(
                predict_view(test.left, table, Side.RIGHT, dataset.n_right),
                test.right,
                Side.RIGHT,
            ),
            "right_to_left": prediction_scores(
                predict_view(test.right, table, Side.LEFT, dataset.n_left),
                test.left,
                Side.LEFT,
            ),
        }
        print(f"# prediction on {dataset.name} with saved table "
              f"{args.table} ({len(table)} rules)")
    else:
        translator = _make_translator(args)
        scores = holdout_evaluation(
            dataset, translator, train_fraction=args.train_fraction, rng=args.seed
        )
        print(f"# held-out prediction on {dataset.name} "
              f"(train fraction {args.train_fraction})")
    rows = [
        {
            "direction": direction,
            "precision": score.precision,
            "recall": score.recall,
            "f1": score.f1,
        }
        for direction, score in scores.items()
    ]
    print(format_table(rows, float_digits=3))
    return 0


def _cmd_randomize(args: argparse.Namespace) -> int:
    dataset = _dataset_from_args(args.dataset, args)
    translator = _make_translator(args)
    result = randomization_test(
        dataset, translator, n_permutations=args.permutations, rng=args.seed
    )
    print(f"# swap-randomization test on {dataset.name}")
    print(f"observed L%:  {100 * result.observed_ratio:.2f}")
    null_mean = sum(result.null_ratios) / len(result.null_ratios)
    print(f"null mean L%: {100 * null_mean:.2f} over {args.permutations} permutations")
    print(f"empirical p-value: {result.p_value:.3f}   z-score: {result.z_score:.2f}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    dataset = _dataset_from_args(args.dataset, args)
    translator = _make_translator(args)
    result = translator.fit(dataset)
    print(describe_result(dataset, result, max_rules=args.limit))
    return 0


def _cmd_stability(args: argparse.Namespace) -> int:
    dataset = _dataset_from_args(args.dataset, args)
    translator = _make_translator(args)
    report = bootstrap_stability(
        dataset,
        translator,
        n_resamples=args.resamples,
        sample_fraction=args.sample_fraction,
        replace=not args.no_replacement,
        rng=args.seed,
    )
    print(f"# bootstrap stability on {dataset.name}")
    print(report.render(dataset))
    return 0


def _cmd_encoding(args: argparse.Namespace) -> int:
    dataset = _dataset_from_args(args.dataset, args)
    translator = _make_translator(args)
    result = translator.fit(dataset)
    report = refined_lengths(dataset, result.table)
    print(f"# encoding comparison on {dataset.name} ({result.method})")
    print(format_table([report.summary()]))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    dataset = _dataset_from_args(args.dataset, args)
    result = cluster_two_view(
        dataset,
        k=args.k_components,
        translator_factory=lambda: _make_translator(args),
        n_restarts=args.restarts,
        rng=args.seed,
    )
    print(f"# compression-based clustering of {dataset.name} "
          f"(k={result.k}, {'converged' if result.converged else 'round cap hit'})")
    print(f"total bits: {result.total_bits:.1f} "
          f"(labels {result.label_bits:.1f})")
    for component in range(result.k):
        size = int((result.labels == component).sum())
        print(f"\ncomponent {component}: {size} transactions, "
              f"{result.component_bits[component]:.1f} bits")
        print(result.tables[component].render(dataset, limit=args.limit))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    source, destination = Path(args.source), Path(args.destination)
    if source.suffix == ".2v" and destination.suffix == ".arff":
        save_arff(two_view_to_arff(load_dataset(source)), destination)
    elif source.suffix == ".arff" and destination.suffix == ".2v":
        relation = load_arff(source)
        left = [a.name for a in relation.attributes if a.name.startswith("L:")]
        right = [a.name for a in relation.attributes if a.name.startswith("R:")]
        if left and right:
            dataset = arff_to_two_view(
                relation, left_attributes=left, right_attributes=right
            )
        else:
            dataset = arff_to_two_view(relation)
        save_dataset(dataset, destination)
    else:
        print(
            "convert requires a .2v -> .arff or .arff -> .2v pair", file=sys.stderr
        )
        return 2
    print(f"# wrote {destination}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = _dataset_from_args(args.dataset, args)
    results = compare_methods(dataset, minsup=args.minsup)
    print(
        format_table(
            [result.as_row() for result in results],
            title=f"Method comparison on {dataset.name} (Table 3)",
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    dataset = _dataset_from_args(args.dataset, args)
    result = TranslatorSelect(k=1, minsup=args.minsup).fit(dataset)
    print(f"# construction trace of translator-select(1) on {dataset.name} (Fig. 2)")
    print(format_trace(result, every=args.every))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-translator",
        description="Association discovery in two-view data (TRANSLATOR reproduction)",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale",
        type=float,
        default=None,
        help="transaction-count scale for registry datasets (default: REPRO_SCALE or 1.0)",
    )
    common.add_argument(
        "--discretize",
        choices=("mdl", "equal-height"),
        default="mdl",
        help="binning method for continuous columns of mixed-type registry "
        "datasets (abalone-mixed, winequality-mixed); Boolean datasets "
        "ignore it",
    )
    common.add_argument(
        "--n-bins",
        type=int,
        default=5,
        help="bin budget per continuous column for mixed-type datasets "
        "(the MDL method may merge below it)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser(
        "stats", help="dataset statistics (Table 1)", parents=[common]
    )
    stats.add_argument("datasets", nargs="*", help="registry names or .2v paths")
    stats.set_defaults(handler=_cmd_stats)

    method_options = argparse.ArgumentParser(add_help=False)
    method_options.add_argument(
        "--method", choices=("exact", "select", "greedy", "beam"), default="select"
    )
    method_options.add_argument(
        "--k", type=int, default=1, help="rules per iteration (select)"
    )
    method_options.add_argument(
        "--minsup", type=int, default=None, help="absolute minimum support"
    )
    method_options.add_argument("--max-iterations", type=int, default=None)
    method_options.add_argument("--max-rule-size", type=int, default=None)
    method_options.add_argument(
        "--kernel",
        choices=("auto", "bool", "bitset"),
        default="auto",
        help="support-set kernel: packed uint64 bitsets (default) or the "
        "boolean-array reference path (both produce identical models)",
    )
    method_options.add_argument(
        "--backend",
        choices=("auto", "numpy", "native"),
        default="auto",
        help="bitset-kernel arithmetic backend: the fused C popcount kernel "
        "(compiled on demand; auto falls back to numpy without a C "
        "toolchain) or the numpy reference (both produce identical models)",
    )
    method_options.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="workers for intra-fit parallelism (exact search sharding, "
        "beam expansion); -1 = all CPUs; results identical to --n-jobs 1",
    )
    method_options.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        help="anytime node budget per best-rule search (exact method only); "
        "interrupted searches report an honest gap bound",
    )
    method_options.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="anytime wall-clock budget in seconds per best-rule search "
        "(exact method only), enforced as deterministic checkpointed "
        "node slices",
    )

    fit = subparsers.add_parser(
        "fit", help="induce a translation table", parents=[common, method_options]
    )
    fit.add_argument("dataset", nargs="?", default=None)
    fit.add_argument(
        "--store",
        type=Path,
        default=None,
        help="fit from an ingested column store (see `ingest`) instead of "
        "a dataset; exact method only",
    )
    fit.add_argument("--limit", type=int, default=30, help="rules to print")
    fit.add_argument("--output", type=Path, default=None, help="write table JSON here")
    fit.add_argument(
        "--prune", action="store_true", help="post-hoc prune the fitted table"
    )
    fit.set_defaults(handler=_cmd_fit)

    fit_multiview = subparsers.add_parser(
        "fit-multiview",
        help="pairwise k-view translation over shared packed bitsets",
        parents=[common, method_options],
    )
    fit_multiview.add_argument("dataset", help="registry name or .2v path")
    fit_multiview.add_argument(
        "--views",
        type=int,
        default=2,
        help="number of views: 2 keeps the dataset's own split, k > 2 "
        "re-partitions the joined items density-balanced",
    )
    fit_multiview.add_argument(
        "--conditional",
        action="store_true",
        help="score each pair residually on the transactions not yet "
        "covered by earlier pairs' rules",
    )
    fit_multiview.add_argument(
        "--seed", type=int, default=0, help="re-partition seed (--views > 2)"
    )
    fit_multiview.add_argument(
        "--limit", type=int, default=10, help="rules to print per pair"
    )
    fit_multiview.add_argument(
        "--output", type=Path, default=None, help="write the summary JSON here"
    )
    fit_multiview.set_defaults(handler=_cmd_fit_multiview)

    ingest = subparsers.add_parser(
        "ingest",
        help="pack a dataset into an out-of-core column store (RPROCOL1)",
        parents=[common],
    )
    ingest.add_argument("dataset", help="registry name or .2v path")
    ingest.add_argument(
        "--output", type=Path, required=True, help="column store file to write"
    )
    ingest.add_argument(
        "--chunk-rows", type=int, default=8192, help="rows streamed per chunk"
    )
    ingest.add_argument(
        "--block-words",
        type=int,
        default=128,
        help="uint64 words per column block (block = 64*words rows)",
    )
    ingest.add_argument(
        "--sample-rows",
        type=int,
        default=2048,
        help="row-sample size for the sound sketch bounds",
    )
    ingest.add_argument(
        "--minhash-hashes",
        type=int,
        default=8,
        help="minhash signature length (ordering heuristic; 0 disables)",
    )
    ingest.add_argument("--seed", type=int, default=0, help="sketch sampling seed")
    ingest.set_defaults(handler=_cmd_ingest)

    predict = subparsers.add_parser(
        "predict",
        help="held-out cross-view prediction",
        parents=[common, method_options],
    )
    predict.add_argument("dataset")
    predict.add_argument("--train-fraction", type=float, default=0.7)
    predict.add_argument("--seed", type=int, default=0)
    predict.add_argument(
        "--table",
        type=Path,
        default=None,
        help="score this saved/published table JSON instead of refitting",
    )
    predict.set_defaults(handler=_cmd_predict)

    randomize = subparsers.add_parser(
        "randomize",
        help="swap-randomization significance test",
        parents=[common, method_options],
    )
    randomize.add_argument("dataset")
    randomize.add_argument("--permutations", type=int, default=19)
    randomize.add_argument("--seed", type=int, default=0)
    randomize.set_defaults(handler=_cmd_randomize)

    describe = subparsers.add_parser(
        "describe",
        help="full model report for a fitted table",
        parents=[common, method_options],
    )
    describe.add_argument("dataset")
    describe.add_argument("--limit", type=int, default=25, help="rules to print")
    describe.set_defaults(handler=_cmd_describe)

    stability = subparsers.add_parser(
        "stability",
        help="bootstrap stability of the fitted table",
        parents=[common, method_options],
    )
    stability.add_argument("dataset")
    stability.add_argument("--resamples", type=int, default=10)
    stability.add_argument("--sample-fraction", type=float, default=1.0)
    stability.add_argument(
        "--no-replacement",
        action="store_true",
        help="subsample without replacement (requires --sample-fraction < 1)",
    )
    stability.add_argument("--seed", type=int, default=0)
    stability.set_defaults(handler=_cmd_stability)

    encoding = subparsers.add_parser(
        "encoding",
        help="compare the paper's encoding to the refined (optimal) one",
        parents=[common, method_options],
    )
    encoding.add_argument("dataset")
    encoding.set_defaults(handler=_cmd_encoding)

    cluster = subparsers.add_parser(
        "cluster",
        help="compression-based clustering (k translation tables)",
        parents=[common, method_options],
    )
    cluster.add_argument("dataset")
    cluster.add_argument(
        "--k-components", type=int, default=2, help="number of components"
    )
    cluster.add_argument("--restarts", type=int, default=1)
    cluster.add_argument("--limit", type=int, default=10, help="rules to print per component")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.set_defaults(handler=_cmd_cluster)

    convert = subparsers.add_parser(
        "convert", help="convert between .2v and ARFF formats"
    )
    convert.add_argument("source")
    convert.add_argument("destination")
    convert.set_defaults(handler=_cmd_convert)

    compare = subparsers.add_parser(
        "compare", help="method comparison (Table 3)", parents=[common]
    )
    compare.add_argument("dataset")
    compare.add_argument("--minsup", type=int, default=None)
    compare.set_defaults(handler=_cmd_compare)

    trace = subparsers.add_parser(
        "trace", help="construction trace (Fig. 2)", parents=[common]
    )
    trace.add_argument("dataset")
    trace.add_argument("--minsup", type=int, default=None)
    trace.add_argument("--every", type=int, default=1, help="print every n-th iteration")
    trace.set_defaults(handler=_cmd_trace)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a datasets x methods x params x seeds grid across workers",
        parents=[common],
    )
    sweep.add_argument("datasets", nargs="+", help="registry names or .2v paths")
    sweep.add_argument(
        "--method",
        action="append",
        choices=("exact", "select", "greedy", "beam"),
        help="translator method; repeat for several (default: select)",
    )
    sweep.add_argument(
        "--param",
        action="append",
        metavar="NAME=V1[,V2,...]",
        help="sweep a translator constructor parameter over the given "
        "values; repeat for a grid (cross product)",
    )
    sweep.add_argument(
        "--seeds",
        default="default",
        help="comma-separated dataset seeds; 'default' keeps each "
        "dataset's own stable seed, matching `fit` (default: default)",
    )
    sweep.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="sweep workers; -1 = all CPUs (default: 1)",
    )
    sweep.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="executor backend (auto = process when n_jobs > 1)",
    )
    sweep.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="content-hashed result cache directory (re-runs are served "
        "from disk)",
    )
    sweep.add_argument(
        "--fallback-auto",
        action="store_true",
        help="on candidate-mining overflow, retry the cell with "
        "auto-tuned settings instead of failing",
    )
    sweep.add_argument(
        "--output", type=Path, default=None, help="write the JSON report here"
    )
    sweep.set_defaults(handler=_cmd_sweep)

    publish = subparsers.add_parser(
        "publish",
        help="fit a model (or take --table) and publish it to a registry",
        parents=[common, method_options],
    )
    publish.add_argument("dataset")
    publish.add_argument(
        "--registry", type=Path, required=True, help="model registry directory"
    )
    publish.add_argument(
        "--name", default=None, help="model name (default: <dataset>-<method>)"
    )
    publish.add_argument(
        "--table",
        type=Path,
        default=None,
        help="publish this saved table JSON instead of fitting",
    )
    publish.add_argument(
        "--no-sidecar",
        action="store_true",
        help="skip the binary mmap sidecar (compiled.bin) next to the JSON",
    )
    publish.set_defaults(handler=_cmd_publish)

    serve = subparsers.add_parser(
        "serve", help="run the async micro-batching prediction server"
    )
    serve.add_argument(
        "--registry", type=Path, required=True, help="model registry directory"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8100)
    serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="rows that trigger an immediate micro-batch flush",
    )
    serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="longest time a request waits to be batched with others",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="LRU response-cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--engine",
        choices=("compiled", "loop"),
        default="compiled",
        help="prediction engine (loop = per-rule reference path)",
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "numpy", "native"),
        default="auto",
        help="packed-strategy word-op backend of the compiled predictors",
    )
    serve.add_argument(
        "--read-timeout",
        type=float,
        default=30.0,
        help="per-connection budget (s) for receiving a request; slow "
        "clients get a 408",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="grace period (s) for in-flight requests on SIGINT/SIGTERM "
        "before stragglers are cancelled",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker replicas; >1 runs the replica router over N spawned "
        "processes sharing the mmap'd model artifacts",
    )
    serve.add_argument(
        "--probe-interval",
        type=float,
        default=0.5,
        help="router health-probe sweep period (s); 0 disables probing",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="enable engine instrumentation (search/kernel/stream counters "
        "on GET /metrics; serving metrics are always exported)",
    )
    serve.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="directory for JSONL span exports (spans-<role>.jsonl per "
        "process); enables request tracing",
    )
    serve.set_defaults(handler=_cmd_serve)

    trace_dump = subparsers.add_parser(
        "trace-dump",
        help="render exported request-trace spans as linked trees",
    )
    trace_dump.add_argument(
        "path",
        help="a spans-*.jsonl file or a directory written via "
        "`serve --trace-dir`",
    )
    trace_dump.add_argument(
        "--trace", default=None, help="only show this 16-hex trace id"
    )
    trace_dump.add_argument(
        "--json",
        action="store_true",
        help="dump raw span records as JSON instead of trees",
    )
    trace_dump.set_defaults(handler=_cmd_trace_dump)

    predict_batch = subparsers.add_parser(
        "predict-batch",
        help="predict a JSON file of source-view rows from a published model",
    )
    predict_batch.add_argument(
        "--registry", type=Path, required=True, help="model registry directory"
    )
    predict_batch.add_argument("--model", required=True, help="published model name")
    predict_batch.add_argument(
        "--version", default=None, help="model version (default: latest)"
    )
    predict_batch.add_argument(
        "--target", choices=("L", "R"), default="R", help="view to predict"
    )
    predict_batch.add_argument(
        "--input",
        type=Path,
        required=True,
        help="JSON file: list of item-index lists over the source view",
    )
    predict_batch.add_argument(
        "--output", type=Path, default=None, help="write the JSON response here"
    )
    predict_batch.add_argument(
        "--engine", choices=("compiled", "loop"), default="compiled"
    )
    predict_batch.add_argument(
        "--backend", choices=("auto", "numpy", "native"), default="auto"
    )
    predict_batch.set_defaults(handler=_cmd_predict_batch)

    stream = subparsers.add_parser(
        "stream",
        help="ingest a row stream, refit on drift, hot-swap the registry",
        parents=[common],
    )
    stream.add_argument(
        "source",
        help="row source: a .jsonl file of {left, right} index lists, or a "
        ".2vp file of packed two-view frames",
    )
    stream.add_argument(
        "--registry", type=Path, required=True, help="model registry directory"
    )
    stream.add_argument("--name", required=True, help="registry model to maintain")
    stream.add_argument(
        "--vocab-from",
        default=None,
        help="dataset (registry name or .2v path) defining the vocabularies",
    )
    stream.add_argument("--n-left", type=int, default=None)
    stream.add_argument("--n-right", type=int, default=None)
    stream.add_argument("--window", type=int, default=512)
    stream.add_argument(
        "--policy", choices=("sliding", "tumbling"), default="sliding"
    )
    stream.add_argument("--check-every", type=int, default=128)
    stream.add_argument("--min-rows", type=int, default=64)
    stream.add_argument(
        "--method", choices=("exact", "beam"), default="exact",
        help="refit engine (both skip the window repack)",
    )
    stream.add_argument("--max-rule-size", type=int, default=None)
    stream.add_argument(
        "--backend",
        choices=("auto", "numpy", "native"),
        default="auto",
        help="word-op backend for the buffer's tracked supports and the "
        "exact refits",
    )
    stream.add_argument("--n-jobs", type=int, default=1)
    stream.add_argument("--min-degradation", type=float, default=0.02)
    stream.add_argument("--significance", type=float, default=0.05)
    stream.add_argument("--permutations", type=int, default=19)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--follow", action="store_true",
        help="tail a growing JSONL source instead of stopping at EOF",
    )
    stream.add_argument(
        "--max-rows", type=int, default=None, help="stop after this many rows"
    )
    stream.add_argument(
        "--always-publish", action="store_true",
        help="publish every refit candidate regardless of drift",
    )
    stream.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="directory for crash-recovery window checkpoints; a "
        "restarted loop resumes from the last check boundary",
    )
    stream.add_argument(
        "--max-restarts",
        type=int,
        default=0,
        help="supervise the loop: restart it up to this many times on a "
        "crash (resuming from --checkpoint-dir when set)",
    )
    stream.add_argument(
        "--strict-source", action="store_true",
        help="fail on the first malformed JSONL line instead of "
        "skipping and counting it",
    )
    stream.set_defaults(handler=_cmd_stream)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
