"""Evaluation criteria (paper, Section 6, "Evaluation criteria").

* ``L%`` — compression ratio ``L(D, T) / L(D, ∅)``.
* ``|C|%`` — correction-table fraction ``|C| / ((|I_L|+|I_R|) |D|)``.
* ``c(X -> Y)`` — rule confidence ``|supp(X ∪ Y)| / |supp(X)|``.
* ``c+`` — maximum confidence over both directions, avoiding a penalty
  for methods that produce bidirectional rules.

:func:`evaluate_table` scores *any* translation table (TRANSLATOR output
or converted baseline output) under the paper's MDL criterion, which is
how Table 3 compares methods on a common footing.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.data.dataset import Side, TwoViewDataset
from repro.core.encoding import CodeLengthModel
from repro.core.rules import TranslationRule
from repro.core.state import CoverState
from repro.core.table import TranslationTable

__all__ = [
    "confidence",
    "max_confidence",
    "evaluate_table",
    "rule_set_summary",
]


def confidence(
    dataset: TwoViewDataset, lhs: Iterable[int], rhs: Iterable[int], forward: bool = True
) -> float:
    """``c(X -> Y)`` (forward) or ``c(X <- Y)`` (backward).

    ``lhs`` is always the left-view itemset.  Returns 0 when the
    antecedent never occurs.
    """
    lhs = tuple(lhs)
    rhs = tuple(rhs)
    joint = int(dataset.joint_support_mask(lhs, rhs).sum())
    antecedent = dataset.support_count(Side.LEFT, lhs) if forward else dataset.support_count(
        Side.RIGHT, rhs
    )
    return joint / antecedent if antecedent else 0.0


def max_confidence(
    dataset: TwoViewDataset, rule: TranslationRule
) -> float:
    """``c+(X ⇒ Y) = max(c(X -> Y), c(X <- Y))`` (Section 6)."""
    return max(
        confidence(dataset, rule.lhs, rule.rhs, forward=True),
        confidence(dataset, rule.lhs, rule.rhs, forward=False),
    )


def evaluate_table(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
    codes: CodeLengthModel | None = None,
) -> CoverState:
    """Score an arbitrary translation table on a dataset.

    Builds a :class:`CoverState` and applies every rule (regardless of
    individual gain — the table is taken as given, exactly as the paper
    does when scoring baseline outputs).  The returned state exposes
    ``compression_ratio()``, ``correction_fraction()`` and
    ``total_length()``.
    """
    state = CoverState(dataset, codes)
    for rule in table:
        state.add_rule(rule)
    return state


def rule_set_summary(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
    method: str = "unknown",
    codes: CodeLengthModel | None = None,
) -> dict[str, object]:
    """One Table 3 row: ``|T|``, avg length, ``|C|%``, avg ``c+``, ``L%``."""
    rules = list(table)
    state = evaluate_table(dataset, rules, codes)
    confidences = [max_confidence(dataset, rule) for rule in rules]
    return {
        "method": method,
        "dataset": dataset.name,
        "n_rules": len(rules),
        "average_rule_length": (
            sum(rule.size for rule in rules) / len(rules) if rules else 0.0
        ),
        "correction_fraction": state.correction_fraction(),
        "average_max_confidence": (
            sum(confidences) / len(confidences) if confidences else 0.0
        ),
        "compression_ratio": state.compression_ratio(),
        "n_bidirectional": sum(
            1 for rule in rules if rule.direction.value == "<->"
        ),
    }
