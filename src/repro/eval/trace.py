"""Construction traces (the Fig. 2 experiment).

Fig. 2 of the paper tracks, while rules are iteratively added to a
translation table, (top) the number of uncovered ones ``|U|`` and errors
``|E|`` per side, and (bottom) the encoded lengths
``L(D_{L->R} | T)``, ``L(D_{L<-R} | T)``, ``L(T)`` and their total.
:class:`~repro.core.translator.TranslatorResult` already records one
snapshot per added rule; this module turns that history into plottable
series and a text rendering.
"""

from __future__ import annotations

from repro.core.translator import TranslatorResult

__all__ = ["construction_trace", "format_trace"]

_SERIES_KEYS = (
    "uncovered_left",
    "uncovered_right",
    "errors_left",
    "errors_right",
    "L_left_to_right",
    "L_right_to_left",
    "L_table",
    "L_total",
)


def construction_trace(result: TranslatorResult) -> dict[str, list[float]]:
    """Extract the Fig. 2 series from a translator run.

    Returns a mapping of series name to per-iteration values; index 0 is
    the empty-table state, index ``i`` the state after the ``i``-th rule.
    Note the left-to-right translation is encoded by the *right* correction
    table: ``L(D_{L->R} | T) = L(C_R | T)``.
    """
    state = result.state
    dataset = state.dataset
    # Reconstruct the iteration-0 state from the dataset itself.
    baseline_right = float(
        (dataset.right.sum(axis=0) * state._weights_right).sum()
    )
    baseline_left = float(
        (dataset.left.sum(axis=0) * state._weights_left).sum()
    )
    series: dict[str, list[float]] = {key: [] for key in _SERIES_KEYS}
    series["uncovered_left"].append(float(dataset.left.sum()))
    series["uncovered_right"].append(float(dataset.right.sum()))
    series["errors_left"].append(0.0)
    series["errors_right"].append(0.0)
    series["L_left_to_right"].append(baseline_right)
    series["L_right_to_left"].append(baseline_left)
    series["L_table"].append(0.0)
    series["L_total"].append(baseline_left + baseline_right)
    for record in result.history:
        series["uncovered_left"].append(float(record.uncovered_left))
        series["uncovered_right"].append(float(record.uncovered_right))
        series["errors_left"].append(float(record.errors_left))
        series["errors_right"].append(float(record.errors_right))
        series["L_left_to_right"].append(record.correction_bits_right)
        series["L_right_to_left"].append(record.correction_bits_left)
        series["L_table"].append(record.table_bits)
        series["L_total"].append(record.total_bits)
    return series


def format_trace(result: TranslatorResult, every: int = 1) -> str:
    """Plain-text rendering of a construction trace."""
    series = construction_trace(result)
    n_points = len(series["L_total"])
    header = (
        f"{'iter':>4} {'|U_L|':>7} {'|U_R|':>7} {'|E_L|':>6} {'|E_R|':>6} "
        f"{'L(L->R)':>10} {'L(L<-R)':>10} {'L(T)':>9} {'total':>10}"
    )
    lines = [header, "-" * len(header)]
    for index in range(0, n_points, max(1, every)):
        lines.append(
            f"{index:>4} "
            f"{series['uncovered_left'][index]:>7.0f} "
            f"{series['uncovered_right'][index]:>7.0f} "
            f"{series['errors_left'][index]:>6.0f} "
            f"{series['errors_right'][index]:>6.0f} "
            f"{series['L_left_to_right'][index]:>10.1f} "
            f"{series['L_right_to_left'][index]:>10.1f} "
            f"{series['L_table'][index]:>9.1f} "
            f"{series['L_total'][index]:>10.1f}"
        )
    return "\n".join(lines)
