"""Rule-set visualisation (the Fig. 3 experiment).

Fig. 3 of the paper draws each rule set as a tripartite graph: left-view
items on the left, right-view items on the right, one node per rule in the
middle, with grey edges for unidirectional membership (implication away
from the item) and black edges for bidirectional membership.  This module
builds that graph with ``networkx``, computes the statistics the paper
reads off the picture (how many rules, how many distinct items touched,
uni/bidirectional composition), and renders DOT and ASCII versions.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from repro.data.dataset import TwoViewDataset
from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable

__all__ = ["rule_graph", "graph_statistics", "to_dot", "render_ascii"]


def rule_graph(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
) -> nx.Graph:
    """Build the Fig. 3 tripartite rule graph.

    Nodes carry a ``kind`` attribute (``"left_item"``, ``"rule"``,
    ``"right_item"``); edges carry ``bidirectional`` (bool).  An edge from
    an item to a rule is bidirectional when the implication also points
    *towards* that item's side.
    """
    graph = nx.Graph()
    rules = list(table)
    for rule_index, rule in enumerate(rules):
        rule_node = f"rule:{rule_index}"
        graph.add_node(
            rule_node, kind="rule", direction=rule.direction.value, index=rule_index
        )
        towards_left = rule.direction.applies_backward
        towards_right = rule.direction.applies_forward
        for item in rule.lhs:
            node = f"L:{dataset.left_names[item]}"
            graph.add_node(node, kind="left_item", item=item)
            # Black (bidirectional) edge when the implication also points
            # back to the left side; grey otherwise.
            graph.add_edge(node, rule_node, bidirectional=towards_left and towards_right)
        for item in rule.rhs:
            node = f"R:{dataset.right_names[item]}"
            graph.add_node(node, kind="right_item", item=item)
            graph.add_edge(node, rule_node, bidirectional=towards_left and towards_right)
    return graph


def graph_statistics(graph: nx.Graph) -> dict[str, float | int]:
    """The quantities the paper reads off Fig. 3."""
    rules = [node for node, data in graph.nodes(data=True) if data["kind"] == "rule"]
    left_items = [
        node for node, data in graph.nodes(data=True) if data["kind"] == "left_item"
    ]
    right_items = [
        node for node, data in graph.nodes(data=True) if data["kind"] == "right_item"
    ]
    bidirectional_rules = [
        node for node in rules if graph.nodes[node]["direction"] == Direction.BOTH.value
    ]
    rule_degrees = [graph.degree(node) for node in rules]
    return {
        "n_rules": len(rules),
        "n_left_items_used": len(left_items),
        "n_right_items_used": len(right_items),
        "n_edges": graph.number_of_edges(),
        "n_bidirectional_rules": len(bidirectional_rules),
        "bidirectional_share": (
            len(bidirectional_rules) / len(rules) if rules else 0.0
        ),
        "average_items_per_rule": (
            sum(rule_degrees) / len(rule_degrees) if rule_degrees else 0.0
        ),
        "max_items_per_rule": max(rule_degrees, default=0),
    }


def to_dot(graph: nx.Graph) -> str:
    """Render the rule graph as Graphviz DOT (no external deps)."""
    lines = [
        "graph rules {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=9];',
    ]
    for node, data in graph.nodes(data=True):
        name = node.replace('"', "'")
        if data["kind"] == "rule":
            label = data["direction"]
            lines.append(f'  "{name}" [shape=circle, label="{label}"];')
        else:
            label = node.split(":", 1)[1].replace('"', "'")
            lines.append(f'  "{name}" [label="{label}"];')
    for source, target, data in graph.edges(data=True):
        color = "black" if data.get("bidirectional") else "grey"
        source = source.replace('"', "'")
        target = target.replace('"', "'")
        lines.append(f'  "{source}" -- "{target}" [color={color}];')
    lines.append("}")
    return "\n".join(lines)


def render_ascii(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
    limit: int = 20,
) -> str:
    """Compact text rendering: one line per rule with direction glyphs."""
    lines: list[str] = []
    for index, rule in enumerate(table):
        if index >= limit:
            lines.append("  ...")
            break
        left = ", ".join(dataset.left_names[item] for item in rule.lhs)
        right = ", ".join(dataset.right_names[item] for item in rule.rhs)
        glyph = {"->": "==>", "<-": "<==", "<->": "<=>"}[rule.direction.value]
        lines.append(f"  [{left}] {glyph} [{right}]")
    return "\n".join(lines)
