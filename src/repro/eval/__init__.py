"""Evaluation: metrics, method comparison, traces and visualisation.

* :mod:`~repro.eval.metrics` — the paper's evaluation criteria: ``L%``,
  ``|C|%``, confidence, maximum confidence ``c+``, rule-set summaries.
* :mod:`~repro.eval.comparison` — the Table 3 harness comparing
  TRANSLATOR with the three baselines under the MDL criterion.
* :mod:`~repro.eval.trace` — Fig. 2 construction traces.
* :mod:`~repro.eval.visualize` — Fig. 3 bipartite rule graphs (networkx),
  graph statistics, DOT and ASCII rendering.
* :mod:`~repro.eval.stability` — bootstrap stability analysis of
  translation tables (an extension; per-rule recovery rates).
* :mod:`~repro.eval.tables` — plain-text table formatting for reports.
"""

from repro.eval.metrics import (
    confidence,
    evaluate_table,
    max_confidence,
    rule_set_summary,
)
from repro.eval.comparison import MethodResult, compare_methods
from repro.eval.trace import construction_trace, format_trace
from repro.eval.visualize import (
    graph_statistics,
    render_ascii,
    rule_graph,
    to_dot,
)
from repro.eval.report import describe_result
from repro.eval.redundancy import (
    item_coverage,
    redundancy_report,
    redundancy_score,
    rule_overlap,
)
from repro.eval.randomization import (
    RandomizationResult,
    permute_pairing,
    randomization_test,
)
from repro.eval.ranking import (
    RuleStats,
    focus_item_rules,
    rank_rules,
    rule_stats,
)
from repro.eval.stability import (
    RuleRecovery,
    StabilityReport,
    bootstrap_stability,
    rule_overlap_score,
    soft_match_score,
)
from repro.eval.tables import format_table

__all__ = [
    "confidence",
    "evaluate_table",
    "max_confidence",
    "rule_set_summary",
    "MethodResult",
    "compare_methods",
    "construction_trace",
    "format_trace",
    "graph_statistics",
    "render_ascii",
    "rule_graph",
    "to_dot",
    "describe_result",
    "item_coverage",
    "redundancy_report",
    "redundancy_score",
    "rule_overlap",
    "RandomizationResult",
    "permute_pairing",
    "randomization_test",
    "RuleStats",
    "focus_item_rules",
    "rank_rules",
    "rule_stats",
    "RuleRecovery",
    "StabilityReport",
    "bootstrap_stability",
    "rule_overlap_score",
    "soft_match_score",
    "format_table",
]
