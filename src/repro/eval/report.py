"""Full-model text reports.

Bundles everything an analyst would want to see after fitting a
translation table — dataset summary, encoded-length breakdown, rule
listing with confidences, coverage and redundancy — into one plain-text
report.  Used by the ``repro-translator describe`` CLI command and handy
in notebooks.
"""

from __future__ import annotations

from repro.data.dataset import TwoViewDataset
from repro.core.translator import TranslatorResult
from repro.eval.metrics import max_confidence
from repro.eval.redundancy import item_coverage, redundancy_score
from repro.eval.tables import format_table

__all__ = ["describe_result"]


def describe_result(
    dataset: TwoViewDataset,
    result: TranslatorResult,
    max_rules: int = 25,
) -> str:
    """Render a complete model report for a translator run."""
    state = result.state
    lines: list[str] = []
    lines.append(f"model report — {result.method} on {dataset.name}")
    lines.append("=" * len(lines[0]))
    lines.append("")
    lines.append("dataset")
    lines.append(
        f"  |D| = {dataset.n_transactions}   |I_L| = {dataset.n_left}   "
        f"|I_R| = {dataset.n_right}"
    )
    lines.append(
        f"  d_L = {dataset.density_left:.3f}   d_R = {dataset.density_right:.3f}"
    )
    lines.append("")
    lines.append("encoded lengths (bits)")
    lines.append(f"  L(D, empty)    = {state.baseline_bits:12.1f}")
    lines.append(f"  L(T)           = {state.table_bits:12.1f}")
    lines.append(f"  L(C_L | T)     = {state.correction_bits_left:12.1f}")
    lines.append(f"  L(C_R | T)     = {state.correction_bits_right:12.1f}")
    lines.append(f"  L(D, T)        = {state.total_length():12.1f}")
    lines.append(
        f"  compression L% = {100 * result.compression_ratio:11.2f}%   "
        f"|C|% = {100 * result.correction_fraction:.2f}%"
    )
    lines.append("")
    coverage = item_coverage(dataset, result.table)
    lines.append("coverage")
    lines.append(
        f"  items used:  left {100 * float(coverage['items_used_left']):.0f}%   "
        f"right {100 * float(coverage['items_used_right']):.0f}%"
    )
    lines.append(
        f"  ones covered: left {100 * float(coverage['ones_covered_left']):.0f}%   "
        f"right {100 * float(coverage['ones_covered_right']):.0f}%   "
        f"errors introduced: {coverage['errors_introduced']}"
    )
    lines.append(
        f"  rule-set redundancy (mean pairwise firing overlap): "
        f"{redundancy_score(dataset, result.table):.3f}"
    )
    lines.append("")
    lines.append(
        f"rules ({result.n_rules} total, "
        f"{result.table.n_bidirectional} bidirectional, "
        f"average length {result.table.average_length:.2f})"
    )
    rows = []
    for record in result.history[:max_rules]:
        rows.append(
            {
                "#": record.index,
                "rule": record.rule.render(dataset),
                "gain": round(record.gain, 1),
                "c+": round(max_confidence(dataset, record.rule), 2),
            }
        )
    if rows:
        lines.append(format_table(rows))
    if result.n_rules > max_rules:
        lines.append(f"... ({result.n_rules - max_rules} more rules)")
    return "\n".join(lines)
