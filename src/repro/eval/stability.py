"""Bootstrap stability analysis of translation tables.

MDL model selection picks *one* translation table; a data analyst acting
on its rules should know how sensitive that table is to the sample of
transactions at hand.  This module quantifies that sensitivity by
refitting a TRANSLATOR algorithm on bootstrap resamples (or subsamples)
of the transactions and measuring how much the resulting rule sets agree
with the table fitted on the full data.

Two levels of agreement are reported:

* **exact rule match** — the Jaccard similarity between rule sets, where
  two rules match iff they have identical itemsets and direction;
* **soft rule match** — rules are matched greedily by best itemset
  overlap, so a resample that finds ``{a, b} -> {x}`` instead of
  ``{a} -> {x}`` still counts as partial agreement.  The overlap of a
  rule pair is the mean of the Jaccard similarities of their left and
  right itemsets, zeroed when directions are incompatible.

Per-rule *recovery rates* (how often each original rule re-appears
across the resamples, exactly or softly) identify which discovered
associations are robust and which are sampling artefacts.  On planted
synthetic data the planted rules should show recovery near 1 while noise
rules churn — see ``benchmarks/bench_stability.py``.
"""

from __future__ import annotations

import dataclasses
import statistics
from collections.abc import Sequence

import numpy as np

from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.data.dataset import TwoViewDataset

__all__ = [
    "RuleRecovery",
    "StabilityReport",
    "rule_overlap_score",
    "soft_match_score",
    "bootstrap_stability",
]


def _jaccard(first: tuple[int, ...], second: tuple[int, ...]) -> float:
    first_set, second_set = set(first), set(second)
    union = first_set | second_set
    if not union:
        return 1.0
    return len(first_set & second_set) / len(union)


def _directions_compatible(first: Direction, second: Direction) -> bool:
    """Directions are compatible when one implies the other's coverage."""
    if first is second:
        return True
    return Direction.BOTH in (first, second)


def rule_overlap_score(first: TranslationRule, second: TranslationRule) -> float:
    """Soft similarity of two rules in ``[0, 1]``.

    The mean of the per-side itemset Jaccard similarities, scaled by 0.5
    when the directions are merely compatible (one unidirectional, one
    bidirectional) and 0 when they are incompatible (opposite
    unidirectional rules translate different views and share nothing).
    """
    if not _directions_compatible(first.direction, second.direction):
        return 0.0
    base = 0.5 * (_jaccard(first.lhs, second.lhs) + _jaccard(first.rhs, second.rhs))
    if first.direction is not second.direction:
        return 0.5 * base
    return base


def soft_match_score(
    reference: Sequence[TranslationRule], other: Sequence[TranslationRule]
) -> float:
    """Greedy best-overlap matching score between two rule sets.

    Each reference rule is matched to its best-overlapping unmatched rule
    of ``other`` (greedy on descending overlap); the score is the mean
    matched overlap over ``max(len(reference), len(other))`` so both
    missing and surplus rules dilute it.  Two empty sets score 1.
    """
    if not reference and not other:
        return 1.0
    if not reference or not other:
        return 0.0
    pairs = sorted(
        (
            (rule_overlap_score(ref_rule, other_rule), ref_index, other_index)
            for ref_index, ref_rule in enumerate(reference)
            for other_index, other_rule in enumerate(other)
        ),
        key=lambda entry: -entry[0],
    )
    matched_reference: set[int] = set()
    matched_other: set[int] = set()
    total = 0.0
    for overlap, ref_index, other_index in pairs:
        if overlap <= 0.0:
            break
        if ref_index in matched_reference or other_index in matched_other:
            continue
        matched_reference.add(ref_index)
        matched_other.add(other_index)
        total += overlap
    return total / max(len(reference), len(other))


@dataclasses.dataclass(frozen=True)
class RuleRecovery:
    """Recovery statistics of one rule of the reference table."""

    rule: TranslationRule
    exact_rate: float
    soft_rate: float

    def render(self, dataset: TwoViewDataset | None = None) -> str:
        """One line: rule plus exact/soft recovery percentages."""
        return (
            f"{self.rule.render(dataset)}  "
            f"[exact {self.exact_rate:.0%}, soft {self.soft_rate:.0%}]"
        )


@dataclasses.dataclass(frozen=True)
class StabilityReport:
    """Outcome of :func:`bootstrap_stability`."""

    n_resamples: int
    reference_rules: tuple[TranslationRule, ...]
    exact_jaccard: tuple[float, ...]
    soft_scores: tuple[float, ...]
    rule_recoveries: tuple[RuleRecovery, ...]
    n_rules_per_resample: tuple[int, ...]

    @property
    def mean_exact_jaccard(self) -> float:
        """Mean exact rule-set Jaccard across resamples."""
        return statistics.fmean(self.exact_jaccard) if self.exact_jaccard else 1.0

    @property
    def mean_soft_score(self) -> float:
        """Mean soft matching score across resamples."""
        return statistics.fmean(self.soft_scores) if self.soft_scores else 1.0

    @property
    def rule_count_spread(self) -> tuple[int, int]:
        """(min, max) number of rules found across resamples."""
        if not self.n_rules_per_resample:
            return (0, 0)
        return (min(self.n_rules_per_resample), max(self.n_rules_per_resample))

    def stable_rules(self, threshold: float = 0.5) -> list[RuleRecovery]:
        """Rules whose soft recovery rate reaches ``threshold``."""
        return [
            recovery
            for recovery in self.rule_recoveries
            if recovery.soft_rate >= threshold
        ]

    def render(self, dataset: TwoViewDataset | None = None) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"resamples: {self.n_resamples}",
            f"mean exact rule-set Jaccard: {self.mean_exact_jaccard:.3f}",
            f"mean soft match score:       {self.mean_soft_score:.3f}",
            "rule recovery (exact / soft):",
        ]
        for recovery in sorted(self.rule_recoveries, key=lambda entry: -entry.soft_rate):
            lines.append("  " + recovery.render(dataset))
        return "\n".join(lines)


def _exact_jaccard(
    reference: Sequence[TranslationRule], other: Sequence[TranslationRule]
) -> float:
    reference_set, other_set = set(reference), set(other)
    union = reference_set | other_set
    if not union:
        return 1.0
    return len(reference_set & other_set) / len(union)


def bootstrap_stability(
    dataset: TwoViewDataset,
    translator,
    n_resamples: int = 20,
    sample_fraction: float = 1.0,
    replace: bool = True,
    reference: TranslationTable | Sequence[TranslationRule] | None = None,
    rng: np.random.Generator | int | None = None,
    soft_threshold: float = 0.6,
) -> StabilityReport:
    """Assess the stability of ``translator``'s output on ``dataset``.

    Parameters
    ----------
    dataset:
        The two-view dataset under study.
    translator:
        Any object with a ``fit(dataset) -> TranslatorResult`` method (the
        three TRANSLATOR variants and the beam extension all qualify).  A
        fresh fit runs on every resample.
    n_resamples:
        Number of bootstrap resamples.
    sample_fraction:
        Resample size as a fraction of ``|D|``.
    replace:
        Sample with replacement (bootstrap, the default) or without
        (subsampling; requires ``sample_fraction < 1``).
    reference:
        The reference rule set.  Defaults to fitting ``translator`` once
        on the full dataset.
    rng:
        Seed or generator for reproducibility.
    soft_threshold:
        Minimum :func:`rule_overlap_score` for a resample rule to count as
        a *soft* recovery of a reference rule.

    Returns
    -------
    A :class:`StabilityReport` with per-resample agreement scores and
    per-rule recovery rates.
    """
    if n_resamples < 1:
        raise ValueError("n_resamples must be positive")
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction must be in (0, 1]")
    if not replace and sample_fraction >= 1.0:
        raise ValueError("subsampling without replacement requires sample_fraction < 1")
    generator = np.random.default_rng(rng)
    if reference is None:
        reference_rules = tuple(translator.fit(dataset).table)
    else:
        reference_rules = tuple(reference)
    size = max(1, int(round(sample_fraction * dataset.n_transactions)))
    exact_scores: list[float] = []
    soft_scores: list[float] = []
    rule_counts: list[int] = []
    exact_hits = [0] * len(reference_rules)
    soft_hits = [0] * len(reference_rules)
    for __ in range(n_resamples):
        rows = generator.choice(dataset.n_transactions, size=size, replace=replace)
        resample = dataset.subset(np.sort(rows), name=f"{dataset.name}[bootstrap]")
        rules = tuple(translator.fit(resample).table)
        rule_counts.append(len(rules))
        exact_scores.append(_exact_jaccard(reference_rules, rules))
        soft_scores.append(soft_match_score(reference_rules, rules))
        found = set(rules)
        for index, rule in enumerate(reference_rules):
            if rule in found:
                exact_hits[index] += 1
                soft_hits[index] += 1
                continue
            best = max(
                (rule_overlap_score(rule, other) for other in rules), default=0.0
            )
            if best >= soft_threshold:
                soft_hits[index] += 1
    recoveries = tuple(
        RuleRecovery(rule, exact_hits[index] / n_resamples, soft_hits[index] / n_resamples)
        for index, rule in enumerate(reference_rules)
    )
    return StabilityReport(
        n_resamples=n_resamples,
        reference_rules=reference_rules,
        exact_jaccard=tuple(exact_scores),
        soft_scores=tuple(soft_scores),
        rule_recoveries=recoveries,
        n_rules_per_resample=tuple(rule_counts),
    )
