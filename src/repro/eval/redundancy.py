"""Redundancy and coverage analysis of rule sets.

The paper's central qualitative claim is that translation tables are
*non-redundant* while the baselines' rule sets are not ("due to
redundancy in the pattern space, the top-k rules are usually very similar
and therefore not of interest to a data analyst").  This module makes the
claim measurable:

* :func:`rule_overlap` — Jaccard similarity of two rules' support sets;
* :func:`redundancy_score` — mean pairwise overlap within a rule set
  (0 = perfectly non-redundant, 1 = all rules fire on the same rows);
* :func:`item_coverage` — per view: which items appear in rules, which
  occurrences get covered, which are left to the correction table.

Used by the Table 3 / Fig. 3 discussion and available to downstream
users as a model-inspection tool.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.data.dataset import Side, TwoViewDataset
from repro.core.rules import TranslationRule
from repro.core.state import CoverState
from repro.core.table import TranslationTable

__all__ = ["rule_overlap", "redundancy_score", "item_coverage", "redundancy_report"]


def _firing_mask(dataset: TwoViewDataset, rule: TranslationRule) -> np.ndarray:
    """Transactions in which the rule fires in at least one direction."""
    mask = np.zeros(dataset.n_transactions, dtype=bool)
    if rule.direction.applies_forward:
        mask |= dataset.support_mask(Side.LEFT, rule.lhs)
    if rule.direction.applies_backward:
        mask |= dataset.support_mask(Side.RIGHT, rule.rhs)
    return mask


def rule_overlap(
    dataset: TwoViewDataset, first: TranslationRule, second: TranslationRule
) -> float:
    """Jaccard similarity of the two rules' firing sets."""
    first_mask = _firing_mask(dataset, first)
    second_mask = _firing_mask(dataset, second)
    union = int((first_mask | second_mask).sum())
    if union == 0:
        return 0.0
    return int((first_mask & second_mask).sum()) / union


def redundancy_score(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
    max_pairs: int = 5_000,
) -> float:
    """Mean pairwise firing-set overlap of a rule set.

    For very large rule sets only the first ``max_pairs`` pairs (in rule
    order) are averaged, which keeps the measure usable on exploded
    baseline outputs.
    """
    rules = list(table)
    if len(rules) < 2:
        return 0.0
    masks = [_firing_mask(dataset, rule) for rule in rules]
    total = 0.0
    pairs = 0
    for first in range(len(rules)):
        for second in range(first + 1, len(rules)):
            union = int((masks[first] | masks[second]).sum())
            if union:
                total += int((masks[first] & masks[second]).sum()) / union
            pairs += 1
            if pairs >= max_pairs:
                return total / pairs
    return total / pairs if pairs else 0.0


def item_coverage(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
) -> dict[str, object]:
    """Per-view coverage statistics of a rule set.

    Returns, for each side, the fraction of items used in any rule and the
    fraction of data ones actually covered by the translation (i.e. not
    left to the ``U`` table).
    """
    rules = list(table)
    state = CoverState(dataset)
    for rule in rules:
        state.add_rule(rule)
    used_left = {item for rule in rules for item in rule.lhs}
    used_right = {item for rule in rules for item in rule.rhs}
    ones_left = int(dataset.left.sum())
    ones_right = int(dataset.right.sum())
    covered_left = ones_left - int(state.uncovered_left.sum())
    covered_right = ones_right - int(state.uncovered_right.sum())
    return {
        "items_used_left": len(used_left) / dataset.n_left if dataset.n_left else 0.0,
        "items_used_right": (
            len(used_right) / dataset.n_right if dataset.n_right else 0.0
        ),
        "ones_covered_left": covered_left / ones_left if ones_left else 0.0,
        "ones_covered_right": covered_right / ones_right if ones_right else 0.0,
        "errors_introduced": int(
            state.errors_left.sum() + state.errors_right.sum()
        ),
    }


def redundancy_report(
    dataset: TwoViewDataset,
    tables: dict[str, TranslationTable | Iterable[TranslationRule]],
) -> list[dict[str, object]]:
    """One row per method: redundancy plus coverage, ready for formatting."""
    rows: list[dict[str, object]] = []
    for method, table in tables.items():
        rules = list(table)
        coverage = item_coverage(dataset, rules)
        rows.append(
            {
                "method": method,
                "n_rules": len(rules),
                "redundancy": round(redundancy_score(dataset, rules), 3),
                "ones_covered_left": round(float(coverage["ones_covered_left"]), 3),
                "ones_covered_right": round(float(coverage["ones_covered_right"]), 3),
                "errors": coverage["errors_introduced"],
            }
        )
    return rows
