"""Per-rule statistics and ranking for analyst-facing presentation.

The paper presents its qualitative results as *top rules* (Figs. 4-5),
*rules containing a focus item* (Fig. 6, 'Genre:Rock') and full rule
listings (Fig. 7).  This module computes the per-rule statistics those
presentations rely on and offers rankings by several criteria:

* ``gain`` — each rule's marginal MDL contribution when removed from the
  fitted table (the most faithful "importance" under the paper's score);
* ``confidence`` — maximum confidence ``c+`` (paper, Section 6);
* ``lift`` — observed co-occurrence over the independence expectation;
* ``support`` — absolute joint support;
* ``coverage`` — number of data cells the rule alone would cover.

All statistics are model-independent except ``gain``, which is computed
against the table the rule belongs to.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

from repro.core.encoding import CodeLengthModel
from repro.core.rules import TranslationRule
from repro.core.state import CoverState
from repro.core.table import TranslationTable
from repro.data.dataset import Side, TwoViewDataset
from repro.eval.metrics import confidence, max_confidence

__all__ = ["RuleStats", "rule_stats", "rank_rules", "focus_item_rules"]

_RANK_KEYS = ("gain", "confidence", "lift", "support", "coverage")


@dataclasses.dataclass(frozen=True)
class RuleStats:
    """All per-rule statistics used by the qualitative presentations."""

    rule: TranslationRule
    support_lhs: int
    support_rhs: int
    support_joint: int
    confidence_forward: float
    confidence_backward: float
    max_confidence: float
    lift: float
    coverage_cells: int
    encoded_bits: float
    gain_bits: float | None = None

    def render(self, dataset: TwoViewDataset | None = None) -> str:
        """One report line: statistics prefix + the rendered rule."""
        gain = "" if self.gain_bits is None else f" Δ{self.gain_bits:+.1f}b"
        return (
            f"[c+ {self.max_confidence:.2f}, lift {self.lift:.1f}, "
            f"supp {self.support_joint}{gain}] {self.rule.render(dataset)}"
        )


def _lift(dataset: TwoViewDataset, rule: TranslationRule, joint: int) -> float:
    """Joint support over the independence expectation of the two sides."""
    n = dataset.n_transactions
    if n == 0 or joint == 0:
        return 0.0
    support_lhs = dataset.support_count(Side.LEFT, rule.lhs)
    support_rhs = dataset.support_count(Side.RIGHT, rule.rhs)
    expected = support_lhs * support_rhs / n
    return float("inf") if expected == 0 else joint / expected


def _coverage_cells(dataset: TwoViewDataset, rule: TranslationRule) -> int:
    """Data cells the rule covers when applied alone (true positives)."""
    cells = 0
    if rule.direction.applies_forward:
        rows = dataset.support_mask(Side.LEFT, rule.lhs)
        cells += int(dataset.right[rows][:, list(rule.rhs)].sum())
    if rule.direction.applies_backward:
        rows = dataset.support_mask(Side.RIGHT, rule.rhs)
        cells += int(dataset.left[rows][:, list(rule.lhs)].sum())
    return cells


def _removal_gain(
    dataset: TwoViewDataset,
    table: Sequence[TranslationRule],
    index: int,
    codes: CodeLengthModel,
) -> float:
    """Marginal MDL contribution of rule ``index``: L(without) − L(with).

    Positive means the table is better off keeping the rule.  Computed by
    replaying the table without the rule on a fresh cover state (rules
    commute under TRANSLATE, so replay order is irrelevant).
    """
    with_rule = CoverState(dataset, codes)
    without_rule = CoverState(dataset, codes)
    for position, rule in enumerate(table):
        with_rule.add_rule(rule)
        if position != index:
            without_rule.add_rule(rule)
    return without_rule.total_length() - with_rule.total_length()


def rule_stats(
    dataset: TwoViewDataset,
    rule: TranslationRule,
    codes: CodeLengthModel | None = None,
) -> RuleStats:
    """Compute the model-independent statistics of one rule."""
    model = codes if codes is not None else CodeLengthModel(dataset)
    joint = int(dataset.joint_support_mask(rule.lhs, rule.rhs).sum())
    return RuleStats(
        rule=rule,
        support_lhs=dataset.support_count(Side.LEFT, rule.lhs),
        support_rhs=dataset.support_count(Side.RIGHT, rule.rhs),
        support_joint=joint,
        confidence_forward=confidence(dataset, rule.lhs, rule.rhs, forward=True),
        confidence_backward=confidence(dataset, rule.lhs, rule.rhs, forward=False),
        max_confidence=max_confidence(dataset, rule),
        lift=_lift(dataset, rule, joint),
        coverage_cells=_coverage_cells(dataset, rule),
        encoded_bits=model.rule_length(rule),
    )


def rank_rules(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
    by: str = "gain",
    descending: bool = True,
) -> list[RuleStats]:
    """Rank the rules of a table by one of the supported criteria.

    ``by`` is one of ``gain`` (marginal MDL contribution; the default),
    ``confidence`` (``c+``), ``lift``, ``support`` (joint) or
    ``coverage``.  Returns one :class:`RuleStats` per rule, sorted.
    """
    if by not in _RANK_KEYS:
        raise ValueError(f"unknown ranking key {by!r}; choose from {_RANK_KEYS}")
    rules = list(table)
    codes = CodeLengthModel(dataset)
    stats = [rule_stats(dataset, rule, codes) for rule in rules]
    if by == "gain":
        stats = [
            dataclasses.replace(
                record, gain_bits=_removal_gain(dataset, rules, index, codes)
            )
            for index, record in enumerate(stats)
        ]
        key = lambda record: record.gain_bits  # noqa: E731
    elif by == "confidence":
        key = lambda record: record.max_confidence  # noqa: E731
    elif by == "lift":
        key = lambda record: record.lift  # noqa: E731
    elif by == "support":
        key = lambda record: record.support_joint  # noqa: E731
    else:
        key = lambda record: record.coverage_cells  # noqa: E731
    return sorted(stats, key=key, reverse=descending)


def focus_item_rules(
    table: TranslationTable | Iterable[TranslationRule],
    dataset: TwoViewDataset,
    item_name: str,
    side: Side | None = None,
) -> list[TranslationRule]:
    """All rules containing ``item_name`` (the Fig. 6 query).

    ``side`` restricts the lookup to one view; by default both views are
    searched (the name must exist in at least one).
    """
    sides = [side] if side is not None else [Side.LEFT, Side.RIGHT]
    matches: list[tuple[Side, int]] = []
    for candidate in sides:
        try:
            matches.append((candidate, dataset.item_index(candidate, item_name)))
        except KeyError:
            continue
    if not matches:
        raise KeyError(f"item {item_name!r} not found in the requested view(s)")
    found = []
    for rule in table:
        for item_side, column in matches:
            items = rule.lhs if item_side is Side.LEFT else rule.rhs
            if column in items:
                found.append(rule)
                break
    return found
