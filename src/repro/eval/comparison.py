"""Multi-method comparison harness (the Table 3 experiment).

Runs TRANSLATOR-SELECT(1), the MAGNUM OPUS stand-in (significant rule
discovery), the REREMI stand-in (redescription mining) and KRIMP on one
dataset, converts every output to a translation table, and scores all of
them with the paper's MDL criterion.  Returns one
:class:`MethodResult` per method, carrying the Table 3 columns.
"""

from __future__ import annotations

import dataclasses
import time

from repro.data.dataset import TwoViewDataset
from repro.core.encoding import CodeLengthModel
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorSelect
from repro.baselines.convert import (
    krimp_to_translation_table,
    rules_to_translation_table,
)
from repro.baselines.krimp import Krimp
from repro.baselines.redescription import ReremiMiner
from repro.baselines.significant import SignificantRuleMiner
from repro.eval.metrics import rule_set_summary

__all__ = ["MethodResult", "compare_methods"]


@dataclasses.dataclass
class MethodResult:
    """One row of a Table 3 style comparison."""

    method: str
    dataset: str
    table: TranslationTable
    n_rules: int
    average_rule_length: float
    correction_fraction: float
    average_max_confidence: float
    compression_ratio: float
    runtime_seconds: float
    notes: str = ""

    def as_row(self) -> dict[str, object]:
        """Dict row for table formatting."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "|T|": self.n_rules,
            "l": round(self.average_rule_length, 2),
            "|C|%": round(100.0 * self.correction_fraction, 2),
            "c+": round(self.average_max_confidence, 3),
            "L%": round(100.0 * self.compression_ratio, 2),
            "runtime_s": round(self.runtime_seconds, 2),
            "notes": self.notes,
        }


def _summarise(
    dataset: TwoViewDataset,
    table: TranslationTable,
    method: str,
    runtime: float,
    codes: CodeLengthModel,
    notes: str = "",
) -> MethodResult:
    summary = rule_set_summary(dataset, table, method=method, codes=codes)
    return MethodResult(
        method=method,
        dataset=dataset.name,
        table=table,
        n_rules=int(summary["n_rules"]),
        average_rule_length=float(summary["average_rule_length"]),
        correction_fraction=float(summary["correction_fraction"]),
        average_max_confidence=float(summary["average_max_confidence"]),
        compression_ratio=float(summary["compression_ratio"]),
        runtime_seconds=runtime,
        notes=notes,
    )


def compare_methods(
    dataset: TwoViewDataset,
    minsup: int | None = None,
    significant_kwargs: dict | None = None,
    redescription_kwargs: dict | None = None,
    krimp_kwargs: dict | None = None,
    select_kwargs: dict | None = None,
) -> list[MethodResult]:
    """Run all four methods of Table 3 on ``dataset``.

    ``minsup`` (absolute) is shared by TRANSLATOR's candidate mining and
    KRIMP; the per-method keyword dictionaries override defaults.
    """
    codes = CodeLengthModel(dataset)
    results: list[MethodResult] = []

    select_options = {"k": 1, "minsup": minsup}
    select_options.update(select_kwargs or {})
    start = time.perf_counter()
    translator_result = TranslatorSelect(**select_options).fit(dataset, codes)
    results.append(
        _summarise(
            dataset,
            translator_result.table,
            "translator-select(1)",
            time.perf_counter() - start,
            codes,
        )
    )

    significant_options = {"minsup": max(2, (minsup or 2))}
    significant_options.update(significant_kwargs or {})
    start = time.perf_counter()
    miner = SignificantRuleMiner(**significant_options)
    significant_rules = miner.mine(dataset)
    results.append(
        _summarise(
            dataset,
            rules_to_translation_table(significant_rules),
            "significant (magnum-opus-like)",
            time.perf_counter() - start,
            codes,
        )
    )

    redescription_options = {"min_support": max(2, (minsup or 2))}
    redescription_options.update(redescription_kwargs or {})
    start = time.perf_counter()
    reremi = ReremiMiner(**redescription_options)
    redescriptions = reremi.mine(dataset)
    results.append(
        _summarise(
            dataset,
            rules_to_translation_table(reremi.to_rules(redescriptions)),
            "redescription (reremi-like)",
            time.perf_counter() - start,
            codes,
        )
    )

    # Candidate cap keeps the per-candidate cover recomputation tractable
    # in pure Python; KRIMP raises its minsup adaptively to fit the cap.
    krimp_options = {"minsup": max(2, (minsup or 2)), "max_size": 6, "max_candidates": 1500}
    krimp_options.update(krimp_kwargs or {})
    start = time.perf_counter()
    joint, __ = dataset.joined()
    krimp_result = Krimp(**krimp_options).fit(joint)
    krimp_table, dropped = krimp_to_translation_table(krimp_result, dataset.n_left)
    results.append(
        _summarise(
            dataset,
            krimp_table,
            "krimp (as translation table)",
            time.perf_counter() - start,
            codes,
            notes=f"{dropped} single-view itemsets dropped",
        )
    )
    return results
