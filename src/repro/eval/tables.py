"""Plain-text table formatting for experiment reports.

All benchmark harnesses print their results as aligned text tables so the
reproduction output can be compared side by side with the paper's tables.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table"]


def _format_value(value: object, float_digits: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_digits: int = 2,
    title: str | None = None,
) -> str:
    """Format dict rows as an aligned text table.

    ``columns`` selects and orders the columns; by default the keys of the
    first row are used.  Missing values render as empty cells.
    """
    if not rows:
        return title or "(empty table)"
    if columns is None:
        columns = list(rows[0])
    cells = [
        [_format_value(row.get(column, ""), float_digits) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(row[index]) for row in cells))
        for index, column in enumerate(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)
