"""Swap-randomization significance testing of cross-view structure.

The paper argues that compression ratios directly reflect how much
cross-view structure a dataset contains ("if there is little or no
structure connecting the two views, this will be reflected in the
attained compression ratios").  This module turns that observation into
an empirical significance test, following the randomization methodology
common in pattern mining:

1. fit a translation table to the real data and record ``L%``;
2. destroy the cross-view association — while *exactly* preserving both
   views' internal structure and margins — by permuting the row order of
   one view (each permutation re-pairs the transactions at random);
3. re-fit on each randomized copy, collecting a null distribution of
   ``L%``;
4. the empirical p-value is the fraction of null ratios at most as small
   (as compressible) as the observed one.

A small p-value certifies that the discovered associations are properties
of the *pairing* of the views, not of either view alone.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.dataset import TwoViewDataset

__all__ = ["RandomizationResult", "permute_pairing", "randomization_test"]


@dataclasses.dataclass
class RandomizationResult:
    """Outcome of a swap-randomization test."""

    observed_ratio: float
    null_ratios: list[float]
    p_value: float

    @property
    def z_score(self) -> float:
        """Standardised distance of the observed ratio from the null."""
        null = np.asarray(self.null_ratios)
        spread = float(null.std())
        if spread == 0.0:
            return 0.0
        return float((self.observed_ratio - null.mean()) / spread)


def permute_pairing(
    dataset: TwoViewDataset, rng: np.random.Generator | int | None = None
) -> TwoViewDataset:
    """Re-pair the two views uniformly at random.

    Permutes the transaction order of the right view only: both views
    keep their exact contents (margins, within-view co-occurrences), but
    which left-row is paired with which right-row becomes random — the
    cross-view null model.
    """
    generator = np.random.default_rng(rng)
    order = generator.permutation(dataset.n_transactions)
    return TwoViewDataset(
        dataset.left,
        dataset.right[order],
        dataset.left_names,
        dataset.right_names,
        name=f"{dataset.name}[randomized]",
    )


def randomization_test(
    dataset: TwoViewDataset,
    translator,
    n_permutations: int = 20,
    rng: np.random.Generator | int | None = 0,
) -> RandomizationResult:
    """Empirical p-value of the observed compression ratio.

    ``translator`` is any object with ``fit(dataset)`` returning a result
    exposing ``.compression_ratio``.  Uses the add-one (Davison-Hinkley)
    estimator so the p-value is never exactly zero.
    """
    if n_permutations < 1:
        raise ValueError("n_permutations must be positive")
    generator = np.random.default_rng(rng)
    observed = translator.fit(dataset).compression_ratio
    null_ratios: list[float] = []
    for __ in range(n_permutations):
        randomized = permute_pairing(dataset, generator)
        null_ratios.append(translator.fit(randomized).compression_ratio)
    at_most = sum(1 for ratio in null_ratios if ratio <= observed)
    p_value = (at_most + 1) / (n_permutations + 1)
    return RandomizationResult(
        observed_ratio=observed, null_ratios=null_ratios, p_value=p_value
    )
