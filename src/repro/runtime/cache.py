"""Content-hashed on-disk result cache for sweep shards.

A sweep over ``datasets x params x seeds`` re-runs the same independent
fits again and again — across repeated benchmark invocations, across
interrupted runs, and across grid refinements that share most of their
cells.  :class:`ResultCache` memoises each cell on disk under a key that
hashes the *content* of the task (its canonical JSON payload plus the
library version), so

* a re-run of an identical sweep is served entirely from disk,
* refining a grid only pays for the new cells, and
* any change to the task payload — dataset spec, method, a single
  parameter, the seed — or to the library version yields a different
  key and therefore a cold cell (invalidation is automatic, never
  manual).

Values are JSON documents (one ``<key>.json`` file per entry, written
atomically via a temporary file + ``os.replace``) so cache directories
are portable, inspectable and safe under concurrent writers producing
identical content.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = ["CacheStats", "ResultCache", "content_key"]


def content_key(payload: object, *, salt: str = "") -> str:
    """Deterministic hex digest of an arbitrary JSON-serialisable payload.

    Args:
        payload: Any JSON-serialisable object.  Dict key order does not
            affect the digest (keys are sorted canonically).
        salt: Optional extra string folded into the digest — the sweep
            engine passes the library version here so upgrading the code
            invalidates old entries.

    Returns:
        A 64-character SHA-256 hex digest, usable as a filename.

    Example::

        >>> content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})
        True
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256((salt + "\x1f" + canonical).encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """Directory-backed key/value store for JSON-serialisable results.

    Args:
        directory: Cache root; created on first write if missing.

    Keys are content digests (see :func:`content_key`); values must be
    JSON-serialisable.  Lookups never raise on corrupt or missing files
    — they count as misses — so a cache directory can be deleted or
    truncated at any time.

    Example::

        >>> import tempfile
        >>> cache = ResultCache(tempfile.mkdtemp())
        >>> key = content_key({"task": "demo"})
        >>> cache.get(key) is None
        True
        >>> cache.put(key, {"answer": 42})
        >>> cache.get(key)
        {'answer': 42}
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Filesystem path of one cache entry (which may not exist yet)."""
        return self.directory / f"{key}.json"

    def get(self, key: str) -> object | None:
        """Return the stored value for ``key``, or ``None`` on a miss.

        A corrupt entry (truncated write, non-JSON content) is treated
        as a miss rather than an error.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
            value = json.loads(text)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value: object) -> None:
        """Store ``value`` (JSON-serialisable) under ``key`` atomically."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(value, sort_keys=True)
        handle, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(payload)
            os.replace(temp_name, self.path_for(key))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(
            1
            for name in self.directory.iterdir()
            if name.suffix == ".json" and not name.name.startswith(".tmp-")
        )

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if self.directory.is_dir():
            for path in list(self.directory.iterdir()):
                if path.suffix == ".json":
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed
