"""Sharded experiment sweeps: ``datasets x params x seeds`` grids.

The paper's evaluation (Tables 1-3, Figs. 2-7) is dozens of *independent*
translator fits — every (dataset, method, parameter setting, seed) cell
can run on its own worker.  This module turns such a grid into:

1. a flat list of declarative :class:`SweepTask` cells
   (:func:`expand_grid`),
2. a sharded execution over a :class:`~repro.runtime.executor.ParallelExecutor`
   with any backend (:func:`run_sweep`), and
3. a content-hashed on-disk cache
   (:class:`~repro.runtime.cache.ResultCache`) so repeated or refined
   sweeps only pay for new cells.

Tasks are *data*, not closures: a dataset is named by a registry name, a
``.2v`` path, or a ``{"synthetic": {...}} / {"noise": {...}}`` generator
spec, and a translator by its method name plus constructor parameters.
That keeps every cell picklable (process backend), hashable (cache key)
and serialisable (the ``repro-translator sweep`` CLI writes grids and
results as plain JSON).

Result ordering is deterministic: ``report.results[i]`` always belongs
to ``tasks[i]``, whatever backend ran the sweep and in whatever order
the shards finished.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

import repro
from repro.data.dataset import TwoViewDataset
from repro.data.io import load_dataset
from repro.data.registry import make_dataset
from repro.data.synthetic import SyntheticSpec, generate_planted, random_dataset
from repro.runtime.cache import ResultCache, content_key
from repro.runtime.executor import ParallelExecutor

__all__ = [
    "SweepTask",
    "SweepReport",
    "build_translator",
    "expand_grid",
    "resolve_dataset_spec",
    "run_sweep",
]

_METHODS = ("exact", "select", "greedy", "beam")


@dataclasses.dataclass(frozen=True)
class SweepTask:
    """One independent cell of a sweep grid.

    Args:
        dataset: Registry name (``"house"``), path to a ``.2v`` file, or
            a generator spec — ``{"synthetic": {...}}`` with
            :class:`~repro.data.synthetic.SyntheticSpec` fields, or
            ``{"noise": {...}}`` with
            :func:`~repro.data.synthetic.random_dataset` arguments.
        method: Translator to fit: ``"exact"``, ``"select"``,
            ``"greedy"`` or ``"beam"``.
        params: Constructor keyword arguments for the translator (e.g.
            ``{"k": 25, "minsup": 5}`` for SELECT).
        seed: Dataset seed.  Forwarded to generator specs that do not
            pin their own ``seed`` and to registry stand-ins; ``None``
            keeps each dataset's own default (stable per-name) seed.
        scale: Transaction-count scale for registry datasets.
        fallback_auto: When ``True``, a ``RuntimeError`` from candidate
            mining (e.g. ``minsup=1`` explodes) retries the fit with the
            method's auto-tuned defaults instead of failing the cell.
        tag: Free-form label echoed into the result row.

    Example::

        >>> task = SweepTask(dataset={"noise": {"n_transactions": 60,
        ...                                     "n_left": 4, "n_right": 4}},
        ...                  method="greedy", seed=1)
        >>> task.key() == task.key()
        True
    """

    dataset: str | Mapping[str, object]
    method: str = "select"
    params: Mapping[str, object] = dataclasses.field(default_factory=dict)
    seed: int | None = None
    scale: float | None = None
    fallback_auto: bool = False
    tag: str = ""

    def __post_init__(self) -> None:
        if self.method not in _METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; expected one of {_METHODS}"
            )

    def payload(self) -> dict[str, object]:
        """The canonical (JSON-serialisable) identity of this cell."""
        dataset = self.dataset
        if isinstance(dataset, Mapping):
            dataset = {kind: dict(spec) for kind, spec in dataset.items()}
        return {
            "dataset": dataset,
            "method": self.method,
            "params": dict(self.params),
            "seed": self.seed,
            "scale": self.scale,
            "fallback_auto": self.fallback_auto,
        }

    def key(self) -> str:
        """Content-hash cache key (library version folded in)."""
        return content_key(self.payload(), salt=f"repro-sweep/{repro.__version__}")


@dataclasses.dataclass
class SweepReport:
    """Outcome of :func:`run_sweep`.

    ``results[i]`` is the summary row of ``tasks[i]``: the translator's
    ``summary()`` dict plus ``seed``, ``tag``, ``converged``, ``notes``
    and ``cached`` fields.  ``cache_hits``/``cache_misses`` count cells
    served from / added to the on-disk cache (both zero when no cache
    directory was given).
    """

    tasks: list[SweepTask]
    results: list[dict[str, object]]
    elapsed_seconds: float
    n_jobs: int
    backend: str
    cache_hits: int = 0
    cache_misses: int = 0

    def rows(self) -> list[dict[str, object]]:
        """The result rows (alias used by table formatting helpers)."""
        return self.results


def build_translator(method: str, **params):
    """Construct a translator by method name.

    Args:
        method: ``"exact"``, ``"select"``, ``"greedy"`` or ``"beam"``.
        **params: Constructor keyword arguments of the chosen class
            (e.g. ``k``, ``minsup``, ``max_candidates`` for SELECT;
            ``max_rule_size``, ``n_jobs``, ``kernel`` for EXACT).

    Returns:
        A ready-to-``fit`` translator instance.

    Example::

        >>> translator = build_translator("select", k=2, minsup=5)
        >>> type(translator).__name__
        'TranslatorSelect'
    """
    from repro.core.beam import TranslatorBeam
    from repro.core.translator import (
        TranslatorExact,
        TranslatorGreedy,
        TranslatorSelect,
    )

    classes = {
        "exact": TranslatorExact,
        "select": TranslatorSelect,
        "greedy": TranslatorGreedy,
        "beam": TranslatorBeam,
    }
    if method not in classes:
        raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")
    return classes[method](**params)


def resolve_dataset_spec(
    spec: str | Mapping[str, object],
    scale: float | None = None,
    seed: int | None = None,
) -> TwoViewDataset:
    """Materialise a declarative dataset spec into a :class:`TwoViewDataset`.

    Args:
        spec: A registry name, a path to a ``.2v`` file, or a one-key
            mapping ``{"synthetic": {...}}`` /  ``{"noise": {...}}``.
        scale: Transaction-count scale for registry stand-ins.
        seed: Seed applied to generator specs that do not pin their own
            and to registry stand-ins (``None`` keeps their defaults).

    Returns:
        The materialised dataset.

    Example::

        >>> data = resolve_dataset_spec({"noise": {"n_transactions": 50,
        ...                                        "n_left": 4, "n_right": 4}})
        >>> data.n_transactions
        50
    """
    if isinstance(spec, str):
        if Path(spec).exists():
            return load_dataset(spec)
        return make_dataset(spec, scale=scale, seed=seed)
    if isinstance(spec, Mapping):
        if len(spec) != 1:
            raise ValueError(
                "generator specs must be a one-key mapping "
                "{'synthetic': {...}} or {'noise': {...}}"
            )
        kind, args = next(iter(spec.items()))
        args = dict(args)
        if seed is not None and "seed" not in args:
            args["seed"] = seed
        if kind == "synthetic":
            dataset, __ = generate_planted(SyntheticSpec(**args))
            return dataset
        if kind == "noise":
            return random_dataset(**args)
        raise ValueError(f"unknown dataset generator {kind!r}")
    raise TypeError(f"cannot resolve dataset spec of type {type(spec).__name__}")


def _execute_task(task: SweepTask) -> dict[str, object]:
    """Fit one sweep cell and return its summary row (picklable worker)."""
    dataset = resolve_dataset_spec(task.dataset, scale=task.scale, seed=task.seed)
    translator = build_translator(task.method, **dict(task.params))
    notes = ""
    start = time.perf_counter()
    try:
        result = translator.fit(dataset)
    except RuntimeError:
        if not task.fallback_auto:
            raise
        # Candidate mining overflowed under the requested threshold; the
        # paper's recipe is to fall back to an auto-tuned minsup.
        result = build_translator(task.method).fit(dataset)
        notes = "auto minsup fallback"
    row = result.summary()
    if not getattr(result, "converged", True):
        notes = (notes + "; " if notes else "") + "node budget hit"
    row.update(
        {
            "seed": task.seed,
            "params": dict(task.params),
            "tag": task.tag,
            "converged": bool(getattr(result, "converged", True)),
            "notes": notes,
            "cached": False,
            "task_seconds": time.perf_counter() - start,
            "rules": [str(rule) for rule in result.table],
        }
    )
    return row


def expand_grid(
    datasets: Sequence[str | Mapping[str, object]],
    methods: Sequence[str] = ("select",),
    params: Mapping[str, Sequence[object]] | None = None,
    seeds: Iterable[int | None] = (None,),
    scale: float | None = None,
    fallback_auto: bool = False,
) -> list[SweepTask]:
    """Cartesian-product a grid definition into a flat task list.

    Args:
        datasets: Dataset specs (see :class:`SweepTask`).
        methods: Translator method names.
        params: Mapping from constructor parameter name to the list of
            values to sweep; the cross product of all value lists is
            taken.  ``None`` means a single empty parameter setting.
        seeds: Dataset seeds (``None`` = each dataset's default).
        scale: Registry transaction-count scale applied to every task.
        fallback_auto: Forwarded to every task.

    Returns:
        Tasks ordered dataset-major, then method, then parameter
        combination, then seed — the order ``run_sweep`` reports in.

    Example::

        >>> tasks = expand_grid(["house"], methods=["greedy", "select"],
        ...                     params={"minsup": [2, 5]}, seeds=[0, 1])
        >>> len(tasks)
        8
    """
    grid_names = sorted(params) if params else []
    value_lists = [list(params[name]) for name in grid_names] if params else []
    combos = list(itertools.product(*value_lists)) if grid_names else [()]
    tasks = []
    for dataset in datasets:
        for method in methods:
            for combo in combos:
                for seed in seeds:
                    tasks.append(
                        SweepTask(
                            dataset=dataset,
                            method=method,
                            params=dict(zip(grid_names, combo)),
                            seed=seed,
                            scale=scale,
                            fallback_auto=fallback_auto,
                        )
                    )
    return tasks


def run_sweep(
    tasks: Sequence[SweepTask],
    n_jobs: int | None = 1,
    backend: str = "auto",
    cache_dir: str | Path | None = None,
    executor: ParallelExecutor | None = None,
) -> SweepReport:
    """Run a sweep grid, sharded across workers, through the result cache.

    Args:
        tasks: The cells to run (see :func:`expand_grid`).
        n_jobs: Worker count (``None``/``-1`` = all CPUs).
        backend: Executor backend; ``"auto"`` resolves to ``"serial"``
            for one worker and ``"process"`` otherwise (sweep cells are
            coarse, CPU-bound and picklable).
        cache_dir: Optional directory for the content-hashed result
            cache; cells whose key is present are served from disk.
        executor: Pre-built :class:`ParallelExecutor` overriding
            ``n_jobs``/``backend``.

    Returns:
        A :class:`SweepReport` whose ``results`` align one-to-one with
        ``tasks`` regardless of execution order.

    Example::

        >>> noise = {"noise": {"n_transactions": 40, "n_left": 3, "n_right": 3}}
        >>> report = run_sweep(expand_grid([noise], methods=["greedy"]))
        >>> len(report.results)
        1
    """
    start = time.perf_counter()
    tasks = list(tasks)
    if executor is None:
        if backend == "auto":
            resolved = ParallelExecutor(n_jobs=n_jobs)
            backend = "serial" if resolved.n_jobs == 1 else "process"
        # chunk_size=1: sweep cells are coarse and heterogeneous (grid
        # order groups expensive cells together), so even per-worker
        # chunks would serialize the slow ones behind each other.
        executor = ParallelExecutor(n_jobs=n_jobs, backend=backend, chunk_size=1)
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    results: list[dict[str, object] | None] = [None] * len(tasks)
    pending: list[tuple[int, SweepTask, str | None]] = []
    hits = 0
    for index, task in enumerate(tasks):
        key = task.key() if cache is not None else None
        if cache is not None:
            value = cache.get(key)
            if value is not None:
                value = dict(value)
                value["cached"] = True
                # tag is a display label outside the cache key: restore
                # this run's, not the storing run's.
                value["tag"] = task.tag
                results[index] = value
                hits += 1
                continue
        pending.append((index, task, key))

    fresh = executor.map(_execute_task, [task for __, task, __key in pending])
    for (index, __task, key), row in zip(pending, fresh):
        results[index] = row
        if cache is not None:
            cache.put(key, row)

    return SweepReport(
        tasks=tasks,
        results=[row for row in results if row is not None],
        elapsed_seconds=time.perf_counter() - start,
        n_jobs=executor.n_jobs,
        backend=executor.backend,
        cache_hits=hits,
        cache_misses=len(pending) if cache is not None else 0,
    )
