"""Parallel experiment runtime: executors, result caching, sharded sweeps.

The paper's evaluation is embarrassingly parallel — dozens of
independent translator fits over ``datasets x params x seeds`` grids.
This package supplies the machinery to run them at hardware speed:

* :mod:`~repro.runtime.executor` — :class:`ParallelExecutor`, one
  deterministic ``map`` over serial / thread / process backends with
  chunked submission.
* :mod:`~repro.runtime.cache` — :class:`ResultCache`, a content-hashed
  on-disk cache so repeated or refined sweeps only pay for new cells.
* :mod:`~repro.runtime.sweep` — :class:`SweepTask` grids,
  :func:`expand_grid` and :func:`run_sweep`, sharding independent fits
  across workers with cached, deterministically ordered results.

The same executor also powers *intra-fit* parallelism: pass
``n_jobs=`` to :class:`repro.core.translator.TranslatorExact`,
:class:`repro.core.search.ExactRuleSearch` or
:class:`repro.core.beam.TranslatorBeam` to partition candidate scoring
and beam expansion across workers while keeping results bit-identical
to the serial path.

Quickstart::

    from repro.runtime import expand_grid, run_sweep

    grid = expand_grid(
        datasets=["house", "tictactoe"],
        methods=["select", "greedy"],
        params={"minsup": [2, 5]},
        seeds=[0, 1],
        scale=0.1,
    )
    report = run_sweep(grid, n_jobs=4, cache_dir=".repro-cache")
    for row in report.results:
        print(row["dataset"], row["method"], row["compression_ratio"])
"""

from repro.runtime.cache import CacheStats, ResultCache, content_key
from repro.runtime.executor import BACKENDS, ParallelExecutor, effective_n_jobs
from repro.runtime.sweep import (
    SweepReport,
    SweepTask,
    build_translator,
    expand_grid,
    resolve_dataset_spec,
    run_sweep,
)

__all__ = [
    "BACKENDS",
    "CacheStats",
    "ParallelExecutor",
    "ResultCache",
    "SweepReport",
    "SweepTask",
    "build_translator",
    "content_key",
    "effective_n_jobs",
    "expand_grid",
    "resolve_dataset_spec",
    "run_sweep",
]
