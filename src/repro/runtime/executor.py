"""Worker-pool abstraction with deterministic result ordering.

Every parallel consumer in the library — the sweep engine
(:mod:`repro.runtime.sweep`), the sharded exact search
(:class:`repro.core.search.ExactRuleSearch` with ``n_jobs > 1``) and the
beam expander (:class:`repro.core.beam.TranslatorBeam`) — talks to the
same tiny surface: :class:`ParallelExecutor`.  It hides three backends
behind one ``map``:

* ``"serial"`` — run in the calling thread; the reference behaviour and
  the fallback whenever ``n_jobs == 1``.
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; the
  right choice for numpy-heavy shards (BLAS releases the GIL) and for
  closures over live objects that cannot be pickled.
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`;
  the right choice for independent CPU-bound fits (the sweep engine's
  default on multi-core hosts).  Functions and arguments must be
  picklable.

``"auto"`` picks ``"serial"`` for one job and ``"thread"`` otherwise —
callers that ship picklable, coarse-grained work opt into ``"process"``
explicitly.

Determinism is part of the contract: :meth:`ParallelExecutor.map`
*always* returns results in the order of its input iterable, whatever
backend ran them and in whatever order they finished.  Tasks are
submitted in chunks (``chunk_size``) to amortise inter-process transfer
without giving up that ordering.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

__all__ = ["BACKENDS", "ParallelExecutor", "effective_n_jobs"]

BACKENDS = ("auto", "serial", "thread", "process")


def effective_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` request to a concrete positive worker count.

    Args:
        n_jobs: ``None`` or ``-1`` mean "all available CPUs"; any other
            negative value ``-k`` means "all but ``k - 1`` CPUs"
            (joblib's convention); positive values pass through.

    Returns:
        The number of workers to use, always at least 1.

    Example::

        >>> effective_n_jobs(2)
        2
        >>> effective_n_jobs(1)
        1
    """
    cpus = os.cpu_count() or 1
    if n_jobs is None or n_jobs == -1:
        return cpus
    if n_jobs < 0:
        return max(1, cpus + 1 + n_jobs)
    if n_jobs == 0:
        raise ValueError("n_jobs must be positive, -1, or None")
    return n_jobs


def _run_chunk(function: Callable, chunk: Sequence) -> list:
    """Apply ``function`` to each element of one submitted chunk."""
    return [function(item) for item in chunk]


class ParallelExecutor:
    """Deterministically ordered ``map`` over serial/thread/process workers.

    Args:
        n_jobs: Worker count (``None``/``-1`` = all CPUs; see
            :func:`effective_n_jobs`).
        backend: One of ``"auto"``, ``"serial"``, ``"thread"``,
            ``"process"``.  ``"auto"`` resolves to ``"serial"`` when one
            worker is requested and ``"thread"`` otherwise.
        chunk_size: Items per submitted task; ``None`` divides the input
            evenly so every worker receives about one chunk.

    The executor is reusable and cheap to construct: pools are created
    per :meth:`map` call and torn down before it returns, so holding an
    instance never pins OS threads or processes.

    Example::

        >>> executor = ParallelExecutor(n_jobs=2, backend="thread")
        >>> executor.map(len, ["a", "bb", "ccc"])
        [1, 2, 3]
    """

    def __init__(
        self,
        n_jobs: int | None = 1,
        backend: str = "auto",
        chunk_size: int | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.n_jobs = effective_n_jobs(n_jobs)
        if backend == "auto":
            backend = "serial" if self.n_jobs == 1 else "thread"
        if backend == "serial":
            self.n_jobs = 1
        self.backend = backend
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    def _chunks(self, items: Sequence) -> list[Sequence]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(items) // self.n_jobs))
        return [items[start : start + size] for start in range(0, len(items), size)]

    def map(self, function: Callable, items: Iterable) -> list:
        """Apply ``function`` to every item, preserving input order.

        Args:
            function: A callable of one argument.  Must be picklable
                (a module-level function) under the ``"process"``
                backend.
            items: The inputs; consumed eagerly.

        Returns:
            ``[function(item) for item in items]`` — computed by the
            configured backend but always in input order.  Exceptions
            raised by ``function`` propagate to the caller.
        """
        items = list(items)
        if not items:
            return []
        if self.backend == "serial" or self.n_jobs == 1 or len(items) == 1:
            return [function(item) for item in items]
        chunks = self._chunks(items)
        workers = min(self.n_jobs, len(chunks))
        pool_class = (
            ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        )
        with pool_class(max_workers=workers) as pool:
            futures = [pool.submit(_run_chunk, function, chunk) for chunk in chunks]
            results: list = []
            for future in futures:
                results.extend(future.result())
        return results

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(n_jobs={self.n_jobs}, backend={self.backend!r}, "
            f"chunk_size={self.chunk_size})"
        )
