"""Serialisation of two-view datasets.

Two formats are supported:

* The native ``.2v`` text format: a self-describing, line-oriented format
  storing both vocabularies followed by one sparse transaction per line.
  This is the format used by the examples and the CLI.
* Dense CSV export (one file per view) for interoperability with external
  tools.

The ``.2v`` format::

    #2v <name>
    #left <item> <item> ...
    #right <item> <item> ...
    #schema-left <json>          (optional, when the dataset carries one)
    #schema-right <json>         (optional)
    <left indices> | <right indices>
    ...

Indices are 0-based within their view and space-separated; an empty side is
written as an empty index list.  The optional ``#schema-*`` lines carry the
views' :class:`~repro.data.schema.ViewSchema` payloads as compact JSON;
readers that predate them skip any ``#``-prefixed body line, so schema-less
and schema-carrying files are mutually compatible.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.data.dataset import TwoViewDataset
from repro.data.schema import ViewSchema

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_csv",
    "load_csv",
    "load_fimi",
    "load_fimi_pair",
]

_MAGIC = "#2v"


def save_dataset(dataset: TwoViewDataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` in the native ``.2v`` format.

    Args:
        dataset: The dataset to serialise (matrices, item names, name).
        path: Destination file; conventionally suffixed ``.2v``.  The
            format is a line-oriented text file (header, item names,
            one ``left|right`` item-list pair per transaction) that
            round-trips exactly through :func:`load_dataset`.
    """
    path = Path(path)
    lines = [
        f"{_MAGIC} {dataset.name}",
        "#left " + " ".join(dataset.left_names),
        "#right " + " ".join(dataset.right_names),
    ]
    for prefix, schema in (
        ("#schema-left ", dataset.left_schema),
        ("#schema-right ", dataset.right_schema),
    ):
        if schema is not None:
            lines.append(
                prefix
                + json.dumps(schema.to_payload(), separators=(",", ":"), sort_keys=True)
            )
    for row in range(dataset.n_transactions):
        left_part = " ".join(map(str, np.flatnonzero(dataset.left[row]).tolist()))
        right_part = " ".join(map(str, np.flatnonzero(dataset.right[row]).tolist()))
        lines.append(f"{left_part} | {right_part}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_dataset(path: str | Path) -> TwoViewDataset:
    """Load a dataset previously written with :func:`save_dataset`.

    Args:
        path: A ``.2v`` file.

    Returns:
        The reconstructed :class:`TwoViewDataset` — identical to the
        saved one (matrices, item names and dataset name round-trip).

    Raises:
        ValueError: If the file does not start with the ``.2v`` header.
    """
    path = Path(path)
    with path.open(encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if not header.startswith(_MAGIC):
            raise ValueError(f"{path} is not a .2v file (missing {_MAGIC} header)")
        name = header[len(_MAGIC) :].strip() or "unnamed"
        left_line = handle.readline().rstrip("\n")
        right_line = handle.readline().rstrip("\n")
        if not left_line.startswith("#left") or not right_line.startswith("#right"):
            raise ValueError(f"{path} is missing vocabulary headers")
        left_names = left_line.split()[1:]
        right_names = right_line.split()[1:]
        left_schema = right_schema = None
        left_rows: list[list[int]] = []
        right_rows: list[list[int]] = []
        for line_number, line in enumerate(handle, start=4):
            line = line.strip()
            if line.startswith("#schema-left "):
                left_schema = ViewSchema.from_payload(
                    json.loads(line[len("#schema-left ") :])
                )
                continue
            if line.startswith("#schema-right "):
                right_schema = ViewSchema.from_payload(
                    json.loads(line[len("#schema-right ") :])
                )
                continue
            if not line or line.startswith("#"):
                continue
            if "|" not in line:
                raise ValueError(f"{path}:{line_number}: missing '|' separator")
            left_part, right_part = line.split("|", 1)
            left_rows.append([int(token) for token in left_part.split()])
            right_rows.append([int(token) for token in right_part.split()])
    left = np.zeros((len(left_rows), len(left_names)), dtype=bool)
    right = np.zeros((len(right_rows), len(right_names)), dtype=bool)
    for row, columns in enumerate(left_rows):
        left[row, columns] = True
    for row, columns in enumerate(right_rows):
        right[row, columns] = True
    return TwoViewDataset(
        left,
        right,
        left_names,
        right_names,
        name=name,
        left_schema=left_schema,
        right_schema=right_schema,
    )


def save_csv(dataset: TwoViewDataset, left_path: str | Path, right_path: str | Path) -> None:
    """Export both views as dense 0/1 CSV files with a header row."""
    for path, names, matrix in (
        (left_path, dataset.left_names, dataset.left),
        (right_path, dataset.right_names, dataset.right),
    ):
        with Path(path).open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for row in matrix.astype(int):
                writer.writerow(row.tolist())


def load_csv(
    left_path: str | Path, right_path: str | Path, name: str = "csv"
) -> TwoViewDataset:
    """Load a dataset from two dense 0/1 CSV files written by :func:`save_csv`."""

    def read_view(path: str | Path) -> tuple[list[str], np.ndarray]:
        with Path(path).open(newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            rows = [[int(value) for value in row] for row in reader]
        return header, np.array(rows, dtype=bool)

    left_names, left = read_view(left_path)
    right_names, right = read_view(right_path)
    return TwoViewDataset(left, right, left_names, right_names, name=name)


def _read_fimi_rows(path: str | Path) -> list[list[int]]:
    rows: list[list[int]] = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            rows.append([int(token) for token in line.split()])
    return rows


def load_fimi(
    path: str | Path,
    n_left: int,
    n_items: int | None = None,
    name: str | None = None,
) -> TwoViewDataset:
    """Load a FIMI-style transaction file and split it into two views.

    FIMI files (the format of the LUCS/KDD repository the paper draws
    from) hold one transaction per line as space-separated item ids.
    Items ``0 .. n_left-1`` form the left view, the rest the right view;
    ``n_items`` fixes the total vocabulary when trailing items never
    occur.
    """
    rows = _read_fimi_rows(path)
    max_item = max((max(row) for row in rows if row), default=-1)
    total = max_item + 1 if n_items is None else n_items
    if total < n_left:
        raise ValueError("n_left exceeds the number of items in the file")
    left = np.zeros((len(rows), n_left), dtype=bool)
    right = np.zeros((len(rows), total - n_left), dtype=bool)
    for row_index, row in enumerate(rows):
        for item in row:
            if item >= total:
                raise ValueError(f"item id {item} exceeds n_items={total}")
            if item < n_left:
                left[row_index, item] = True
            else:
                right[row_index, item - n_left] = True
    return TwoViewDataset(
        left, right, name=name or Path(path).stem
    )


def load_fimi_pair(
    left_path: str | Path, right_path: str | Path, name: str | None = None
) -> TwoViewDataset:
    """Load a two-view dataset from two aligned FIMI files.

    Both files must have the same number of transactions; line ``i`` of
    each file describes the same object (the format the original
    TRANSLATOR release uses for its view splits).
    """
    left_rows = _read_fimi_rows(left_path)
    right_rows = _read_fimi_rows(right_path)
    if len(left_rows) != len(right_rows):
        raise ValueError(
            "view files have different transaction counts: "
            f"{len(left_rows)} != {len(right_rows)}"
        )
    n_left = max((max(row) for row in left_rows if row), default=-1) + 1
    n_right = max((max(row) for row in right_rows if row), default=-1) + 1
    left = np.zeros((len(left_rows), n_left), dtype=bool)
    right = np.zeros((len(right_rows), n_right), dtype=bool)
    for row_index, row in enumerate(left_rows):
        left[row_index, row] = True
    for row_index, row in enumerate(right_rows):
        right[row_index, row] = True
    return TwoViewDataset(
        left, right, name=name or f"{Path(left_path).stem}+{Path(right_path).stem}"
    )
