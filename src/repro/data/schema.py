"""Invertible attribute schemas for Booleanised views.

Booleanisation (:mod:`repro.data.preprocessing`) maps every source column
of a tabular frame onto one or more Boolean items — bins of a numeric
attribute, one-hot categories, or a passthrough flag.  A
:class:`ViewSchema` records, per item, *where it came from*: the source
column, the half-open bin interval ``[lo, hi)`` (closed on the right for
the last bin), the category value, and an optional measurement unit.

The mapping is **invertible**: from the schema alone one can reconstruct
the exact bin edges the discretiser produced, so a rule rendered as
``age ∈ [30, 45)`` can be mapped back to the precise column of the
Boolean matrix it tests.  Schemas serialise to JSON-stable payloads
(:meth:`ViewSchema.to_payload` / :meth:`ViewSchema.from_payload` are
byte-exact inverses, enforced by ``scripts/check_schema.py``) and travel
with datasets, translation-table payloads, serving artifacts and the
RPROBIN1 sidecar.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

__all__ = ["SCHEMA_VERSION", "ItemSchema", "ViewSchema"]

#: On-disk schema version of :meth:`ViewSchema.to_payload`.
SCHEMA_VERSION = 1

_KINDS = ("numeric", "category", "flag")


def _format_edge(value: float) -> str:
    """Compact, unambiguous rendering of a bin edge."""
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    text = f"{value:g}"
    return text


@dataclasses.dataclass(frozen=True)
class ItemSchema:
    """Provenance of one Boolean item.

    Attributes
    ----------
    name:
        The item name as it appears in the dataset vocabulary
        (e.g. ``"age=bin3"``).
    source:
        The source column the item was derived from (e.g. ``"age"``).
    kind:
        ``"numeric"`` (a discretisation bin), ``"category"`` (a one-hot
        category) or ``"flag"`` (a passthrough Boolean column).
    lo, hi:
        Bin edges for numeric items: the item is true iff
        ``lo <= value < hi`` (``<= hi`` when ``closed_hi``).
    closed_hi:
        Whether the right edge is inclusive (true for the last bin of an
        attribute, so the attribute's bins tile its observed range).
    value:
        The category value for ``"category"`` items (any JSON scalar).
    unit:
        Optional measurement unit, rendered after the interval.
    """

    name: str
    source: str
    kind: str
    lo: float | None = None
    hi: float | None = None
    closed_hi: bool = False
    value: object = None
    unit: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown item kind {self.kind!r}; expected one of {_KINDS}")
        if self.kind == "numeric" and (self.lo is None or self.hi is None):
            raise ValueError("numeric items need both lo and hi edges")

    def contains(self, value: float) -> bool:
        """Whether a numeric ``value`` falls in this item's bin."""
        if self.kind != "numeric":
            raise ValueError(f"contains() is only defined for numeric items, not {self.kind!r}")
        if self.closed_hi:
            return self.lo <= value <= self.hi
        return self.lo <= value < self.hi

    def label(self) -> str:
        """Human-readable rendering in original units.

        Numeric bins render as ``age ∈ [30, 45)`` (``]`` when the right
        edge is inclusive), categories as ``color = red``, flags as the
        bare source column name.
        """
        if self.kind == "numeric":
            close = "]" if self.closed_hi else ")"
            text = f"{self.source} ∈ [{_format_edge(self.lo)}, {_format_edge(self.hi)}{close}"
            if self.unit:
                text += f" {self.unit}"
            return text
        if self.kind == "category":
            return f"{self.source} = {self.value}"
        return self.source

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation; ``None`` fields are omitted."""
        payload: dict[str, object] = {
            "name": self.name,
            "source": self.source,
            "kind": self.kind,
        }
        if self.kind == "numeric":
            payload["lo"] = self.lo
            payload["hi"] = self.hi
            payload["closed_hi"] = self.closed_hi
        if self.kind == "category":
            payload["value"] = self.value
        if self.unit is not None:
            payload["unit"] = self.unit
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ItemSchema":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload["name"]),
            source=str(payload["source"]),
            kind=str(payload["kind"]),
            lo=payload.get("lo"),
            hi=payload.get("hi"),
            closed_hi=bool(payload.get("closed_hi", False)),
            value=payload.get("value"),
            unit=payload.get("unit"),
        )


class ViewSchema:
    """Per-item provenance for one Boolean view.

    Behaves as an immutable sequence of :class:`ItemSchema`, aligned with
    the view's columns: ``schema[j]`` describes item (column) ``j``.

    Example::

        >>> from repro.data.schema import ItemSchema, ViewSchema
        >>> schema = ViewSchema([
        ...     ItemSchema("age=bin0", "age", "numeric", lo=30.0, hi=45.0)])
        >>> schema.label(0)
        'age ∈ [30, 45)'
    """

    def __init__(self, items: Iterable[ItemSchema]) -> None:
        self._items = tuple(items)
        for item in self._items:
            if not isinstance(item, ItemSchema):
                raise TypeError(f"expected ItemSchema, got {type(item).__name__}")

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __getitem__(self, index: int) -> ItemSchema:
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViewSchema):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:
        return f"ViewSchema({len(self._items)} items, {len(set(self.sources))} sources)"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def names(self) -> list[str]:
        """Item names in column order (the view's vocabulary)."""
        return [item.name for item in self._items]

    @property
    def sources(self) -> list[str]:
        """Source column of every item, in column order."""
        return [item.source for item in self._items]

    def label(self, index: int) -> str:
        """Human-readable label of item ``index`` (original units)."""
        return self._items[index].label()

    def labels(self) -> list[str]:
        """Labels of all items, in column order."""
        return [item.label() for item in self._items]

    def items_for(self, source: str) -> list[int]:
        """Column indices of the items derived from ``source``."""
        return [index for index, item in enumerate(self._items) if item.source == source]

    def bin_edges(self, source: str) -> list[float]:
        """Reconstruct the sorted bin-edge list of a numeric ``source``.

        This is the invertibility guarantee: the edges returned here are
        exactly the edges the discretiser produced (every ``lo`` and
        ``hi`` of the source's numeric items, deduplicated and sorted).
        """
        edges: set[float] = set()
        for item in self._items:
            if item.source == source and item.kind == "numeric":
                edges.add(float(item.lo))
                edges.add(float(item.hi))
        if not edges:
            raise KeyError(f"no numeric items for source {source!r}")
        return sorted(edges)

    def subset(self, columns: Sequence[int]) -> "ViewSchema":
        """Schema restricted to the given columns, in the given order."""
        return ViewSchema(self._items[column] for column in columns)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, object]:
        """JSON-serialisable dict; byte-exact inverse of :meth:`from_payload`."""
        return {
            "schema_version": SCHEMA_VERSION,
            "items": [item.to_dict() for item in self._items],
        }

    @classmethod
    def from_payload(cls, payload: object) -> "ViewSchema":
        """Inverse of :meth:`to_payload`.

        A payload newer than :data:`SCHEMA_VERSION` is rejected rather
        than silently misread.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"schema payload must be a dict, got {type(payload).__name__}")
        version = payload.get("schema_version")
        if not isinstance(version, int) or not 1 <= version <= SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema_version {version!r} "
                f"(this library reads versions 1..{SCHEMA_VERSION})"
            )
        items = payload.get("items")
        if not isinstance(items, list):
            raise ValueError("schema payload has no 'items' list")
        return cls(ItemSchema.from_dict(entry) for entry in items)
