"""The Boolean two-view data model.

A two-view dataset ``D`` is a bag of transactions over two disjoint item
vocabularies ``I_L`` (left) and ``I_R`` (right).  Each transaction ``t`` is
a pair of itemsets ``(t_L, t_R)`` describing the same object (paper,
Section 3).  Internally both views are stored as dense ``numpy`` Boolean
matrices with one row per transaction and one column per item; this is the
representation all mining and scoring code in the library operates on.

Items are addressed by ``(side, index)`` where ``side`` is
:data:`Side.LEFT` or :data:`Side.RIGHT` and ``index`` is the column in the
corresponding view.  Human-readable item names are kept alongside so rules
can be rendered for inspection (paper, Figs. 4-7).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["Side", "TwoViewDataset"]


class Side(enum.Enum):
    """Identifies one of the two views of a dataset.

    Values are ``Side.LEFT`` (``"L"``) and ``Side.RIGHT`` (``"R"``);
    most per-view APIs (support masks, code lengths, prediction) take a
    ``Side`` to say which matrix they operate on.

    Example::

        >>> from repro import Side
        >>> Side.LEFT.opposite
        <Side.RIGHT: 'R'>
    """

    LEFT = "L"
    RIGHT = "R"

    @property
    def opposite(self) -> "Side":
        """Return the other view."""
        return Side.RIGHT if self is Side.LEFT else Side.LEFT

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _as_bool_matrix(matrix: object, what: str) -> np.ndarray:
    """Validate and normalise a view matrix to a 2-D Boolean array."""
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise ValueError(f"{what} must be 2-dimensional, got shape {array.shape}")
    if array.dtype != bool:
        if not np.isin(array, (0, 1)).all():
            raise ValueError(f"{what} must be Boolean (0/1 valued)")
        array = array.astype(bool)
    return np.ascontiguousarray(array)


def _default_names(prefix: str, count: int) -> list[str]:
    return [f"{prefix}{index}" for index in range(count)]


class TwoViewDataset:
    """A Boolean dataset whose attributes are split into two views.

    Parameters
    ----------
    left, right:
        Boolean matrices of shape ``(n, |I_L|)`` and ``(n, |I_R|)``; row ``t``
        of each matrix is the transaction ``t`` projected on that view.
    left_names, right_names:
        Optional item names (column labels).  Defaults to ``L0, L1, ...`` and
        ``R0, R1, ...``.
    name:
        Optional dataset name used in reports.
    left_schema, right_schema:
        Optional :class:`~repro.data.schema.ViewSchema` provenance for the
        views' items (source column, bin edges, category value, unit),
        produced by the pre-processing pipeline.  When present, rules
        render in original units (``age ∈ [30, 45)``); purely Boolean
        datasets simply leave them ``None``.

    Examples
    --------
    >>> data = TwoViewDataset.from_transactions(
    ...     [({"a"}, {"x"}), ({"a", "b"}, {"x", "y"})],
    ...     left_names=["a", "b"], right_names=["x", "y"])
    >>> data.n_transactions, data.n_left, data.n_right
    (2, 2, 2)
    """

    def __init__(
        self,
        left: object,
        right: object,
        left_names: Sequence[str] | None = None,
        right_names: Sequence[str] | None = None,
        name: str = "unnamed",
        left_schema=None,
        right_schema=None,
    ) -> None:
        self.left = _as_bool_matrix(left, "left view")
        self.right = _as_bool_matrix(right, "right view")
        if self.left.shape[0] != self.right.shape[0]:
            raise ValueError(
                "views must have the same number of transactions: "
                f"{self.left.shape[0]} != {self.right.shape[0]}"
            )
        self.left_names = list(
            left_names
            if left_names is not None
            else _default_names("L", self.left.shape[1])
        )
        self.right_names = list(
            right_names
            if right_names is not None
            else _default_names("R", self.right.shape[1])
        )
        if len(self.left_names) != self.left.shape[1]:
            raise ValueError("left_names length does not match left view width")
        if len(self.right_names) != self.right.shape[1]:
            raise ValueError("right_names length does not match right view width")
        if len(set(self.left_names)) != len(self.left_names):
            raise ValueError("left item names must be unique")
        if len(set(self.right_names)) != len(self.right_names):
            raise ValueError("right item names must be unique")
        if left_schema is not None and len(left_schema) != self.left.shape[1]:
            raise ValueError("left_schema length does not match left view width")
        if right_schema is not None and len(right_schema) != self.right.shape[1]:
            raise ValueError("right_schema length does not match right view width")
        self.left_schema = left_schema
        self.right_schema = right_schema
        self.name = name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_transactions(
        cls,
        transactions: Iterable[tuple[Iterable[str], Iterable[str]]],
        left_names: Sequence[str] | None = None,
        right_names: Sequence[str] | None = None,
        name: str = "unnamed",
    ) -> "TwoViewDataset":
        """Build a dataset from ``(left_items, right_items)`` name pairs.

        When vocabularies are not given they are inferred from the data, in
        first-appearance order.
        """
        pairs = [
            (frozenset(left_part), frozenset(right_part))
            for left_part, right_part in transactions
        ]
        if left_names is None:
            seen: dict[str, None] = {}
            for left_part, _ in pairs:
                for item in sorted(left_part):
                    seen.setdefault(item, None)
            left_names = list(seen)
        if right_names is None:
            seen = {}
            for _, right_part in pairs:
                for item in sorted(right_part):
                    seen.setdefault(item, None)
            right_names = list(seen)
        left_index = {item: column for column, item in enumerate(left_names)}
        right_index = {item: column for column, item in enumerate(right_names)}
        left = np.zeros((len(pairs), len(left_names)), dtype=bool)
        right = np.zeros((len(pairs), len(right_names)), dtype=bool)
        for row, (left_part, right_part) in enumerate(pairs):
            for item in left_part:
                if item not in left_index:
                    raise ValueError(f"unknown left item {item!r}")
                left[row, left_index[item]] = True
            for item in right_part:
                if item not in right_index:
                    raise ValueError(f"unknown right item {item!r}")
                right[row, right_index[item]] = True
        return cls(left, right, left_names, right_names, name=name)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_transactions(self) -> int:
        """Number of transactions ``|D|``."""
        return self.left.shape[0]

    @property
    def n_left(self) -> int:
        """Size of the left item vocabulary ``|I_L|``."""
        return self.left.shape[1]

    @property
    def n_right(self) -> int:
        """Size of the right item vocabulary ``|I_R|``."""
        return self.right.shape[1]

    @property
    def n_items(self) -> int:
        """Total vocabulary size ``|I_L| + |I_R|``."""
        return self.n_left + self.n_right

    @property
    def density_left(self) -> float:
        """Fraction of ones in the left view (``d_L`` in Table 1)."""
        return float(self.left.mean()) if self.left.size else 0.0

    @property
    def density_right(self) -> float:
        """Fraction of ones in the right view (``d_R`` in Table 1)."""
        return float(self.right.mean()) if self.right.size else 0.0

    def view(self, side: Side) -> np.ndarray:
        """Return the Boolean matrix of ``side``."""
        return self.left if side is Side.LEFT else self.right

    def names(self, side: Side) -> list[str]:
        """Return the item names of ``side``."""
        return self.left_names if side is Side.LEFT else self.right_names

    def n_side(self, side: Side) -> int:
        """Return the vocabulary size of ``side``."""
        return self.n_left if side is Side.LEFT else self.n_right

    def schema(self, side: Side):
        """Return the :class:`~repro.data.schema.ViewSchema` of ``side`` (or ``None``)."""
        return self.left_schema if side is Side.LEFT else self.right_schema

    def item_label(self, side: Side, index: int) -> str:
        """Human-readable label of one item.

        When the side carries a schema, the label renders in original
        units (``age ∈ [30, 45)``, ``color = red``); otherwise it is the
        bare item name.
        """
        schema = self.schema(side)
        if schema is not None:
            return schema.label(index)
        return self.names(side)[index]

    def with_schemas(self, left_schema, right_schema) -> "TwoViewDataset":
        """Return a copy of the dataset carrying the given view schemas."""
        return TwoViewDataset(
            self.left,
            self.right,
            self.left_names,
            self.right_names,
            name=self.name,
            left_schema=left_schema,
            right_schema=right_schema,
        )

    # ------------------------------------------------------------------
    # Item-level queries
    # ------------------------------------------------------------------
    def item_counts(self, side: Side) -> np.ndarray:
        """Per-item occurrence counts in ``side`` (over all transactions)."""
        return self.view(side).sum(axis=0)

    def item_index(self, side: Side, item_name: str) -> int:
        """Return the column index of ``item_name`` in ``side``.

        Raises ``KeyError`` when the name is unknown.
        """
        try:
            return self.names(side).index(item_name)
        except ValueError:
            raise KeyError(f"unknown {side.value}-side item {item_name!r}") from None

    def support_mask(self, side: Side, items: Iterable[int]) -> np.ndarray:
        """Boolean mask of the transactions containing all ``items`` in ``side``.

        An empty itemset is contained in every transaction, mirroring the
        convention used by the paper's upper bounds (Section 5.2).
        """
        columns = list(items)
        matrix = self.view(side)
        if not columns:
            return np.ones(self.n_transactions, dtype=bool)
        return matrix[:, columns].all(axis=1)

    def support_count(self, side: Side, items: Iterable[int]) -> int:
        """``|supp(X)|`` of an itemset within one view."""
        return int(self.support_mask(side, items).sum())

    def joint_support_mask(
        self, left_items: Iterable[int], right_items: Iterable[int]
    ) -> np.ndarray:
        """Mask of transactions containing ``X`` in the left view and ``Y`` in the right."""
        return self.support_mask(Side.LEFT, left_items) & self.support_mask(
            Side.RIGHT, right_items
        )

    # ------------------------------------------------------------------
    # Transaction-level access
    # ------------------------------------------------------------------
    def transaction(self, row: int) -> tuple[frozenset[int], frozenset[int]]:
        """Return transaction ``row`` as a pair of item-index sets."""
        return (
            frozenset(np.flatnonzero(self.left[row]).tolist()),
            frozenset(np.flatnonzero(self.right[row]).tolist()),
        )

    def transaction_names(self, row: int) -> tuple[frozenset[str], frozenset[str]]:
        """Return transaction ``row`` as a pair of item-name sets."""
        left_part, right_part = self.transaction(row)
        return (
            frozenset(self.left_names[column] for column in left_part),
            frozenset(self.right_names[column] for column in right_part),
        )

    def iter_transactions(self):
        """Yield every transaction as a pair of item-index frozensets."""
        for row in range(self.n_transactions):
            yield self.transaction(row)

    # ------------------------------------------------------------------
    # Derived datasets
    # ------------------------------------------------------------------
    def subset(self, rows: Sequence[int] | np.ndarray, name: str | None = None) -> "TwoViewDataset":
        """Return a dataset restricted to the given transaction rows."""
        rows = np.asarray(rows)
        return TwoViewDataset(
            self.left[rows],
            self.right[rows],
            self.left_names,
            self.right_names,
            name=name if name is not None else f"{self.name}[subset]",
            left_schema=self.left_schema,
            right_schema=self.right_schema,
        )

    def sample(
        self, n_rows: int, rng: np.random.Generator | int | None = None
    ) -> "TwoViewDataset":
        """Return a uniform random sample (without replacement) of transactions."""
        if n_rows > self.n_transactions:
            raise ValueError("cannot sample more transactions than available")
        generator = np.random.default_rng(rng)
        rows = generator.choice(self.n_transactions, size=n_rows, replace=False)
        return self.subset(np.sort(rows), name=f"{self.name}[sample{n_rows}]")

    def split(
        self, fraction: float, rng: np.random.Generator | int | None = None
    ) -> tuple["TwoViewDataset", "TwoViewDataset"]:
        """Random split into two datasets (e.g. exploratory/holdout).

        ``fraction`` is the share of transactions in the first part.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        generator = np.random.default_rng(rng)
        order = generator.permutation(self.n_transactions)
        cut = int(round(fraction * self.n_transactions))
        cut = min(max(cut, 1), self.n_transactions - 1)
        first = self.subset(np.sort(order[:cut]), name=f"{self.name}[explore]")
        second = self.subset(np.sort(order[cut:]), name=f"{self.name}[holdout]")
        return first, second

    def swapped(self) -> "TwoViewDataset":
        """Return the dataset with the two views exchanged."""
        return TwoViewDataset(
            self.right,
            self.left,
            self.right_names,
            self.left_names,
            name=f"{self.name}[swapped]",
            left_schema=self.right_schema,
            right_schema=self.left_schema,
        )

    def joined(self) -> tuple[np.ndarray, list[str]]:
        """Concatenate the two views into one matrix (used by KRIMP).

        Returns the joint Boolean matrix and the joint item-name list; left
        items come first, so joint column ``j`` is left item ``j`` when
        ``j < n_left`` and right item ``j - n_left`` otherwise.
        """
        joint = np.concatenate([self.left, self.right], axis=1)
        names = [f"L:{name}" for name in self.left_names] + [
            f"R:{name}" for name in self.right_names
        ]
        return joint, names

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_transactions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TwoViewDataset):
            return NotImplemented
        return (
            self.left_names == other.left_names
            and self.right_names == other.right_names
            and np.array_equal(self.left, other.left)
            and np.array_equal(self.right, other.right)
        )

    def __repr__(self) -> str:
        return (
            f"TwoViewDataset(name={self.name!r}, n={self.n_transactions}, "
            f"|I_L|={self.n_left}, |I_R|={self.n_right}, "
            f"d_L={self.density_left:.3f}, d_R={self.density_right:.3f})"
        )

    def summary(self) -> dict[str, float | int | str]:
        """Return the Table-1 style statistics of the dataset."""
        return {
            "name": self.name,
            "n_transactions": self.n_transactions,
            "n_left": self.n_left,
            "n_right": self.n_right,
            "density_left": self.density_left,
            "density_right": self.density_right,
        }
