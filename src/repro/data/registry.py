"""Named stand-ins for the paper's 14 benchmark datasets (Table 1).

The originals live in the LUCS/KDD, UCI and MULAN repositories plus two
natural two-view collections (Mammals, Elections); none are available
offline.  For each of them this registry records the published statistics
(``|D|``, ``|I_L|``, ``|I_R|``, densities) and can generate a synthetic
stand-in of the *same shape* with planted cross-view structure via
:func:`make_dataset`.  Four stand-ins (House, CAL500, Mammals, Elections)
carry human-readable item names so the qualitative experiments
(Figs. 4-7) produce interpretable rules — including the ``Genre:Rock``
item needed by the Fig. 6 reproduction.

``scale`` rescales the number of transactions (items are never scaled),
letting the benchmark harness run the large datasets (Adult: 48 842 rows)
in seconds while keeping the full-size shapes available.
"""

from __future__ import annotations

import dataclasses
import os

from repro.data.dataset import TwoViewDataset
from repro.data.synthetic import SyntheticSpec, generate_planted

__all__ = [
    "PaperDatasetStats",
    "PAPER_DATASETS",
    "dataset_names",
    "paper_stats",
    "make_dataset",
    "default_scale",
]


@dataclasses.dataclass(frozen=True)
class PaperDatasetStats:
    """Published dataset statistics (paper, Table 1) plus generator tuning.

    ``baseline_bits`` is the paper's uncompressed size ``L(D, ∅)``;
    ``n_rules`` controls how many cross-view rules the stand-in plants
    (roughly tracking the ``|T|`` the paper reports in Table 2) and
    ``suggested_minsup`` is a per-dataset relative support threshold for
    candidate mining on the full-size stand-in.
    """

    name: str
    n_transactions: int
    n_left: int
    n_right: int
    density_left: float
    density_right: float
    baseline_bits: float
    n_rules: int
    suggested_minsup: float
    small: bool  # part of Table 2's minsup=1 (small datasets) group


PAPER_DATASETS: dict[str, PaperDatasetStats] = {
    stats.name: stats
    for stats in (
        PaperDatasetStats("abalone", 4177, 27, 31, 0.185, 0.129, 170748, 30, 0.01, True),
        PaperDatasetStats("adult", 48842, 44, 53, 0.179, 0.132, 2845491, 12, 0.10, False),
        PaperDatasetStats("cal500", 502, 78, 97, 0.241, 0.074, 76862, 25, 0.04, False),
        PaperDatasetStats("car", 1728, 15, 10, 0.267, 0.300, 42708, 8, 0.01, True),
        PaperDatasetStats("chesskrvk", 28056, 24, 34, 0.167, 0.088, 889555, 30, 0.01, True),
        PaperDatasetStats("crime", 2215, 244, 294, 0.201, 0.194, 1865057, 30, 0.09, False),
        PaperDatasetStats("elections", 1846, 82, 867, 0.061, 0.034, 451823, 25, 0.025, False),
        PaperDatasetStats("emotions", 593, 430, 12, 0.167, 0.501, 375288, 15, 0.07, False),
        PaperDatasetStats("house", 435, 26, 24, 0.347, 0.334, 31625, 15, 0.02, False),
        PaperDatasetStats("mammals", 2575, 95, 94, 0.172, 0.169, 468742, 20, 0.30, False),
        PaperDatasetStats("nursery", 12960, 19, 13, 0.263, 0.308, 453443, 10, 0.01, True),
        PaperDatasetStats("tictactoe", 958, 15, 14, 0.333, 0.357, 36396, 12, 0.01, True),
        PaperDatasetStats("wine", 178, 35, 33, 0.200, 0.212, 11608, 12, 0.01, True),
        PaperDatasetStats("yeast", 1484, 24, 26, 0.167, 0.192, 52697, 15, 0.01, True),
    )
}


def dataset_names() -> list[str]:
    """All registry dataset names, sorted.

    Returns:
        The names accepted by :func:`make_dataset` and the CLI's
        ``DATASET`` arguments: the paper's Table 1 collection
        (``"abalone"`` ... ``"yeast"``) plus the mixed-type datasets of
        :mod:`repro.data.mixed` (``"abalone-mixed"``,
        ``"winequality-mixed"``), which carry invertible view schemas.
        :func:`paper_stats` covers only the Table 1 names.

    Example::

        >>> from repro import dataset_names
        >>> "house" in dataset_names()
        True
    """
    from repro.data.mixed import MIXED_DATASETS

    return sorted(PAPER_DATASETS) + sorted(MIXED_DATASETS)


def paper_stats(name: str) -> PaperDatasetStats:
    """Return the published statistics for ``name`` (KeyError if unknown)."""
    try:
        return PAPER_DATASETS[name]
    except KeyError:
        known = ", ".join(dataset_names())
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None


def default_scale() -> float:
    """Benchmark scale factor, overridable with the ``REPRO_SCALE`` env var."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


# ----------------------------------------------------------------------
# Readable item names for the qualitative datasets
# ----------------------------------------------------------------------

_HOUSE_TOPICS = [
    "handicapped-infants",
    "water-project",
    "budget-resolution",
    "physician-fee-freeze",
    "el-salvador-aid",
    "religious-groups-in-schools",
    "anti-satellite-ban",
    "nicaraguan-contras-aid",
    "mx-missile",
    "immigration",
    "synfuels-cutback",
    "education-spending",
    "superfund-right-to-sue",
    "crime",
    "duty-free-exports",
    "export-south-africa",
]

_CAL500_LEFT_CONCEPTS = [
    "Emotion:Angry-Aggressive",
    "Emotion:Arousing-Awakening",
    "Emotion:Bizarre-Weird",
    "Emotion:Calming-Soothing",
    "Emotion:Carefree-Lighthearted",
    "Emotion:Cheerful-Festive",
    "Emotion:Emotional-Passionate",
    "Emotion:Exciting-Thrilling",
    "Emotion:Happy",
    "Emotion:Laid-back-Mellow",
    "Emotion:Light-Playful",
    "Emotion:Loving-Romantic",
    "Emotion:Pleasant-Comfortable",
    "Emotion:Positive-Optimistic",
    "Emotion:Powerful-Strong",
    "Emotion:Sad",
    "Emotion:Tender-Soft",
    "Emotion:Touching-Loving",
    "Song:Catchy",
    "Song:Changing-Energy-Level",
    "Song:Fast-Tempo",
    "Song:Heavy-Beat",
    "Song:High-Energy",
    "Song:Like",
    "Song:Memorable",
    "Song:Positive-Feelings",
    "Song:Quality",
    "Song:Recommend",
    "Song:Recorded",
    "Song:Texture-Acoustic",
    "Song:Texture-Electric",
    "Song:Texture-Synthesized",
    "Song:Tonality",
    "Song:Very-Danceable",
    "Usage:At-a-party",
    "Usage:At-work",
    "Usage:Cleaning-the-house",
    "Usage:Driving",
    "Usage:Exercising",
    "Usage:Getting-ready-to-go-out",
    "Usage:Going-to-sleep",
    "Usage:Hanging-with-friends",
    "Usage:Intensely-listening",
    "Usage:Reading",
    "Usage:Romancing",
    "Usage:Studying",
    "Usage:Waking-up",
    "Usage:With-the-family",
]

_CAL500_GENRES = [
    "Rock",
    "Alternative",
    "Alternative-Folk",
    "Bebop",
    "Blues",
    "Brit-Pop",
    "Classic-Rock",
    "Contemporary-Blues",
    "Contemporary-RnB",
    "Cool-Jazz",
    "Country",
    "Country-Blues",
    "Dance-Pop",
    "Electric-Blues",
    "Electronica",
    "Folk",
    "Funk",
    "Gospel",
    "Hip-Hop-Rap",
    "Jazz",
    "Metal-Hard-Rock",
    "Pop",
    "Punk",
    "RnB",
    "Roots-Rock",
    "Singer-Songwriter",
    "Soft-Rock",
    "Soul",
    "Swing",
    "World",
]

_CAL500_INSTRUMENTS = [
    "Acoustic-Guitar",
    "Ambient-Sounds",
    "Backing-Vocals",
    "Bass",
    "Drum-Machine",
    "Drum-Set",
    "Electric-Guitar-Clean",
    "Electric-Guitar-Distorted",
    "Female-Lead-Vocals",
    "Hand-Drums",
    "Harmonica",
    "Horn-Section",
    "Male-Lead-Vocals",
    "Organ",
    "Piano",
    "Samples",
    "Saxophone",
    "Sequencer",
    "String-Ensemble",
    "Synthesizer",
    "Tambourine",
    "Trombone",
    "Trumpet",
    "Violin-Fiddle",
]

_CAL500_VOCALS = [
    "Aggressive",
    "Altered-with-Effects",
    "Breathy",
    "Call-and-Response",
    "Duet",
    "Emotional",
    "Falsetto",
    "Gravelly",
    "High-pitched",
    "Low-pitched",
    "Monotone",
    "Rapping",
    "Screaming",
    "Spoken",
    "Strong",
    "Vocal-Harmonies",
]

_MAMMAL_SPECIES = [
    "European-Mole",
    "Red-Fox",
    "Harvest-Mouse",
    "European-Hare",
    "Mountain-Hare",
    "Red-Squirrel",
    "Eurasian-Beaver",
    "Bank-Vole",
    "Field-Vole",
    "Common-Shrew",
    "Pygmy-Shrew",
    "Water-Shrew",
    "Hedgehog",
    "Brown-Bear",
    "Grey-Wolf",
    "Eurasian-Lynx",
    "Wildcat",
    "Pine-Marten",
    "Beech-Marten",
    "Stoat",
    "Weasel",
    "Polecat",
    "Eurasian-Otter",
    "Badger",
    "Wild-Boar",
    "Red-Deer",
    "Roe-Deer",
    "Fallow-Deer",
    "Moose",
    "Chamois",
    "Alpine-Ibex",
    "Mouflon",
    "House-Mouse",
    "Wood-Mouse",
    "Yellow-necked-Mouse",
    "Striped-Field-Mouse",
    "Brown-Rat",
    "Black-Rat",
    "Common-Dormouse",
    "Edible-Dormouse",
    "Garden-Dormouse",
    "Northern-Birch-Mouse",
    "European-Souslik",
    "Alpine-Marmot",
    "Muskrat",
    "Common-Hamster",
    "Norway-Lemming",
    "Common-Pipistrelle",
    "Noctule",
    "Serotine",
    "Daubentons-Bat",
    "Natterers-Bat",
    "Brown-Long-eared-Bat",
    "Greater-Horseshoe-Bat",
    "Lesser-Horseshoe-Bat",
    "Barbastelle",
    "Pond-Bat",
    "Whiskered-Bat",
    "Brandts-Bat",
    "Leislers-Bat",
    "Parti-coloured-Bat",
    "Northern-Bat",
    "Grey-Long-eared-Bat",
    "Geoffroys-Bat",
    "Bechsteins-Bat",
    "Greater-Mouse-eared-Bat",
    "Lesser-Mouse-eared-Bat",
    "Schreibers-Bat",
    "European-Free-tailed-Bat",
    "Mediterranean-Horseshoe-Bat",
    "Blasius-Horseshoe-Bat",
    "Mehelys-Horseshoe-Bat",
    "Savis-Pipistrelle",
    "Kuhls-Pipistrelle",
    "Nathusius-Pipistrelle",
    "Snow-Vole",
    "Common-Vole",
    "Tundra-Vole",
    "Water-Vole",
    "Pine-Vole",
    "Root-Vole",
    "Grey-red-backed-Vole",
    "Ruddy-Vole",
    "Sibling-Vole",
    "Alpine-Shrew",
    "Laxmanns-Shrew",
    "Least-Shrew",
    "Mediterranean-Water-Shrew",
    "Millers-Water-Shrew",
    "Bicolored-White-toothed-Shrew",
    "Greater-White-toothed-Shrew",
    "Lesser-White-toothed-Shrew",
    "Etruscan-Shrew",
    "Blind-Mole",
    "Roman-Mole",
]

_FINNISH_PARTIES = [
    "Green-Party",
    "Change-2011",
    "National-Coalition",
    "Social-Democrats",
    "Centre-Party",
    "True-Finns",
    "Left-Alliance",
    "Swedish-Peoples-Party",
    "Christian-Democrats",
    "Pirate-Party",
]


def _pad_names(base: list[str], prefix: str, count: int) -> list[str]:
    """Return exactly ``count`` unique names, padding ``base`` if needed."""
    names = list(base[:count])
    next_id = 0
    while len(names) < count:
        candidate = f"{prefix}{next_id}"
        if candidate not in names:
            names.append(candidate)
        next_id += 1
    return names


def _house_names() -> tuple[list[str], list[str]]:
    items = ["party=democrat", "party=republican"]
    for topic in _HOUSE_TOPICS:
        for disposition in ("Y", "N", "?"):
            items.append(f"{topic}={disposition}")
    # 50 items; the paper's split is 26/24.
    return items[:26], items[26:50]


def _cal500_names() -> tuple[list[str], list[str]]:
    left = _pad_names(_CAL500_LEFT_CONCEPTS, "Concept:", 78)
    right = (
        [f"Genre:{genre}" for genre in _CAL500_GENRES]
        + [f"Instrument:{instrument}" for instrument in _CAL500_INSTRUMENTS]
        + [f"Vocals:{vocal}" for vocal in _CAL500_VOCALS]
    )
    return left, _pad_names(right, "Audio:", 97)


def _mammals_names() -> tuple[list[str], list[str]]:
    names = _pad_names(_MAMMAL_SPECIES, "Species-", 189)
    return names[:95], names[95:189]


def _elections_names() -> tuple[list[str], list[str]]:
    left = [f"party={party}" for party in _FINNISH_PARTIES]
    left += [f"age={bucket}" for bucket in ("18-29", "30-39", "40-49", "50-59", "60+")]
    left += [
        f"education={level}"
        for level in ("basic", "vocational", "bachelor", "master", "doctor")
    ]
    left = _pad_names(left, "profile:", 82)
    right: list[str] = []
    choices_per_question = 4
    question = 1
    while len(right) < 867:
        for choice in range(1, choices_per_question + 1):
            right.append(f"Q{question}=choice{choice}")
        right.append(f"Q{question}:important")
        question += 1
    return left, right[:867]


_NAMED_DATASETS = {
    "house": _house_names,
    "cal500": _cal500_names,
    "mammals": _mammals_names,
    "elections": _elections_names,
}


def make_dataset(
    name: str,
    scale: float | None = None,
    seed: int | None = None,
    discretize: str = "mdl",
    n_bins: int = 5,
) -> TwoViewDataset:
    """Generate the synthetic stand-in for a paper dataset.

    Parameters
    ----------
    name:
        A Table 1 dataset name, or a mixed-type name
        (``"abalone-mixed"``/``"winequality-mixed"``) routed to
        :func:`repro.data.mixed.make_mixed_dataset` — those builds are
        checksum-pinned and return schema-carrying datasets.
    scale:
        Multiplier on the number of transactions (vocabularies are kept at
        the published size).  Defaults to :func:`default_scale`, i.e. the
        ``REPRO_SCALE`` environment variable or 1.0.
    seed:
        RNG seed; defaults to a stable per-dataset seed so repeated calls
        return identical data.  Ignored for the mixed datasets (their
        generation is pinned).
    discretize, n_bins:
        Binning controls for the mixed datasets' continuous columns
        (ignored for the Boolean Table 1 stand-ins).
    """
    from repro.data.mixed import MIXED_DATASETS, make_mixed_dataset

    if name in MIXED_DATASETS:
        if scale is None:
            scale = default_scale()
        return make_mixed_dataset(
            name, discretize=discretize, n_bins=n_bins, scale=scale
        )
    stats = paper_stats(name)
    if scale is None:
        scale = default_scale()
    if scale <= 0:
        raise ValueError("scale must be positive")
    n_transactions = max(40, int(round(stats.n_transactions * scale)))
    if seed is None:
        # Stable per-dataset seed (hash() is salted per process).
        seed = sum(ord(character) * (index + 1) for index, character in enumerate(name))
    # Calibrate rule activation so the planted ones stay within the target
    # densities: each rule plants ~2 items per side in an `activation`
    # fraction of transactions, so the expected density contribution is
    # roughly n_rules * activation * 2 / n_items per side.  Leave ~30% of
    # the density budget to background noise.
    items_per_side = 2.0
    budget_left = 0.7 * stats.density_left * stats.n_left / (stats.n_rules * items_per_side)
    budget_right = 0.7 * stats.density_right * stats.n_right / (stats.n_rules * items_per_side)
    activation_high = float(min(0.30, max(0.01, min(budget_left, budget_right))))
    activation_low = max(0.005, 0.5 * activation_high)
    spec = SyntheticSpec(
        n_transactions=n_transactions,
        n_left=stats.n_left,
        n_right=stats.n_right,
        density_left=stats.density_left,
        density_right=stats.density_right,
        n_rules=stats.n_rules,
        lhs_size=(1, 3),
        rhs_size=(1, 3),
        activation=(activation_low, activation_high),
        confidence=(0.85, 1.0),
        bidirectional_fraction=0.4,
        seed=seed,
    )
    dataset, __ = generate_planted(spec)
    if name in _NAMED_DATASETS:
        left_names, right_names = _NAMED_DATASETS[name]()
        dataset = TwoViewDataset(
            dataset.left, dataset.right, left_names, right_names, name=name
        )
    else:
        dataset = TwoViewDataset(
            dataset.left,
            dataset.right,
            [f"{name}:L{index}" for index in range(stats.n_left)],
            [f"{name}:R{index}" for index in range(stats.n_right)],
            name=name,
        )
    return dataset
