"""Reading and writing ARFF files (the UCI / MULAN interchange format).

The paper draws its datasets from the LUCS/KDD, UCI and MULAN
repositories; UCI and MULAN distribute data as ARFF (Attribute-Relation
File Format).  This module implements the subset of ARFF needed to ingest
those datasets offline:

* ``@relation``, ``@attribute`` and ``@data`` sections,
* ``numeric``/``real``/``integer`` attributes,
* ``nominal`` attributes (``{a, b, c}``), including quoted values,
* ``string`` attributes (kept as categorical),
* sparse data rows (``{index value, ...}``) as used by MULAN,
* ``?`` missing values (surfaced as ``None``),
* ``%`` comments and blank lines.

Date attributes and relational attributes are intentionally not
supported — none of the paper's datasets use them — and are rejected
with a clear error.

The result of :func:`load_arff` is an :class:`ArffRelation`: an ordered
list of attributes plus row-major values.  :func:`arff_to_frame` converts
a relation into the column-mapping "frame" consumed by
:mod:`repro.data.preprocessing`, so the full paper pipeline becomes::

    relation = load_arff("emotions.arff")
    frame = arff_to_frame(relation)
    dataset = frame_to_two_view(single_frame=frame, name=relation.name)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.data.dataset import TwoViewDataset
from repro.data.preprocessing import frame_to_two_view

__all__ = [
    "ArffAttribute",
    "ArffRelation",
    "ArffError",
    "load_arff",
    "loads_arff",
    "save_arff",
    "arff_to_frame",
    "arff_to_two_view",
    "two_view_to_arff",
]


class ArffError(ValueError):
    """Raised when an ARFF document cannot be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


@dataclass(frozen=True)
class ArffAttribute:
    """One ``@attribute`` declaration.

    ``kind`` is ``"numeric"``, ``"nominal"`` or ``"string"``; ``values``
    lists the admissible categories for nominal attributes (empty
    otherwise).
    """

    name: str
    kind: str
    values: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("numeric", "nominal", "string"):
            raise ValueError(f"unsupported attribute kind {self.kind!r}")
        if self.kind == "nominal" and not self.values:
            raise ValueError("nominal attribute requires at least one value")

    @property
    def is_binary_nominal(self) -> bool:
        """True for two-valued nominal attributes (e.g. ``{0, 1}``)."""
        return self.kind == "nominal" and len(self.values) == 2


@dataclass
class ArffRelation:
    """A parsed ARFF document: relation name, attributes and data rows.

    Rows are stored row-major; missing values are ``None``, numeric cells
    are ``float`` and nominal/string cells are ``str``.
    """

    name: str
    attributes: list[ArffAttribute]
    rows: list[list[object]] = field(default_factory=list)

    @property
    def n_rows(self) -> int:
        """Number of data rows."""
        return len(self.rows)

    @property
    def n_attributes(self) -> int:
        """Number of declared attributes."""
        return len(self.attributes)

    def attribute_index(self, name: str) -> int:
        """Return the position of attribute ``name`` (KeyError if absent)."""
        for index, attribute in enumerate(self.attributes):
            if attribute.name == name:
                return index
        raise KeyError(f"unknown attribute {name!r}")

    def column(self, name: str) -> list[object]:
        """Return one attribute's values across all rows."""
        index = self.attribute_index(name)
        return [row[index] for row in self.rows]


_ATTRIBUTE_RE = re.compile(r"@attribute\s+", re.IGNORECASE)
_RELATION_RE = re.compile(r"@relation\s+", re.IGNORECASE)
_DATA_RE = re.compile(r"@data\s*$", re.IGNORECASE)
_NUMERIC_KINDS = {"numeric", "real", "integer"}
_UNSUPPORTED_KINDS = {"date", "relational"}


def _strip_comment(line: str) -> str:
    """Remove a trailing ``%`` comment that is not inside quotes."""
    in_single = in_double = False
    for position, char in enumerate(line):
        if char == "'" and not in_double:
            in_single = not in_single
        elif char == '"' and not in_single:
            in_double = not in_double
        elif char == "%" and not in_single and not in_double:
            return line[:position]
    return line


def _read_token(text: str) -> tuple[str, str]:
    """Read one (possibly quoted) token; return ``(token, rest)``."""
    text = text.lstrip()
    if not text:
        return "", ""
    quote = text[0]
    if quote in ("'", '"'):
        end = text.find(quote, 1)
        while end != -1 and end + 1 < len(text) and text[end - 1] == "\\":
            end = text.find(quote, end + 1)
        if end == -1:
            raise ArffError(f"unterminated quote in {text!r}")
        return text[1:end].replace(f"\\{quote}", quote), text[end + 1 :]
    match = re.match(r"[^\s,{}]+", text)
    if match is None:
        raise ArffError(f"cannot read token from {text!r}")
    return match.group(0), text[match.end() :]


def _split_csv(text: str) -> list[str]:
    """Split a data line on commas, honouring quoted cells."""
    cells: list[str] = []
    current: list[str] = []
    in_single = in_double = False
    for char in text:
        if char == "'" and not in_double:
            in_single = not in_single
            current.append(char)
        elif char == '"' and not in_single:
            in_double = not in_double
            current.append(char)
        elif char == "," and not in_single and not in_double:
            cells.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    cells.append("".join(current).strip())
    return cells


def _unquote(cell: str) -> str:
    if len(cell) >= 2 and cell[0] == cell[-1] and cell[0] in ("'", '"'):
        quote = cell[0]
        return cell[1:-1].replace(f"\\{quote}", quote)
    return cell


def _parse_attribute(line: str, line_number: int) -> ArffAttribute:
    rest = _ATTRIBUTE_RE.sub("", line, count=1)
    try:
        name, rest = _read_token(rest)
    except ArffError as error:
        raise ArffError(str(error), line_number) from None
    rest = rest.strip()
    if not name:
        raise ArffError("attribute without a name", line_number)
    if rest.startswith("{"):
        if not rest.endswith("}"):
            raise ArffError("unterminated nominal value list", line_number)
        body = rest[1:-1]
        values = tuple(_unquote(cell) for cell in _split_csv(body) if cell)
        if not values:
            raise ArffError("empty nominal value list", line_number)
        return ArffAttribute(name, "nominal", values)
    kind = rest.lower().split()[0] if rest else ""
    if kind in _NUMERIC_KINDS:
        return ArffAttribute(name, "numeric")
    if kind == "string":
        return ArffAttribute(name, "string")
    if kind in _UNSUPPORTED_KINDS:
        raise ArffError(f"unsupported attribute type {kind!r}", line_number)
    raise ArffError(f"unknown attribute type {rest!r}", line_number)


def _parse_cell(cell: str, attribute: ArffAttribute, line_number: int) -> object:
    cell = _unquote(cell)
    if cell == "?":
        return None
    if attribute.kind == "numeric":
        try:
            return float(cell)
        except ValueError:
            raise ArffError(
                f"invalid numeric value {cell!r} for attribute {attribute.name!r}",
                line_number,
            ) from None
    if attribute.kind == "nominal" and cell not in attribute.values:
        raise ArffError(
            f"value {cell!r} not among nominal values of {attribute.name!r}",
            line_number,
        )
    return cell


def _parse_sparse_row(
    body: str, attributes: Sequence[ArffAttribute], line_number: int
) -> list[object]:
    """Parse a MULAN-style sparse row ``{index value, index value}``.

    Unmentioned cells take the attribute's implicit default: 0 for numeric
    attributes and the *first* nominal value for nominal ones (the ARFF
    sparse-format convention).
    """
    row: list[object] = []
    for attribute in attributes:
        if attribute.kind == "numeric":
            row.append(0.0)
        elif attribute.kind == "nominal":
            row.append(attribute.values[0])
        else:
            row.append("")
    body = body.strip()
    if not body:
        return row
    for cell in _split_csv(body):
        if not cell:
            continue
        parts = cell.split(None, 1)
        if len(parts) != 2:
            raise ArffError(f"malformed sparse cell {cell!r}", line_number)
        index_text, value_text = parts
        try:
            index = int(index_text)
        except ValueError:
            raise ArffError(f"invalid sparse index {index_text!r}", line_number) from None
        if not 0 <= index < len(attributes):
            raise ArffError(f"sparse index {index} out of range", line_number)
        row[index] = _parse_cell(value_text, attributes[index], line_number)
    return row


def loads_arff(text: str, name: str | None = None) -> ArffRelation:
    """Parse an ARFF document from a string. See :func:`load_arff`."""
    relation_name = name or "unnamed"
    attributes: list[ArffAttribute] = []
    rows: list[list[object]] = []
    in_data = False
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if not in_data:
            if _RELATION_RE.match(line):
                token, __ = _read_token(_RELATION_RE.sub("", line, count=1))
                if name is None and token:
                    relation_name = token
                continue
            if _ATTRIBUTE_RE.match(line):
                attributes.append(_parse_attribute(line, line_number))
                continue
            if _DATA_RE.match(line):
                if not attributes:
                    raise ArffError("@data before any @attribute", line_number)
                in_data = True
                continue
            raise ArffError(f"unexpected header line {line!r}", line_number)
        if line.startswith("{"):
            if not line.endswith("}"):
                raise ArffError("unterminated sparse row", line_number)
            rows.append(_parse_sparse_row(line[1:-1], attributes, line_number))
            continue
        cells = _split_csv(line)
        if len(cells) != len(attributes):
            raise ArffError(
                f"row has {len(cells)} cells, expected {len(attributes)}",
                line_number,
            )
        rows.append(
            [
                _parse_cell(cell, attribute, line_number)
                for cell, attribute in zip(cells, attributes)
            ]
        )
    if not attributes:
        raise ArffError("document declares no attributes")
    return ArffRelation(relation_name, attributes, rows)


def load_arff(path: str | Path, name: str | None = None) -> ArffRelation:
    """Load an ARFF file.

    ``name`` overrides the ``@relation`` name.  Raises :class:`ArffError`
    with a line number on malformed input.
    """
    path = Path(path)
    return loads_arff(path.read_text(encoding="utf-8"), name=name)


def _quote_if_needed(token: str) -> str:
    if token == "" or re.search(r"[\s,{}%'\"]", token):
        escaped = token.replace("'", "\\'")
        return f"'{escaped}'"
    return token


def save_arff(relation: ArffRelation, path: str | Path) -> None:
    """Write ``relation`` to ``path`` in dense ARFF format."""
    lines = [f"@relation {_quote_if_needed(relation.name)}", ""]
    for attribute in relation.attributes:
        if attribute.kind == "numeric":
            spec = "numeric"
        elif attribute.kind == "string":
            spec = "string"
        else:
            spec = "{" + ",".join(_quote_if_needed(value) for value in attribute.values) + "}"
        lines.append(f"@attribute {_quote_if_needed(attribute.name)} {spec}")
    lines.extend(["", "@data"])
    for row in relation.rows:
        cells = []
        for value, attribute in zip(row, relation.attributes):
            if value is None:
                cells.append("?")
            elif attribute.kind == "numeric":
                number = float(value)
                cells.append(str(int(number)) if number.is_integer() else repr(number))
            else:
                cells.append(_quote_if_needed(str(value)))
        lines.append(",".join(cells))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def arff_to_frame(
    relation: ArffRelation,
    include: Iterable[str] | None = None,
    exclude: Iterable[str] | None = None,
) -> dict[str, list[object]]:
    """Convert a relation into the frame mapping used by preprocessing.

    Numeric columns stay numeric (``float``); binary ``{0,1}`` nominal
    columns become Boolean; other nominal and string columns stay
    categorical strings.  Missing numeric values are imputed with the
    column median and missing categoricals with the ``"?"`` category, so
    downstream one-hot encoding keeps every row.

    ``include``/``exclude`` select attributes by name (mutually
    exclusive).
    """
    if include is not None and exclude is not None:
        raise ValueError("pass include or exclude, not both")
    if include is not None:
        wanted = list(include)
        unknown = [name for name in wanted if name not in {a.name for a in relation.attributes}]
        if unknown:
            raise KeyError(f"unknown attributes: {unknown}")
        selected = [a for a in relation.attributes if a.name in set(wanted)]
    elif exclude is not None:
        dropped = set(exclude)
        selected = [a for a in relation.attributes if a.name not in dropped]
    else:
        selected = list(relation.attributes)
    frame: dict[str, list[object]] = {}
    for attribute in selected:
        values = relation.column(attribute.name)
        if attribute.kind == "numeric":
            present = [value for value in values if value is not None]
            median = float(np.median(present)) if present else 0.0
            frame[attribute.name] = [
                float(value) if value is not None else median for value in values
            ]
        elif attribute.is_binary_nominal and set(attribute.values) == {"0", "1"}:
            frame[attribute.name] = [value == "1" for value in values]
        else:
            frame[attribute.name] = [
                str(value) if value is not None else "?" for value in values
            ]
    return frame


def arff_to_two_view(
    relation: ArffRelation,
    left_attributes: Sequence[str] | None = None,
    right_attributes: Sequence[str] | None = None,
    n_bins: int = 5,
    max_frequency: float | None = None,
    name: str | None = None,
) -> TwoViewDataset:
    """Full ARFF-to-two-view pipeline (paper, Section 6 pre-processing).

    When ``left_attributes``/``right_attributes`` are given, they define
    the natural view split (e.g. CAL500's genre/instrument/vocal columns on
    the right).  Otherwise the Booleanised attributes are split
    automatically into two views of similar size and density.
    """
    dataset_name = name or relation.name
    if (left_attributes is None) != (right_attributes is None):
        raise ValueError("pass both left_attributes and right_attributes, or neither")
    if left_attributes is not None and right_attributes is not None:
        overlap = set(left_attributes) & set(right_attributes)
        if overlap:
            raise ValueError(f"attributes in both views: {sorted(overlap)}")
        left_frame = arff_to_frame(relation, include=left_attributes)
        right_frame = arff_to_frame(relation, include=right_attributes)
        return frame_to_two_view(
            left_frame,
            right_frame,
            n_bins=n_bins,
            max_frequency=max_frequency,
            name=dataset_name,
        )
    frame = arff_to_frame(relation)
    return frame_to_two_view(
        None,
        None,
        single_frame=frame,
        n_bins=n_bins,
        max_frequency=max_frequency,
        name=dataset_name,
    )


def two_view_to_arff(dataset: TwoViewDataset) -> ArffRelation:
    """Export a Boolean two-view dataset as a (dense) ARFF relation.

    Every item becomes a ``{0,1}`` nominal attribute prefixed with its
    view (``L:`` / ``R:``), which round-trips through
    :func:`arff_to_two_view` with the corresponding attribute lists.
    """
    attributes = [
        ArffAttribute(f"L:{name}", "nominal", ("0", "1")) for name in dataset.left_names
    ] + [
        ArffAttribute(f"R:{name}", "nominal", ("0", "1")) for name in dataset.right_names
    ]
    rows: list[list[object]] = []
    for row in range(dataset.n_transactions):
        cells: list[object] = [
            "1" if dataset.left[row, column] else "0" for column in range(dataset.n_left)
        ]
        cells.extend(
            "1" if dataset.right[row, column] else "0" for column in range(dataset.n_right)
        )
        rows.append(cells)
    return ArffRelation(dataset.name, attributes, rows)
