"""Pre-processing pipeline turning tabular data into Boolean two-view data.

This mirrors the paper's "Data pre-processing" paragraph (Section 6):

* numerical attributes are discretised using **five equal-height bins**
  (:func:`discretize_equal_height`),
* each categorical attribute-value pair is converted into an item
  (:func:`one_hot`),
* items that occur in more than a frequency threshold may be discarded, as
  done for the Elections dataset (:func:`drop_frequent_items`),
* attributes are split over two views such that the views have similar
  sizes and densities (:func:`split_views`).

A "frame" here is simply a mapping ``{column_name: list_of_values}`` with
equal-length columns; no external dataframe library is required.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.data.dataset import TwoViewDataset

__all__ = [
    "discretize_equal_height",
    "one_hot",
    "boolean_frame",
    "drop_frequent_items",
    "split_views",
    "frame_to_two_view",
]


def discretize_equal_height(
    values: Sequence[float], n_bins: int = 5, attribute: str = "attr"
) -> tuple[list[str], list[str]]:
    """Discretise numeric ``values`` into ``n_bins`` equal-height bins.

    Returns ``(labels, bin_names)`` where ``labels[i]`` is the bin item name
    assigned to ``values[i]`` and ``bin_names`` lists the distinct item
    names in bin order.  Bin boundaries are empirical quantiles, so each
    bin receives approximately the same number of values ("equal-height",
    a.k.a. equal-frequency binning).  Ties at boundaries collapse bins,
    which matches the behaviour of standard discretisers on skewed data.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError("values must be 1-dimensional")
    if array.size == 0:
        return [], []
    if np.isnan(array).any():
        raise ValueError("values must not contain NaN")
    quantiles = np.quantile(array, np.linspace(0, 1, n_bins + 1))
    # Collapse duplicate boundaries caused by ties so bins stay well defined.
    edges = np.unique(quantiles)
    if edges.size < 2:
        labels = [f"{attribute}=bin0"] * array.size
        return labels, [f"{attribute}=bin0"]
    inner = edges[1:-1]
    assignments = np.searchsorted(inner, array, side="right")
    bin_names = [f"{attribute}=bin{bin_id}" for bin_id in range(edges.size - 1)]
    labels = [bin_names[bin_id] for bin_id in assignments]
    used = [name for name in bin_names if name in set(labels)]
    return labels, used


def one_hot(
    values: Sequence[object], attribute: str = "attr"
) -> tuple[np.ndarray, list[str]]:
    """One-hot encode a categorical column.

    Returns a Boolean matrix of shape ``(len(values), n_categories)`` and
    the item names ``attribute=value`` in first-appearance order.
    """
    categories: dict[object, int] = {}
    for value in values:
        categories.setdefault(value, len(categories))
    matrix = np.zeros((len(values), len(categories)), dtype=bool)
    for row, value in enumerate(values):
        matrix[row, categories[value]] = True
    names = [f"{attribute}={value}" for value in categories]
    return matrix, names


def _is_numeric_column(column: Sequence[object]) -> bool:
    return all(isinstance(value, (int, float)) and not isinstance(value, bool) for value in column)


def boolean_frame(
    frame: Mapping[str, Sequence[object]], n_bins: int = 5
) -> tuple[np.ndarray, list[str], list[str]]:
    """Booleanise a tabular frame.

    Numeric columns are discretised into ``n_bins`` equal-height bins and
    then one-hot encoded; all other columns are one-hot encoded directly.
    Boolean columns become a single item (true/occurrence only).

    Returns ``(matrix, item_names, item_attribute)`` where
    ``item_attribute[j]`` is the source column of item ``j`` (used by
    :func:`split_views` to keep items of one attribute in the same view).
    """
    columns = list(frame)
    if not columns:
        return np.zeros((0, 0), dtype=bool), [], []
    length = len(frame[columns[0]])
    blocks: list[np.ndarray] = []
    names: list[str] = []
    origins: list[str] = []
    for column in columns:
        values = frame[column]
        if len(values) != length:
            raise ValueError(f"column {column!r} has inconsistent length")
        if all(isinstance(value, bool) for value in values):
            blocks.append(np.asarray(values, dtype=bool).reshape(-1, 1))
            names.append(column)
            origins.append(column)
            continue
        if _is_numeric_column(values):
            labels, __ = discretize_equal_height(values, n_bins=n_bins, attribute=column)
            block, block_names = one_hot(labels, attribute=column)
            # one_hot already prefixes with `column=`, labels carry it too;
            # strip the duplicated prefix for readability.
            block_names = [name.split("=", 1)[1] for name in block_names]
        else:
            block, block_names = one_hot(values, attribute=column)
        blocks.append(block)
        names.extend(block_names)
        origins.extend([column] * block.shape[1])
    matrix = np.concatenate(blocks, axis=1) if blocks else np.zeros((length, 0), dtype=bool)
    return matrix, names, origins


def drop_frequent_items(
    matrix: np.ndarray, names: Sequence[str], max_frequency: float = 0.5
) -> tuple[np.ndarray, list[str]]:
    """Drop items occurring in more than ``max_frequency`` of transactions.

    The paper applies this to the Elections dataset ("items that occurred
    in more than half of the transactions were discarded because they would
    result in many rules of little interest").
    """
    if matrix.shape[1] != len(names):
        raise ValueError("names length does not match matrix width")
    if matrix.shape[0] == 0:
        return matrix, list(names)
    frequency = matrix.mean(axis=0)
    keep = frequency <= max_frequency
    return matrix[:, keep], [name for name, kept in zip(names, keep) if kept]


def split_views(
    matrix: np.ndarray,
    names: Sequence[str],
    origins: Sequence[str] | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[list[int], list[int]]:
    """Split item columns into two views of similar size and density.

    Mirrors the paper's treatment of single-view repository datasets: "the
    attributes were split such that the items were evenly distributed over
    two views having similar densities".  When ``origins`` is given, all
    items derived from one source attribute stay in the same view.

    The split is a greedy balanced partition: attributes (or single items)
    are sorted by their total one-count and assigned to the view that keeps
    the (item count, one count) pair most balanced.  Returns the two lists
    of column indices.
    """
    if matrix.shape[1] != len(names):
        raise ValueError("names length does not match matrix width")
    if origins is None:
        origins = list(names)
    if len(origins) != len(names):
        raise ValueError("origins length does not match names length")
    groups: dict[str, list[int]] = {}
    for column, origin in enumerate(origins):
        groups.setdefault(origin, []).append(column)
    ones_per_group = {
        origin: int(matrix[:, columns].sum()) for origin, columns in groups.items()
    }
    # Deterministic order unless an RNG is supplied for tie-breaking jitter.
    order = sorted(groups, key=lambda origin: (-ones_per_group[origin], origin))
    if rng is not None:
        generator = np.random.default_rng(rng)
        order = list(generator.permutation(order))
        order.sort(key=lambda origin: -ones_per_group[origin])
    left: list[int] = []
    right: list[int] = []
    left_ones = right_ones = 0
    for origin in order:
        columns = groups[origin]
        ones = ones_per_group[origin]
        # Assign to the lighter side; on equal weight, to the smaller side.
        if (left_ones, len(left)) <= (right_ones, len(right)):
            left.extend(columns)
            left_ones += ones
        else:
            right.extend(columns)
            right_ones += ones
    return sorted(left), sorted(right)


def frame_to_two_view(
    left_frame: Mapping[str, Sequence[object]] | None,
    right_frame: Mapping[str, Sequence[object]] | None = None,
    single_frame: Mapping[str, Sequence[object]] | None = None,
    n_bins: int = 5,
    max_frequency: float | None = None,
    name: str = "frame",
    rng: np.random.Generator | int | None = None,
) -> TwoViewDataset:
    """End-to-end pre-processing into a :class:`TwoViewDataset`.

    Either supply ``left_frame`` and ``right_frame`` (natural two-view data
    such as CAL500 or Elections), or ``single_frame`` alone, in which case
    the Booleanised attributes are split over two views with
    :func:`split_views` (as done for the repository datasets in the paper).
    """
    if single_frame is not None:
        if left_frame is not None or right_frame is not None:
            raise ValueError("pass either single_frame or left/right frames, not both")
        matrix, names, origins = boolean_frame(single_frame, n_bins=n_bins)
        if max_frequency is not None:
            keep_mask = matrix.mean(axis=0) <= max_frequency if len(matrix) else np.ones(len(names), bool)
            matrix = matrix[:, keep_mask]
            names = [item for item, kept in zip(names, keep_mask) if kept]
            origins = [origin for origin, kept in zip(origins, keep_mask) if kept]
        left_columns, right_columns = split_views(matrix, names, origins, rng=rng)
        return TwoViewDataset(
            matrix[:, left_columns],
            matrix[:, right_columns],
            [names[column] for column in left_columns],
            [names[column] for column in right_columns],
            name=name,
        )
    if left_frame is None or right_frame is None:
        raise ValueError("both left_frame and right_frame are required")
    left_matrix, left_names, __ = boolean_frame(left_frame, n_bins=n_bins)
    right_matrix, right_names, __ = boolean_frame(right_frame, n_bins=n_bins)
    if max_frequency is not None:
        left_matrix, left_names = drop_frequent_items(left_matrix, left_names, max_frequency)
        right_matrix, right_names = drop_frequent_items(right_matrix, right_names, max_frequency)
    return TwoViewDataset(left_matrix, right_matrix, left_names, right_names, name=name)
