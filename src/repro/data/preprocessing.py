"""Pre-processing pipeline turning tabular data into Boolean two-view data.

This mirrors the paper's "Data pre-processing" paragraph (Section 6):

* numerical attributes are discretised using **five equal-height bins**
  (:func:`discretize_equal_height`) or, beyond the paper, an MDL-based
  adaptive binning (:func:`discretize_mdl`) that merges adjacent bins by
  encoded-length gain,
* each categorical attribute-value pair is converted into an item
  (:func:`one_hot`),
* items that occur in more than a frequency threshold may be discarded, as
  done for the Elections dataset (:func:`drop_frequent_items`),
* attributes are split over two (or ``n_views``) views such that the views
  have similar sizes and densities (:func:`split_views`).

Every Booleanisation step can emit an invertible
:class:`~repro.data.schema.ViewSchema` recording, per item, the source
column, bin edges, category value and unit
(:func:`boolean_frame_schema`, and the schema-attaching paths of
:func:`frame_to_two_view` / :func:`frame_to_multi_view`), so fitted rules
can be rendered in original units (``age ∈ [30, 45)``) and mapped back to
the exact bin edges that produced each column.

A "frame" here is simply a mapping ``{column_name: list_of_values}`` with
equal-length columns; no external dataframe library is required.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.data.dataset import TwoViewDataset
from repro.data.schema import ItemSchema, ViewSchema

__all__ = [
    "discretize_equal_height",
    "discretize_mdl",
    "equal_height_edges",
    "mdl_edges",
    "one_hot",
    "boolean_frame",
    "boolean_frame_schema",
    "drop_frequent_items",
    "split_views",
    "frame_to_two_view",
    "frame_to_multi_view",
]

#: Supported discretisation methods for numeric columns.
DISCRETIZE_METHODS = ("equal-height", "mdl")


def _validate_numeric(values: Sequence[float]) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError("values must be 1-dimensional")
    if np.isnan(array).any():
        raise ValueError("values must not contain NaN")
    return array


def equal_height_edges(values: Sequence[float], n_bins: int = 5) -> np.ndarray:
    """Equal-height bin edges of ``values`` (deduplicated quantiles).

    Returns the sorted edge array; ``edges.size - 1`` is the bin count
    (a single edge means all values are identical: one degenerate bin).
    Bin ``b`` covers ``[edges[b], edges[b+1])``, closed on the right for
    the last bin, so the bins tile the observed range exactly.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    array = _validate_numeric(values)
    if array.size == 0:
        return np.array([], dtype=float)
    quantiles = np.quantile(array, np.linspace(0, 1, n_bins + 1))
    return np.unique(quantiles)


def mdl_edges(values: Sequence[float], max_bins: int = 16) -> np.ndarray:
    """MDL-based adaptive bin edges: merge adjacent bins by encoded-length gain.

    Starts from ``max_bins`` equal-height candidate bins and greedily
    merges the adjacent pair whose merge most reduces the two-part
    encoded length

        L(data | bins) + L(bins)
          = sum_b c_b * (log2(n / c_b) + log2(w_b))  +  (B - 1) * log2(n)

    (``c_b`` count, ``w_b`` width of bin ``b``; the width term is the
    uniform-within-bin value cost, the ``log2(n)`` term the per-boundary
    model cost), stopping when no merge improves it.  Dense regions keep
    narrow bins, sparse tails collapse — the classic MDL histogram.

    Falls back to the equal-height edges unchanged when there are fewer
    than two candidate bins (constant or near-constant data).
    """
    array = _validate_numeric(values)
    edges = equal_height_edges(array, n_bins=max_bins)
    if edges.size < 3:
        return edges  # 0 or 1 candidate bins: nothing to merge.
    n = array.size
    inner = edges[1:-1]
    assignments = np.searchsorted(inner, array, side="right")
    counts = np.bincount(assignments, minlength=edges.size - 1).astype(float)
    bounds = list(edges)
    counts = list(counts)
    # Value resolution: the smallest positive gap between observed values,
    # so zero-width cost terms stay finite on heavily tied data.
    distinct = np.unique(array)
    gaps = np.diff(distinct)
    resolution = float(gaps.min()) if gaps.size else 1.0

    def bin_cost(count: float, width: float) -> float:
        if count == 0:
            return 0.0
        return count * (math.log2(n / count) + math.log2(max(width, resolution)))

    boundary_cost = math.log2(n)
    while len(counts) > 1:
        best_gain = 0.0
        best_index = -1
        for index in range(len(counts) - 1):
            before = bin_cost(counts[index], bounds[index + 1] - bounds[index]) + bin_cost(
                counts[index + 1], bounds[index + 2] - bounds[index + 1]
            )
            after = bin_cost(
                counts[index] + counts[index + 1], bounds[index + 2] - bounds[index]
            )
            gain = before + boundary_cost - after
            if gain > best_gain:
                best_gain = gain
                best_index = index
        if best_index < 0:
            break
        counts[best_index] += counts.pop(best_index + 1)
        bounds.pop(best_index + 1)
    return np.asarray(bounds, dtype=float)


def _bin_labels(
    array: np.ndarray, edges: np.ndarray, attribute: str
) -> tuple[list[str], list[str]]:
    """Shared label assignment for both discretisers."""
    if edges.size < 2:
        labels = [f"{attribute}=bin0"] * array.size
        return labels, [f"{attribute}=bin0"]
    inner = edges[1:-1]
    assignments = np.searchsorted(inner, array, side="right")
    bin_names = [f"{attribute}=bin{bin_id}" for bin_id in range(edges.size - 1)]
    labels = [bin_names[bin_id] for bin_id in assignments]
    used = [name for name in bin_names if name in set(labels)]
    return labels, used


def discretize_equal_height(
    values: Sequence[float], n_bins: int = 5, attribute: str = "attr"
) -> tuple[list[str], list[str]]:
    """Discretise numeric ``values`` into ``n_bins`` equal-height bins.

    Returns ``(labels, bin_names)`` where ``labels[i]`` is the bin item name
    assigned to ``values[i]`` and ``bin_names`` lists the distinct item
    names in bin order.  Bin boundaries are empirical quantiles, so each
    bin receives approximately the same number of values ("equal-height",
    a.k.a. equal-frequency binning).  Ties at boundaries collapse bins,
    which matches the behaviour of standard discretisers on skewed data.
    """
    array = _validate_numeric(values)
    if array.size == 0:
        return [], []
    edges = equal_height_edges(array, n_bins=n_bins)
    return _bin_labels(array, edges, attribute)


def discretize_mdl(
    values: Sequence[float], attribute: str = "attr", max_bins: int = 16
) -> tuple[list[str], list[str]]:
    """Discretise numeric ``values`` with MDL-merged adaptive bins.

    Same return convention as :func:`discretize_equal_height`; the bin
    count is chosen by :func:`mdl_edges` (encoded-length merging) instead
    of being fixed up front.
    """
    array = _validate_numeric(values)
    if array.size == 0:
        return [], []
    edges = mdl_edges(array, max_bins=max_bins)
    return _bin_labels(array, edges, attribute)


def one_hot(
    values: Sequence[object], attribute: str = "attr"
) -> tuple[np.ndarray, list[str]]:
    """One-hot encode a categorical column.

    Returns a Boolean matrix of shape ``(len(values), n_categories)`` and
    the item names ``attribute=value`` in first-appearance order.
    """
    categories: dict[object, int] = {}
    for value in values:
        categories.setdefault(value, len(categories))
    matrix = np.zeros((len(values), len(categories)), dtype=bool)
    for row, value in enumerate(values):
        matrix[row, categories[value]] = True
    names = [f"{attribute}={value}" for value in categories]
    return matrix, names


def _is_numeric_column(column: Sequence[object]) -> bool:
    return all(isinstance(value, (int, float)) and not isinstance(value, bool) for value in column)


def _numeric_block(
    values: Sequence[object],
    column: str,
    n_bins: int,
    discretize: str,
    unit: str | None,
) -> tuple[np.ndarray, list[ItemSchema]]:
    """Booleanise one numeric column with full provenance.

    Bin items are created in first-appearance order (matching the legacy
    :func:`one_hot`-over-labels path bit for bit); rows whose value is NaN
    receive no item for this attribute (an all-False row in the block).
    """
    array = np.asarray(values, dtype=float)
    finite_mask = ~np.isnan(array)
    finite = array[finite_mask]
    if finite.size == 0:
        # All-NaN column: contributes no items at all.
        return np.zeros((array.size, 0), dtype=bool), []
    if discretize == "mdl":
        edges = mdl_edges(finite, max_bins=max(2 * n_bins, 2))
    else:
        edges = equal_height_edges(finite, n_bins=n_bins)
    n_edges = edges.size
    if n_edges < 2:
        assignments = np.zeros(finite.size, dtype=int)
        n_bins_actual = 1
    else:
        assignments = np.searchsorted(edges[1:-1], finite, side="right")
        n_bins_actual = n_edges - 1
    # First-appearance column order over rows, as one_hot would produce.
    column_of: dict[int, int] = {}
    order: list[int] = []
    for bin_id in assignments:
        if int(bin_id) not in column_of:
            column_of[int(bin_id)] = len(order)
            order.append(int(bin_id))
    block = np.zeros((array.size, len(order)), dtype=bool)
    rows = np.flatnonzero(finite_mask)
    for row, bin_id in zip(rows, assignments):
        block[row, column_of[int(bin_id)]] = True
    items: list[ItemSchema] = []
    for bin_id in order:
        if n_edges < 2:
            lo = hi = float(edges[0])
            closed = True
        else:
            lo = float(edges[bin_id])
            hi = float(edges[bin_id + 1])
            closed = bin_id == n_bins_actual - 1
        items.append(
            ItemSchema(
                name=f"{column}=bin{bin_id}",
                source=column,
                kind="numeric",
                lo=lo,
                hi=hi,
                closed_hi=closed,
                unit=unit,
            )
        )
    return block, items


def boolean_frame_schema(
    frame: Mapping[str, Sequence[object]],
    n_bins: int = 5,
    discretize: str = "equal-height",
    units: Mapping[str, str] | None = None,
) -> tuple[np.ndarray, ViewSchema]:
    """Booleanise a tabular frame, returning an invertible item schema.

    Numeric columns are discretised (``discretize`` is ``"equal-height"``
    or ``"mdl"``) and one-hot encoded, categorical columns one-hot
    encoded, Boolean columns passed through as single flag items — same
    matrix as :func:`boolean_frame` for NaN-free frames.  Additionally:

    * numeric values of ``NaN`` simply receive no bin item (their row is
      all-False in that attribute's block) instead of raising;
    * columns whose values are all ``NaN`` contribute no items;
    * ``units`` optionally maps column names to measurement units carried
      into the schema for rendering.

    Returns ``(matrix, schema)`` where ``schema[j]`` records the source
    column, bin edges / category value and unit of item (column) ``j``.
    """
    if discretize not in DISCRETIZE_METHODS:
        raise ValueError(
            f"unknown discretize method {discretize!r}; expected one of {DISCRETIZE_METHODS}"
        )
    columns = list(frame)
    if not columns:
        return np.zeros((0, 0), dtype=bool), ViewSchema(())
    length = len(frame[columns[0]])
    blocks: list[np.ndarray] = []
    items: list[ItemSchema] = []
    for column in columns:
        values = frame[column]
        if len(values) != length:
            raise ValueError(f"column {column!r} has inconsistent length")
        unit = units.get(column) if units else None
        if all(isinstance(value, bool) for value in values):
            blocks.append(np.asarray(values, dtype=bool).reshape(-1, 1))
            items.append(ItemSchema(name=column, source=column, kind="flag", unit=unit))
            continue
        if _is_numeric_column(values):
            block, block_items = _numeric_block(values, column, n_bins, discretize, unit)
        else:
            block, block_names = one_hot(values, attribute=column)
            seen: dict[object, None] = {}
            for value in values:
                seen.setdefault(value, None)
            block_items = [
                ItemSchema(
                    name=name, source=column, kind="category", value=value, unit=unit
                )
                for name, value in zip(block_names, seen)
            ]
        blocks.append(block)
        items.extend(block_items)
    matrix = (
        np.concatenate(blocks, axis=1) if blocks else np.zeros((length, 0), dtype=bool)
    )
    return matrix, ViewSchema(items)


def boolean_frame(
    frame: Mapping[str, Sequence[object]], n_bins: int = 5
) -> tuple[np.ndarray, list[str], list[str]]:
    """Booleanise a tabular frame.

    Numeric columns are discretised into ``n_bins`` equal-height bins and
    then one-hot encoded; all other columns are one-hot encoded directly.
    Boolean columns become a single item (true/occurrence only).

    Returns ``(matrix, item_names, item_attribute)`` where
    ``item_attribute[j]`` is the source column of item ``j`` (used by
    :func:`split_views` to keep items of one attribute in the same view).
    Use :func:`boolean_frame_schema` for the provenance-carrying variant.
    """
    matrix, schema = boolean_frame_schema(frame, n_bins=n_bins)
    return matrix, schema.names, schema.sources


def drop_frequent_items(
    matrix: np.ndarray, names: Sequence[str], max_frequency: float = 0.5
) -> tuple[np.ndarray, list[str]]:
    """Drop items occurring in more than ``max_frequency`` of transactions.

    The paper applies this to the Elections dataset ("items that occurred
    in more than half of the transactions were discarded because they would
    result in many rules of little interest").
    """
    if matrix.shape[1] != len(names):
        raise ValueError("names length does not match matrix width")
    if matrix.shape[0] == 0:
        return matrix, list(names)
    frequency = matrix.mean(axis=0)
    keep = frequency <= max_frequency
    return matrix[:, keep], [name for name, kept in zip(names, keep) if kept]


def _frequency_keep(matrix: np.ndarray, max_frequency: float) -> np.ndarray:
    """Keep-mask of :func:`drop_frequent_items` (for schema subsetting)."""
    if matrix.shape[0] == 0:
        return np.ones(matrix.shape[1], dtype=bool)
    return matrix.mean(axis=0) <= max_frequency


def split_views(
    matrix: np.ndarray,
    names: Sequence[str],
    origins: Sequence[str] | None = None,
    rng: np.random.Generator | int | None = None,
    n_views: int = 2,
) -> tuple[list[int], ...]:
    """Split item columns into ``n_views`` views of similar size and density.

    Mirrors the paper's treatment of single-view repository datasets: "the
    attributes were split such that the items were evenly distributed over
    two views having similar densities".  When ``origins`` is given, all
    items derived from one source attribute stay in the same view.

    The split is a greedy balanced partition: attributes (or single items)
    are sorted by their total one-count and assigned to the view that keeps
    the (one count, item count) pairs most balanced.  Returns ``n_views``
    sorted lists of column indices (two by default, matching the paper's
    setting and this function's original two-view signature).
    """
    if matrix.shape[1] != len(names):
        raise ValueError("names length does not match matrix width")
    if n_views < 2:
        raise ValueError("n_views must be at least 2")
    if origins is None:
        origins = list(names)
    if len(origins) != len(names):
        raise ValueError("origins length does not match names length")
    groups: dict[str, list[int]] = {}
    for column, origin in enumerate(origins):
        groups.setdefault(origin, []).append(column)
    ones_per_group = {
        origin: int(matrix[:, columns].sum()) for origin, columns in groups.items()
    }
    # Deterministic order unless an RNG is supplied for tie-breaking jitter.
    order = sorted(groups, key=lambda origin: (-ones_per_group[origin], origin))
    if rng is not None:
        generator = np.random.default_rng(rng)
        order = list(generator.permutation(order))
        order.sort(key=lambda origin: -ones_per_group[origin])
    views: list[list[int]] = [[] for _ in range(n_views)]
    view_ones = [0] * n_views
    for origin in order:
        columns = groups[origin]
        ones = ones_per_group[origin]
        # Assign to the lightest view; on equal weight, to the smallest,
        # then lowest-indexed view (reduces to the original two-view rule).
        target = min(
            range(n_views), key=lambda view: (view_ones[view], len(views[view]), view)
        )
        views[target].extend(columns)
        view_ones[target] += ones
    return tuple(sorted(view) for view in views)


def frame_to_two_view(
    left_frame: Mapping[str, Sequence[object]] | None,
    right_frame: Mapping[str, Sequence[object]] | None = None,
    single_frame: Mapping[str, Sequence[object]] | None = None,
    n_bins: int = 5,
    max_frequency: float | None = None,
    name: str = "frame",
    rng: np.random.Generator | int | None = None,
    discretize: str = "equal-height",
    units: Mapping[str, str] | None = None,
) -> TwoViewDataset:
    """End-to-end pre-processing into a :class:`TwoViewDataset`.

    Either supply ``left_frame`` and ``right_frame`` (natural two-view data
    such as CAL500 or Elections), or ``single_frame`` alone, in which case
    the Booleanised attributes are split over two views with
    :func:`split_views` (as done for the repository datasets in the paper).

    The returned dataset carries the invertible item schemas of both views
    (``dataset.left_schema`` / ``dataset.right_schema``), so fitted rules
    render in original units; ``discretize`` selects the numeric binning
    (``"equal-height"``, the paper's choice, or ``"mdl"``).
    """
    if single_frame is not None:
        if left_frame is not None or right_frame is not None:
            raise ValueError("pass either single_frame or left/right frames, not both")
        matrix, schema = boolean_frame_schema(
            single_frame, n_bins=n_bins, discretize=discretize, units=units
        )
        if max_frequency is not None:
            keep_mask = _frequency_keep(matrix, max_frequency)
            matrix = matrix[:, keep_mask]
            schema = schema.subset(np.flatnonzero(keep_mask).tolist())
        left_columns, right_columns = split_views(
            matrix, schema.names, schema.sources, rng=rng
        )
        return TwoViewDataset(
            matrix[:, left_columns],
            matrix[:, right_columns],
            [schema.names[column] for column in left_columns],
            [schema.names[column] for column in right_columns],
            name=name,
            left_schema=schema.subset(left_columns),
            right_schema=schema.subset(right_columns),
        )
    if left_frame is None or right_frame is None:
        raise ValueError("both left_frame and right_frame are required")
    left_matrix, left_schema = boolean_frame_schema(
        left_frame, n_bins=n_bins, discretize=discretize, units=units
    )
    right_matrix, right_schema = boolean_frame_schema(
        right_frame, n_bins=n_bins, discretize=discretize, units=units
    )
    if max_frequency is not None:
        left_keep = _frequency_keep(left_matrix, max_frequency)
        right_keep = _frequency_keep(right_matrix, max_frequency)
        left_matrix = left_matrix[:, left_keep]
        right_matrix = right_matrix[:, right_keep]
        left_schema = left_schema.subset(np.flatnonzero(left_keep).tolist())
        right_schema = right_schema.subset(np.flatnonzero(right_keep).tolist())
    return TwoViewDataset(
        left_matrix,
        right_matrix,
        left_schema.names,
        right_schema.names,
        name=name,
        left_schema=left_schema,
        right_schema=right_schema,
    )


def frame_to_multi_view(
    single_frame: Mapping[str, Sequence[object]],
    n_views: int = 3,
    n_bins: int = 5,
    max_frequency: float | None = None,
    name: str = "frame",
    rng: np.random.Generator | int | None = None,
    discretize: str = "equal-height",
    units: Mapping[str, str] | None = None,
):
    """Booleanise a frame and split it into a ``k``-view dataset.

    The multi-view analogue of the ``single_frame`` path of
    :func:`frame_to_two_view`: attributes are partitioned over ``n_views``
    views by the greedy density-balanced :func:`split_views`, and every
    view carries its invertible item schema.

    Returns a :class:`~repro.multiview.dataset.MultiViewDataset`.
    """
    from repro.multiview.dataset import MultiViewDataset

    matrix, schema = boolean_frame_schema(
        single_frame, n_bins=n_bins, discretize=discretize, units=units
    )
    if max_frequency is not None:
        keep_mask = _frequency_keep(matrix, max_frequency)
        matrix = matrix[:, keep_mask]
        schema = schema.subset(np.flatnonzero(keep_mask).tolist())
    parts = split_views(matrix, schema.names, schema.sources, rng=rng, n_views=n_views)
    return MultiViewDataset(
        [matrix[:, columns] for columns in parts],
        item_names=[[schema.names[column] for column in columns] for columns in parts],
        name=name,
        schemas=[schema.subset(columns) for columns in parts],
    )
