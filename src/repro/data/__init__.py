"""Two-view Boolean data: model, I/O, pre-processing and generators.

This subpackage provides every data-facing substrate required by the
reproduction of *Association Discovery in Two-View Data*:

* :class:`~repro.data.dataset.TwoViewDataset` — the Boolean two-view data
  model used throughout the library (paper, Section 3).
* :mod:`~repro.data.io` — a small native text format plus CSV and FIMI
  import.
* :mod:`~repro.data.arff` — ARFF reading/writing (the UCI and MULAN
  interchange format) and the ARFF-to-two-view pipeline.
* :mod:`~repro.data.preprocessing` — the paper's pre-processing pipeline
  (equal-height and MDL discretisation, one-hot encoding, frequent-item
  filtering, density-balanced view splitting; Section 6, "Data
  pre-processing").
* :mod:`~repro.data.schema` — invertible per-item provenance
  (:class:`~repro.data.schema.ViewSchema`): source columns, bin edges and
  units, so rules render as ``age ∈ [30, 45)`` instead of ``age_bin3``.
* :mod:`~repro.data.synthetic` — planted-rule generators used as offline
  stand-ins for the paper's benchmark datasets.
* :mod:`~repro.data.registry` — shape-matched stand-ins for the 14 datasets
  of Table 1, addressable by name.
* :mod:`~repro.data.mixed` — checksum-pinned mixed-type (continuous +
  categorical) datasets modelled on the UCI Abalone and Wine Quality
  tables, exercising the discretisation pipeline end to end.
"""

from repro.data.arff import (
    ArffAttribute,
    ArffError,
    ArffRelation,
    arff_to_frame,
    arff_to_two_view,
    load_arff,
    loads_arff,
    save_arff,
    two_view_to_arff,
)
from repro.data.dataset import Side, TwoViewDataset
from repro.data.io import load_dataset, save_dataset
from repro.data.mixed import MIXED_DATASETS, make_mixed_dataset
from repro.data.preprocessing import (
    boolean_frame,
    boolean_frame_schema,
    discretize_equal_height,
    discretize_mdl,
    drop_frequent_items,
    frame_to_multi_view,
    frame_to_two_view,
    one_hot,
    split_views,
)
from repro.data.registry import (
    PAPER_DATASETS,
    dataset_names,
    make_dataset,
    paper_stats,
)
from repro.data.schema import ItemSchema, ViewSchema
from repro.data.synthetic import PlantedRule, SyntheticSpec, generate_planted

__all__ = [
    "ArffAttribute",
    "ArffError",
    "ArffRelation",
    "arff_to_frame",
    "arff_to_two_view",
    "load_arff",
    "loads_arff",
    "save_arff",
    "two_view_to_arff",
    "Side",
    "TwoViewDataset",
    "load_dataset",
    "save_dataset",
    "boolean_frame",
    "boolean_frame_schema",
    "discretize_equal_height",
    "discretize_mdl",
    "drop_frequent_items",
    "frame_to_multi_view",
    "frame_to_two_view",
    "one_hot",
    "split_views",
    "ItemSchema",
    "ViewSchema",
    "MIXED_DATASETS",
    "make_mixed_dataset",
    "PAPER_DATASETS",
    "dataset_names",
    "make_dataset",
    "paper_stats",
    "PlantedRule",
    "SyntheticSpec",
    "generate_planted",
]
