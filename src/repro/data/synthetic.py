"""Synthetic two-view data with planted cross-view associations.

The paper evaluates on real repository datasets that are not
redistributable offline.  These generators produce the closest synthetic
equivalent: Boolean two-view datasets with

* **planted translation rules** — latent groups of transactions in which an
  antecedent itemset (one view) and a consequent itemset (other view)
  co-occur with a controlled confidence, in one or both directions, and
* **independent background noise** calibrated so that each view reaches a
  target density.

Every algorithm in this library consumes only the Boolean occurrence
structure, so a generator matched on size, density and cross-view
dependency exercises exactly the same code paths as the paper's data (see
DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.data.dataset import TwoViewDataset

__all__ = ["PlantedRule", "SyntheticSpec", "generate_planted", "random_dataset"]


@dataclasses.dataclass(frozen=True)
class PlantedRule:
    """Ground truth for one planted cross-view association.

    Attributes
    ----------
    lhs, rhs:
        Column indices of the antecedent (left view) and consequent
        (right view) itemsets.
    direction:
        ``"->"`` (left implies right), ``"<-"`` or ``"<->"``.
    activation:
        Fraction of transactions in which the association fires.
    confidence:
        Probability that the implied side is planted when the implying
        side is planted.
    """

    lhs: tuple[int, ...]
    rhs: tuple[int, ...]
    direction: str
    activation: float
    confidence: float

    def __post_init__(self) -> None:
        if self.direction not in ("->", "<-", "<->"):
            raise ValueError(f"invalid direction {self.direction!r}")
        if not self.lhs or not self.rhs:
            raise ValueError("planted rules need non-empty sides")
        if not 0.0 < self.activation <= 1.0:
            raise ValueError("activation must be in (0, 1]")
        if not 0.0 < self.confidence <= 1.0:
            raise ValueError("confidence must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of the planted-rule generator.

    The defaults produce a small but structured dataset suitable for unit
    tests; registry stand-ins override size and density to match Table 1.
    """

    n_transactions: int = 500
    n_left: int = 20
    n_right: int = 20
    density_left: float = 0.2
    density_right: float = 0.2
    n_rules: int = 5
    lhs_size: tuple[int, int] = (1, 3)
    rhs_size: tuple[int, int] = (1, 3)
    activation: tuple[float, float] = (0.08, 0.25)
    confidence: tuple[float, float] = (0.85, 1.0)
    bidirectional_fraction: float = 0.4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_transactions <= 0 or self.n_left <= 0 or self.n_right <= 0:
            raise ValueError("dataset dimensions must be positive")
        if not 0.0 <= self.density_left <= 1.0 or not 0.0 <= self.density_right <= 1.0:
            raise ValueError("densities must be in [0, 1]")
        if self.lhs_size[0] < 1 or self.rhs_size[0] < 1:
            raise ValueError("rule sides need at least one item")
        if not 0.0 <= self.bidirectional_fraction <= 1.0:
            raise ValueError("bidirectional_fraction must be in [0, 1]")


def _draw_itemset(
    rng: np.random.Generator, n_items: int, size_range: tuple[int, int]
) -> tuple[int, ...]:
    size = int(rng.integers(size_range[0], min(size_range[1], n_items) + 1))
    return tuple(sorted(rng.choice(n_items, size=size, replace=False).tolist()))


def _plant_rules(
    rng: np.random.Generator,
    spec: SyntheticSpec,
    left: np.ndarray,
    right: np.ndarray,
) -> list[PlantedRule]:
    rules: list[PlantedRule] = []
    n = spec.n_transactions
    for rule_index in range(spec.n_rules):
        lhs = _draw_itemset(rng, spec.n_left, spec.lhs_size)
        rhs = _draw_itemset(rng, spec.n_right, spec.rhs_size)
        activation = float(rng.uniform(*spec.activation))
        confidence = float(rng.uniform(*spec.confidence))
        bidirectional = rng.random() < spec.bidirectional_fraction
        direction = "<->" if bidirectional else ("->" if rng.random() < 0.5 else "<-")
        rows = rng.random(n) < activation
        if not rows.any():
            rows[int(rng.integers(n))] = True
        if direction in ("->", "<->"):
            left[np.ix_(rows, lhs)] = True
            fired = rows & (rng.random(n) < confidence)
            right[np.ix_(fired, rhs)] = True
        if direction in ("<-", "<->"):
            right[np.ix_(rows, rhs)] = True
            fired = rows & (rng.random(n) < confidence)
            left[np.ix_(fired, lhs)] = True
        rules.append(PlantedRule(lhs, rhs, direction, activation, confidence))
    return rules


def _add_background_noise(
    rng: np.random.Generator, matrix: np.ndarray, target_density: float
) -> None:
    """Flip zero cells to one until the expected density reaches the target."""
    current = matrix.mean() if matrix.size else 0.0
    if current >= target_density or current >= 1.0:
        return
    flip_probability = (target_density - current) / (1.0 - current)
    noise = rng.random(matrix.shape) < flip_probability
    matrix |= noise


def generate_planted(spec: SyntheticSpec) -> tuple[TwoViewDataset, list[PlantedRule]]:
    """Generate a two-view dataset with planted cross-view rules.

    Returns the dataset together with the ground-truth planted rules (in
    generation order).  Planting happens first; independent background
    noise is then added per view so that the final densities approximate
    ``spec.density_left`` / ``spec.density_right``.
    """
    rng = np.random.default_rng(spec.seed)
    left = np.zeros((spec.n_transactions, spec.n_left), dtype=bool)
    right = np.zeros((spec.n_transactions, spec.n_right), dtype=bool)
    rules = _plant_rules(rng, spec, left, right)
    _add_background_noise(rng, left, spec.density_left)
    _add_background_noise(rng, right, spec.density_right)
    dataset = TwoViewDataset(
        left,
        right,
        name=f"planted(n={spec.n_transactions},rules={spec.n_rules},seed={spec.seed})",
    )
    return dataset, rules


def random_dataset(
    n_transactions: int,
    n_left: int,
    n_right: int,
    density_left: float = 0.2,
    density_right: float = 0.2,
    seed: int = 0,
    name: str | None = None,
) -> TwoViewDataset:
    """Generate pure independent noise (no cross-view structure).

    Used as the null model: on such data a correct MDL model selector
    should find (almost) no rules, and compression ratios should stay near
    100% (paper, Section 6.1: "if there is little or no structure
    connecting the two views, this will be reflected in the attained
    compression ratios").
    """
    rng = np.random.default_rng(seed)
    left = rng.random((n_transactions, n_left)) < density_left
    right = rng.random((n_transactions, n_right)) < density_right
    return TwoViewDataset(
        left,
        right,
        name=name or f"noise(n={n_transactions},seed={seed})",
    )


def planted_with_names(
    spec: SyntheticSpec,
    left_names: Sequence[str],
    right_names: Sequence[str],
    name: str = "named",
) -> tuple[TwoViewDataset, list[PlantedRule]]:
    """Like :func:`generate_planted` but with caller-supplied item names."""
    if len(left_names) != spec.n_left or len(right_names) != spec.n_right:
        raise ValueError("name lists must match the spec dimensions")
    dataset, rules = generate_planted(spec)
    named = TwoViewDataset(
        dataset.left, dataset.right, list(left_names), list(right_names), name=name
    )
    return named, rules
