"""Mixed-type (continuous + categorical) benchmark datasets.

The paper's benchmark collection is purely Boolean; real deployments of
two-view translation start from *mixed-type tables* — continuous
measurements and categorical attributes — that must be discretised into
items first.  This module provides two such datasets modelled on the UCI
originals the paper's collection draws from:

``abalone-mixed``
    The Abalone measurement table (UCI, 4 177 rows): one categorical
    attribute (``sex``) and seven continuous shell measurements on the
    *measurement* view, the ring count and a derived maturity class on
    the *outcome* view.  Table 1's ``Abalone`` entry is the Boolean
    discretisation of this table; here the continuous columns survive to
    the schema so rules render as ``shell_weight ∈ [0.2, 0.4)`` instead
    of ``shell_weight=bin2``.

``winequality-mixed``
    The red Wine Quality table (UCI, 1 599 rows): eleven physicochemical
    measurements on the left view, the sensory quality score and a
    derived style class on the right.

The UCI servers are not reachable from the reproduction environment, so
both tables are *deterministic stand-ins*: generated offline from a
pinned seed with the originals' exact column names, units, value ranges
and the documented cross-view correlations (ring count grows with shell
weight; quality rises with alcohol and falls with volatile acidity).
:data:`MIXED_CHECKSUMS` pins the SHA-256 of each generated frame pair —
:func:`make_mixed_dataset` verifies it on every build, so any drift in
the generator or numpy's bit-stream is caught loudly rather than
silently changing benchmark numbers.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.data.dataset import TwoViewDataset
from repro.data.preprocessing import frame_to_two_view

__all__ = [
    "MIXED_DATASETS",
    "MIXED_CHECKSUMS",
    "abalone_frames",
    "winequality_frames",
    "frame_checksum",
    "make_mixed_dataset",
]

#: Mixed-type dataset names accepted by :func:`make_mixed_dataset` (and,
#: through it, :func:`repro.data.registry.make_dataset`).
MIXED_DATASETS = ("abalone-mixed", "winequality-mixed")

#: Pinned SHA-256 of each dataset's canonical frame serialisation at the
#: published size (``scale=1.0``).  Regenerate with
#: ``frame_checksum(left, right)`` only when the generator itself is
#: intentionally changed.
MIXED_CHECKSUMS = {
    "abalone-mixed": "5c11c5a57da75091bad526f449fa76f15269b0349ac72f0c465240814b8aa942",
    "winequality-mixed": "0749e8b7078dd4f13d94d93bc543477d81532a9e8e1436102906e6301900a6d3",
}

#: Original-units annotations fed into the view schemas.
_ABALONE_UNITS = {
    "length": "mm",
    "diameter": "mm",
    "height": "mm",
    "whole_weight": "g",
    "shucked_weight": "g",
    "viscera_weight": "g",
    "shell_weight": "g",
    "rings": "rings",
}

_WINE_UNITS = {
    "fixed_acidity": "g/L",
    "volatile_acidity": "g/L",
    "citric_acid": "g/L",
    "residual_sugar": "g/L",
    "chlorides": "g/L",
    "free_sulfur_dioxide": "mg/L",
    "total_sulfur_dioxide": "mg/L",
    "density": "g/mL",
    "sulphates": "g/L",
    "alcohol": "%vol",
}


def _round_column(values: np.ndarray, decimals: int) -> np.ndarray:
    """Round to the precision the UCI files publish (kills FP noise)."""
    return np.round(values.astype(np.float64), decimals)


def abalone_frames(
    n_rows: int = 4177, seed: int = 41770
) -> tuple[dict[str, object], dict[str, object]]:
    """Measurement / outcome frames of the Abalone stand-in.

    Returns ``(measurements, outcome)``: the left frame holds ``sex``
    plus seven continuous shell measurements; the right frame the ring
    count and the derived ``maturity`` class (infant / young / adult,
    following the common 3-class split of the UCI task).
    """
    rng = np.random.default_rng(seed)
    sex = rng.choice(["M", "F", "I"], size=n_rows, p=[0.37, 0.31, 0.32])
    # Infants are systematically smaller: a latent size factor per row.
    size = rng.beta(4.0, 2.5, n_rows)
    size = np.where(sex == "I", size * 0.62, size)
    length = _round_column(0.075 + 0.74 * size + rng.normal(0, 0.03, n_rows), 3)
    diameter = _round_column(0.80 * length + rng.normal(0, 0.015, n_rows), 3)
    height = _round_column(0.28 * length + rng.normal(0, 0.012, n_rows), 3)
    whole = _round_column(
        np.clip(2.5 * length**3 + rng.normal(0, 0.05, n_rows), 0.002, None), 4
    )
    shucked = _round_column(np.clip(0.44 * whole + rng.normal(0, 0.04, n_rows), 0.001, None), 4)
    viscera = _round_column(np.clip(0.22 * whole + rng.normal(0, 0.02, n_rows), 0.0005, None), 4)
    shell = _round_column(np.clip(0.28 * whole + rng.normal(0, 0.03, n_rows), 0.0015, None), 4)
    # Ring count tracks shell weight and size (the dataset's whole point).
    rings = np.clip(
        np.round(3.0 + 16.0 * size + 6.0 * shell + rng.normal(0, 1.8, n_rows)),
        1,
        29,
    ).astype(np.int64)
    maturity = np.where(rings <= 8, "infant", np.where(rings <= 12, "young", "adult"))
    measurements = {
        "sex": sex.tolist(),
        "length": length,
        "diameter": diameter,
        "height": height,
        "whole_weight": whole,
        "shucked_weight": shucked,
        "viscera_weight": viscera,
        "shell_weight": shell,
    }
    outcome = {
        "rings": rings.astype(np.float64),
        "maturity": maturity.tolist(),
    }
    return measurements, outcome


def winequality_frames(
    n_rows: int = 1599, seed: int = 15990
) -> tuple[dict[str, object], dict[str, object]]:
    """Physicochemical / sensory frames of the red Wine Quality stand-in."""
    rng = np.random.default_rng(seed)
    fixed_acidity = _round_column(rng.gamma(16.0, 0.52, n_rows), 1)
    volatile_acidity = _round_column(np.clip(rng.gamma(8.0, 0.066, n_rows), 0.12, 1.6), 2)
    citric = _round_column(np.clip(0.95 - 0.9 * volatile_acidity + rng.normal(0, 0.12, n_rows), 0.0, 1.0), 2)
    sugar = _round_column(np.clip(rng.lognormal(0.82, 0.42, n_rows), 0.9, 15.5), 1)
    chlorides = _round_column(np.clip(rng.gamma(10.0, 0.0087, n_rows), 0.012, 0.61), 3)
    free_so2 = _round_column(np.clip(rng.gamma(3.2, 5.0, n_rows), 1, 72), 0)
    total_so2 = _round_column(np.clip(free_so2 * 2.9 + rng.gamma(2.0, 5.0, n_rows), 6, 289), 0)
    density = _round_column(0.9978 + 0.0008 * (fixed_acidity - 8.3) / 1.7 - 0.0009 * rng.normal(0, 1, n_rows), 5)
    ph = _round_column(np.clip(3.31 - 0.06 * (fixed_acidity - 8.3) + rng.normal(0, 0.10, n_rows), 2.7, 4.0), 2)
    sulphates = _round_column(np.clip(rng.gamma(14.0, 0.047, n_rows), 0.33, 2.0), 2)
    alcohol = _round_column(np.clip(rng.gamma(22.0, 0.475, n_rows), 8.4, 14.9), 1)
    # Sensory quality: alcohol up, volatile acidity down (the two
    # strongest correlations reported for the UCI red-wine table).
    latent = (
        1.1 * (alcohol - 10.4)
        - 2.6 * (volatile_acidity - 0.53)
        + 1.3 * (sulphates - 0.66)
        + rng.normal(0, 0.9, n_rows)
    )
    quality = np.clip(np.round(5.6 + 0.55 * latent), 3, 8).astype(np.int64)
    style = np.where(quality >= 7, "premium", np.where(quality >= 5, "table", "poor"))
    physicochemical = {
        "fixed_acidity": fixed_acidity,
        "volatile_acidity": volatile_acidity,
        "citric_acid": citric,
        "residual_sugar": sugar,
        "chlorides": chlorides,
        "free_sulfur_dioxide": free_so2,
        "total_sulfur_dioxide": total_so2,
        "density": density,
        "pH": ph,
        "sulphates": sulphates,
        "alcohol": alcohol,
    }
    sensory = {
        "quality": quality.astype(np.float64),
        "style": style.tolist(),
    }
    return physicochemical, sensory


def frame_checksum(
    left: dict[str, object], right: dict[str, object]
) -> str:
    """SHA-256 over the canonical JSON serialisation of a frame pair.

    Floats are serialised via ``repr`` (shortest round-trip form), so the
    digest is stable across platforms as long as the generated values are
    bit-identical.
    """

    def canonical(frame: dict[str, object]) -> dict[str, list]:
        out: dict[str, list] = {}
        for column in sorted(frame):
            values = frame[column]
            if isinstance(values, np.ndarray):
                out[column] = [repr(float(value)) for value in values]
            else:
                out[column] = [str(value) for value in values]
        return out

    blob = json.dumps(
        {"left": canonical(left), "right": canonical(right)},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


_FRAME_BUILDERS = {
    "abalone-mixed": (abalone_frames, 4177, _ABALONE_UNITS),
    "winequality-mixed": (winequality_frames, 1599, _WINE_UNITS),
}


def make_mixed_dataset(
    name: str,
    discretize: str = "mdl",
    n_bins: int = 5,
    scale: float | None = None,
    verify: bool = True,
) -> TwoViewDataset:
    """Build a mixed-type dataset as a schema-carrying two-view dataset.

    Parameters
    ----------
    name:
        One of :data:`MIXED_DATASETS`.
    discretize:
        Binning method for the continuous columns: ``"mdl"`` (default;
        supervised merge of adjacent bins by encoded-length gain) or
        ``"equal-height"`` (the paper's five-bin quantile scheme).
    n_bins:
        Bin budget per continuous column (the MDL method treats
        ``2 * n_bins`` as its upper bound and may merge below it).
    scale:
        Multiplier on the number of rows, mirroring
        :func:`repro.data.registry.make_dataset`.  Checksums are only
        enforced at the published size (``scale`` of ``None``/1.0).
    verify:
        Check the generated frames against :data:`MIXED_CHECKSUMS`
        (full-size builds only); a mismatch raises ``ValueError``.

    Returns
    -------
    A :class:`~repro.data.dataset.TwoViewDataset` whose ``left_schema``
    and ``right_schema`` carry per-item provenance, so fitted rules
    render in original units.
    """
    try:
        builder, full_rows, units = _FRAME_BUILDERS[name]
    except KeyError:
        known = ", ".join(MIXED_DATASETS)
        raise KeyError(f"unknown mixed dataset {name!r}; known: {known}") from None
    full_size = scale is None or scale == 1.0
    if not full_size:
        if scale <= 0:
            raise ValueError("scale must be positive")
        n_rows = max(40, int(round(full_rows * scale)))
    else:
        n_rows = full_rows
    left, right = builder(n_rows=n_rows)
    if verify and full_size:
        digest = frame_checksum(left, right)
        expected = MIXED_CHECKSUMS[name]
        if digest != expected:
            raise ValueError(
                f"{name} generator drift: frame checksum {digest} != "
                f"pinned {expected} — the stand-in no longer reproduces "
                "the published benchmark data"
            )
    return frame_to_two_view(
        left,
        right,
        n_bins=n_bins,
        name=name,
        discretize=discretize,
        units=units,
    )
